//! Set-associative write-back L1 cache simulator.

use crate::config::{CacheConfig, ReplacementPolicy};
use crate::VirtAddr;
use serde::{Deserialize, Serialize};

/// Hit/miss counters of a [`Cache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Read accesses that hit.
    pub read_hits: u64,
    /// Read accesses that missed.
    pub read_misses: u64,
    /// Write accesses that hit.
    pub write_hits: u64,
    /// Write accesses that missed.
    pub write_misses: u64,
    /// Dirty lines written back to the next level on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses observed.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.read_hits + self.read_misses + self.write_hits + self.write_misses
    }

    /// Miss ratio in `[0, 1]`; zero when no access has been made.
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            (self.read_misses + self.write_misses) as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Monotonic timestamp of last touch, for LRU.
    stamp: u64,
}

/// Outcome of a single line-sized cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineAccess {
    /// Whether the line was resident.
    pub hit: bool,
    /// Whether a dirty line was evicted (must be written to the next
    /// level).
    pub writeback: bool,
    /// Global line index of the evicted dirty line, when `writeback`.
    pub victim_line: Option<u64>,
}

/// A set-associative, write-back, write-allocate cache with configurable
/// replacement ([`ReplacementPolicy`]; LRU by default).
///
/// The cache stores no data — only tags — because the simulation needs
/// timing and energy, not values. One [`Cache::access`] call covers exactly
/// one cache line; [`crate::MemorySystem`] splits larger transfers.
///
/// # Example
///
/// ```
/// use ddtr_mem::{Cache, CacheConfig, VirtAddr};
///
/// let mut cache = Cache::new(CacheConfig::default());
/// let addr = VirtAddr::new(0x2000);
/// // Cold miss, then hit.
/// cache.access(addr, false);
/// cache.access(addr, false);
/// assert_eq!(cache.stats().read_misses, 1);
/// assert_eq!(cache.stats().read_hits, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    clock: u64,
    /// Deterministic xorshift state for [`ReplacementPolicy::Random`].
    rng: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds a cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`CacheConfig::validate`].
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.validate().expect("invalid cache configuration");
        let sets = cfg.sets() as usize;
        Cache {
            cfg,
            sets: vec![vec![Line::default(); cfg.ways as usize]; sets],
            clock: 0,
            rng: 0x9E37_79B9_7F4A_7C15,
            stats: CacheStats::default(),
        }
    }

    /// Geometry of this cache.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears counters but keeps cache contents (for phase-separated
    /// measurement).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Accesses the line containing `addr`. `write` selects a store.
    ///
    /// Returns whether the access hit and whether a dirty line was evicted
    /// (a writeback to the next level).
    pub fn access(&mut self, addr: VirtAddr, write: bool) -> (bool, bool) {
        let outcome = self.access_line(addr, write);
        (outcome.hit, outcome.writeback)
    }

    /// Like [`Cache::access`], but also reports which line was evicted so
    /// a multi-level hierarchy can route the writeback to the correct
    /// next-level set.
    pub fn access_line(&mut self, addr: VirtAddr, write: bool) -> LineAccess {
        self.clock += 1;
        let line_idx = addr.line_index(self.cfg.line_bytes);
        let n_sets = self.sets.len() as u64;
        let set_idx = (line_idx % n_sets) as usize;
        let tag = line_idx / n_sets;
        let set = &mut self.sets[set_idx];

        if let Some(way) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            // FIFO and Random keep the fill-time stamp; only LRU refreshes
            // recency on a hit.
            if self.cfg.replacement == ReplacementPolicy::Lru {
                way.stamp = self.clock;
            }
            way.dirty |= write;
            if write {
                self.stats.write_hits += 1;
            } else {
                self.stats.read_hits += 1;
            }
            return LineAccess {
                hit: true,
                writeback: false,
                victim_line: None,
            };
        }

        // Miss: allocate (write-allocate policy) over the LRU way.
        if write {
            self.stats.write_misses += 1;
        } else {
            self.stats.read_misses += 1;
        }
        let victim = if let Some(invalid) = set.iter().position(|l| !l.valid) {
            invalid
        } else {
            match self.cfg.replacement {
                // LRU evicts the least recently touched way; FIFO the
                // oldest-filled (stamps are only refreshed under LRU, so
                // the same min-stamp scan serves both).
                ReplacementPolicy::Lru | ReplacementPolicy::Fifo => set
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, l)| l.stamp)
                    .map(|(i, _)| i)
                    .expect("cache set has at least one way"),
                ReplacementPolicy::Random => {
                    // xorshift64* — deterministic across runs.
                    self.rng ^= self.rng << 13;
                    self.rng ^= self.rng >> 7;
                    self.rng ^= self.rng << 17;
                    (self.rng % set.len() as u64) as usize
                }
            }
        };
        let victim = &mut set[victim];
        let writeback = victim.valid && victim.dirty;
        if writeback {
            self.stats.writebacks += 1;
        }
        let victim_line = writeback.then(|| victim.tag * n_sets + set_idx as u64);
        victim.valid = true;
        victim.dirty = write;
        victim.tag = tag;
        victim.stamp = self.clock;
        LineAccess {
            hit: false,
            writeback,
            victim_line,
        }
    }

    /// Number of currently valid lines (useful in tests).
    #[must_use]
    pub fn valid_lines(&self) -> usize {
        self.sets
            .iter()
            .flat_map(|s| s.iter())
            .filter(|l| l.valid)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        tiny_with(ReplacementPolicy::Lru)
    }

    fn tiny_with(replacement: ReplacementPolicy) -> Cache {
        // 4 sets x 2 ways x 32B lines = 256 B.
        Cache::new(CacheConfig {
            capacity_bytes: 256,
            line_bytes: 32,
            ways: 2,
            hit_cycles: 1,
            replacement,
        })
    }

    fn addr_for(set: u64, tag: u64) -> VirtAddr {
        // line_idx = tag * n_sets + set; addr = line_idx * line_bytes
        VirtAddr::new((tag * 4 + set) * 32)
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        let a = addr_for(0, 1);
        assert_eq!(c.access(a, false), (false, false));
        assert_eq!(c.access(a, false), (true, false));
        assert_eq!(c.stats().read_misses, 1);
        assert_eq!(c.stats().read_hits, 1);
    }

    #[test]
    fn same_line_different_offsets_hit() {
        let mut c = tiny();
        c.access(VirtAddr::new(0x40), false);
        assert!(c.access(VirtAddr::new(0x5f), false).0);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny();
        let a = addr_for(0, 1);
        let b = addr_for(0, 2);
        let d = addr_for(0, 3);
        c.access(a, false); // miss
        c.access(b, false); // miss — set 0 full
        c.access(a, false); // hit, refresh a
        c.access(d, false); // miss, evicts b (LRU)
        assert!(c.access(a, false).0, "a survived");
        assert!(!c.access(b, false).0, "b was evicted");
    }

    #[test]
    fn dirty_eviction_triggers_writeback() {
        let mut c = tiny();
        let a = addr_for(1, 1);
        let b = addr_for(1, 2);
        let d = addr_for(1, 3);
        c.access(a, true); // dirty
        c.access(b, false);
        let (_, wb) = c.access(d, false); // evicts dirty a
        assert!(wb);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = tiny();
        c.access(addr_for(2, 1), false);
        c.access(addr_for(2, 2), false);
        let (_, wb) = c.access(addr_for(2, 3), false);
        assert!(!wb);
    }

    #[test]
    fn write_hit_marks_line_dirty() {
        let mut c = tiny();
        let a = addr_for(3, 1);
        c.access(a, false); // clean fill
        c.access(a, true); // dirty it
        c.access(addr_for(3, 2), false);
        let (_, wb) = c.access(addr_for(3, 3), false); // evict a
        assert!(wb, "line dirtied by the write hit must be written back");
    }

    #[test]
    fn miss_ratio_is_computed() {
        let mut c = tiny();
        assert_eq!(c.stats().miss_ratio(), 0.0);
        c.access(addr_for(0, 1), false);
        c.access(addr_for(0, 1), false);
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = tiny();
        let a = addr_for(0, 1);
        c.access(a, false);
        c.reset_stats();
        assert_eq!(c.stats().accesses(), 0);
        assert!(c.access(a, false).0, "line still cached");
    }

    #[test]
    fn fifo_ignores_hits_when_choosing_the_victim() {
        let mut c = tiny_with(ReplacementPolicy::Fifo);
        let a = addr_for(0, 1);
        let b = addr_for(0, 2);
        let d = addr_for(0, 3);
        c.access(a, false); // filled first
        c.access(b, false);
        c.access(a, false); // hit: would rescue `a` under LRU, not FIFO
        c.access(d, false); // evicts the oldest fill = a
        assert!(!c.access(a, false).0, "FIFO evicted the oldest fill");
        // That probe refilled `a`, evicting FIFO-oldest `b`.
        assert!(!c.access(b, false).0);
    }

    #[test]
    fn lru_and_fifo_diverge_on_the_rescue_pattern() {
        // Same access stream, different survivor: the canonical
        // policy-sensitivity witness.
        let stream = |c: &mut Cache| {
            c.access(addr_for(0, 1), false);
            c.access(addr_for(0, 2), false);
            c.access(addr_for(0, 1), false); // rescue under LRU
            c.access(addr_for(0, 3), false); // forces an eviction
            c.access(addr_for(0, 1), false).0 // did tag 1 survive?
        };
        assert!(stream(&mut tiny_with(ReplacementPolicy::Lru)));
        assert!(!stream(&mut tiny_with(ReplacementPolicy::Fifo)));
    }

    #[test]
    fn random_replacement_is_deterministic_across_runs() {
        let run = || {
            let mut c = tiny_with(ReplacementPolicy::Random);
            for i in 0..200u64 {
                c.access(addr_for(i % 4, (i * 7) % 13), i % 3 == 0);
            }
            c.stats()
        };
        assert_eq!(run(), run(), "xorshift victims must replay identically");
    }

    #[test]
    fn random_replacement_fills_invalid_ways_first() {
        let mut c = tiny_with(ReplacementPolicy::Random);
        c.access(addr_for(1, 1), false);
        c.access(addr_for(1, 2), false);
        // Both fills land in empty ways: no eviction has happened, so both
        // must still be resident.
        assert!(c.access(addr_for(1, 1), false).0);
        assert!(c.access(addr_for(1, 2), false).0);
    }

    #[test]
    fn valid_lines_grow_to_capacity() {
        let mut c = tiny();
        for tag in 0..4 {
            for set in 0..4 {
                c.access(addr_for(set, tag), false);
            }
        }
        assert_eq!(c.valid_lines(), 8, "4 sets x 2 ways all valid");
    }
}
