//! Free-list heap allocator over the simulated address space.

use crate::VirtAddr;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Per-block header size, matching a typical embedded `malloc`.
const HEADER_BYTES: u64 = 8;
/// Allocation granularity.
const ALIGN: u64 = 8;

/// Error returned when the simulated heap cannot satisfy a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// The arena has no free region large enough for the request.
    OutOfMemory {
        /// Bytes requested by the caller (before header/alignment).
        requested: u64,
    },
    /// A zero-byte allocation was requested.
    ZeroSize,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfMemory { requested } => {
                write!(f, "simulated heap exhausted allocating {requested} bytes")
            }
            AllocError::ZeroSize => write!(f, "zero-byte allocation requested"),
        }
    }
}

impl std::error::Error for AllocError {}

/// Free-region selection policy of the [`SimAllocator`].
///
/// The DATE 2006 framework's dynamic memory manager is itself a design
/// dimension in follow-up work of the same group; this knob lets the
/// ablation benches check that DDT rankings are robust against the
/// allocator the platform middleware happens to use.
///
/// # Example
///
/// ```
/// use ddtr_mem::{FitPolicy, SimAllocator};
///
/// let mut heap = SimAllocator::with_policy(0x1000, 4096, FitPolicy::BestFit);
/// let a = heap.alloc(100)?;
/// assert!(!a.is_null());
/// # Ok::<(), ddtr_mem::AllocError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum FitPolicy {
    /// Lowest-addressed free region that fits (the classic embedded
    /// `malloc` walk; the default).
    #[default]
    FirstFit,
    /// Smallest free region that fits — minimises the leftover sliver at
    /// the cost of a full free-list walk.
    BestFit,
    /// First fit resuming from where the previous allocation ended,
    /// wrapping around — spreads allocations across the arena.
    NextFit,
}

impl fmt::Display for FitPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FitPolicy::FirstFit => "first-fit",
            FitPolicy::BestFit => "best-fit",
            FitPolicy::NextFit => "next-fit",
        })
    }
}

/// Live counters of the simulated heap.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllocStats {
    /// Number of successful allocations.
    pub allocs: u64,
    /// Number of frees.
    pub frees: u64,
    /// Bytes currently handed out to callers (excluding headers/padding).
    pub live_user_bytes: u64,
    /// Bytes currently consumed in the arena (headers and padding included).
    pub live_gross_bytes: u64,
    /// Peak of [`AllocStats::live_gross_bytes`] — the *memory footprint*
    /// metric of the paper.
    pub peak_gross_bytes: u64,
    /// Number of allocation requests that failed with out-of-memory.
    pub failed_allocs: u64,
}

impl AllocStats {
    /// Internal fragmentation ratio: padding+header overhead over gross
    /// bytes. Zero when nothing is live.
    #[must_use]
    pub fn overhead_ratio(&self) -> f64 {
        if self.live_gross_bytes == 0 {
            0.0
        } else {
            1.0 - (self.live_user_bytes as f64 / self.live_gross_bytes as f64)
        }
    }
}

/// First-fit free-list allocator with coalescing over a simulated arena.
///
/// The allocator never touches host memory: it only does address
/// bookkeeping so the rest of the stack can attribute cache behaviour and
/// footprint to realistic heap layouts. Blocks carry an 8-byte header and
/// are 8-byte aligned, mirroring a typical embedded allocator, so footprint
/// numbers include allocator overhead exactly like the paper's.
///
/// # Example
///
/// ```
/// use ddtr_mem::SimAllocator;
///
/// let mut heap = SimAllocator::new(0x1000, 4096);
/// let a = heap.alloc(100)?;
/// let b = heap.alloc(50)?;
/// assert_ne!(a, b);
/// heap.free(a)?;
/// // freed space is reused
/// let c = heap.alloc(90)?;
/// assert_eq!(c, a);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct SimAllocator {
    base: u64,
    capacity: u64,
    policy: FitPolicy,
    /// Next-fit roving cursor: address the next search starts from.
    cursor: u64,
    /// Free regions: start -> length (gross bytes). Disjoint, coalesced.
    free: BTreeMap<u64, u64>,
    /// Live blocks: user address -> (gross length, user length).
    live: BTreeMap<u64, (u64, u64)>,
    stats: AllocStats,
}

impl SimAllocator {
    /// Creates a first-fit allocator managing `[base, base + capacity)`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is zero (null must stay invalid) or `capacity` is
    /// zero.
    #[must_use]
    pub fn new(base: u64, capacity: u64) -> Self {
        Self::with_policy(base, capacity, FitPolicy::FirstFit)
    }

    /// Creates an allocator with an explicit free-region selection policy.
    ///
    /// # Panics
    ///
    /// Panics if `base` is zero (null must stay invalid) or `capacity` is
    /// zero.
    #[must_use]
    pub fn with_policy(base: u64, capacity: u64, policy: FitPolicy) -> Self {
        assert!(base != 0, "arena base must be non-zero");
        assert!(capacity != 0, "arena capacity must be non-zero");
        let mut free = BTreeMap::new();
        free.insert(base, capacity);
        SimAllocator {
            base,
            capacity,
            policy,
            cursor: base,
            free,
            live: BTreeMap::new(),
            stats: AllocStats::default(),
        }
    }

    /// The free-region selection policy in use.
    #[must_use]
    pub fn policy(&self) -> FitPolicy {
        self.policy
    }

    /// Selects the free region an allocation of `gross` bytes is carved
    /// from, per the configured policy.
    fn select_region(&self, gross: u64) -> Option<(u64, u64)> {
        match self.policy {
            FitPolicy::FirstFit => self
                .free
                .iter()
                .find(|(_, &len)| len >= gross)
                .map(|(&start, &len)| (start, len)),
            FitPolicy::BestFit => self
                .free
                .iter()
                .filter(|(_, &len)| len >= gross)
                .min_by_key(|(&start, &len)| (len, start))
                .map(|(&start, &len)| (start, len)),
            FitPolicy::NextFit => self
                .free
                .range(self.cursor..)
                .chain(self.free.range(..self.cursor))
                .find(|(_, &len)| len >= gross)
                .map(|(&start, &len)| (start, len)),
        }
    }

    /// Allocates `size` user bytes, returning the user address (which is
    /// `HEADER_BYTES` past the block start).
    ///
    /// # Errors
    ///
    /// [`AllocError::ZeroSize`] for zero-byte requests and
    /// [`AllocError::OutOfMemory`] when no free region fits.
    pub fn alloc(&mut self, size: u64) -> Result<VirtAddr, AllocError> {
        if size == 0 {
            return Err(AllocError::ZeroSize);
        }
        let gross = Self::gross_size(size);
        let Some((start, len)) = self.select_region(gross) else {
            self.stats.failed_allocs += 1;
            return Err(AllocError::OutOfMemory { requested: size });
        };
        self.free.remove(&start);
        if len > gross {
            self.free.insert(start + gross, len - gross);
        }
        self.cursor = start + gross;
        let user = start + HEADER_BYTES;
        self.live.insert(user, (gross, size));
        self.stats.allocs += 1;
        self.stats.live_user_bytes += size;
        self.stats.live_gross_bytes += gross;
        self.stats.peak_gross_bytes = self.stats.peak_gross_bytes.max(self.stats.live_gross_bytes);
        Ok(VirtAddr::new(user))
    }

    /// Frees a block previously returned by [`SimAllocator::alloc`],
    /// coalescing with free neighbours.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::ZeroSize`] if `addr` does not correspond to a
    /// live block (double free or wild pointer).
    pub fn free(&mut self, addr: VirtAddr) -> Result<(), AllocError> {
        let user = addr.as_u64();
        let Some((gross, size)) = self.live.remove(&user) else {
            return Err(AllocError::ZeroSize);
        };
        self.stats.frees += 1;
        self.stats.live_user_bytes -= size;
        self.stats.live_gross_bytes -= gross;
        let mut start = user - HEADER_BYTES;
        let mut len = gross;
        // Coalesce with the preceding free region.
        if let Some((&prev_start, &prev_len)) = self.free.range(..start).next_back() {
            if prev_start + prev_len == start {
                self.free.remove(&prev_start);
                start = prev_start;
                len += prev_len;
            }
        }
        // Coalesce with the following free region.
        if let Some(&next_len) = self.free.get(&(start + len)) {
            self.free.remove(&(start + len));
            len += next_len;
        }
        self.free.insert(start, len);
        Ok(())
    }

    /// Size of the live block at `addr` as requested by the caller, if any.
    #[must_use]
    pub fn user_size(&self, addr: VirtAddr) -> Option<u64> {
        self.live.get(&addr.as_u64()).map(|&(_, size)| size)
    }

    /// Returns `true` if `addr` points into a live block (header excluded).
    #[must_use]
    pub fn contains(&self, addr: VirtAddr) -> bool {
        let a = addr.as_u64();
        self.live
            .range(..=a)
            .next_back()
            .is_some_and(|(&user, &(_, size))| a >= user && a < user + size)
    }

    /// Current statistics.
    #[must_use]
    pub fn stats(&self) -> AllocStats {
        self.stats
    }

    /// Arena base address.
    #[must_use]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Arena capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of live blocks.
    #[must_use]
    pub fn live_blocks(&self) -> usize {
        self.live.len()
    }

    /// Number of disjoint free regions (external fragmentation proxy).
    #[must_use]
    pub fn free_regions(&self) -> usize {
        self.free.len()
    }

    /// Gross bytes consumed by a `size`-byte allocation, including header
    /// and alignment padding.
    #[must_use]
    pub fn gross_size(size: u64) -> u64 {
        let padded = size.div_ceil(ALIGN) * ALIGN;
        padded + HEADER_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap() -> SimAllocator {
        SimAllocator::new(0x1000, 4096)
    }

    #[test]
    fn alloc_returns_distinct_aligned_addresses() {
        let mut h = heap();
        let a = h.alloc(10).unwrap();
        let b = h.alloc(10).unwrap();
        assert_ne!(a, b);
        assert_eq!(a.as_u64() % ALIGN, 0);
        assert_eq!(b.as_u64() % ALIGN, 0);
    }

    #[test]
    fn zero_size_rejected() {
        assert_eq!(heap().alloc(0), Err(AllocError::ZeroSize));
    }

    #[test]
    fn out_of_memory_reported_and_counted() {
        let mut h = SimAllocator::new(0x1000, 64);
        let err = h.alloc(1024).unwrap_err();
        assert!(matches!(err, AllocError::OutOfMemory { requested: 1024 }));
        assert_eq!(h.stats().failed_allocs, 1);
    }

    #[test]
    fn free_then_realloc_reuses_space() {
        let mut h = heap();
        let a = h.alloc(100).unwrap();
        h.free(a).unwrap();
        let b = h.alloc(100).unwrap();
        assert_eq!(a, b, "first fit reuses the freed block");
    }

    #[test]
    fn double_free_rejected() {
        let mut h = heap();
        let a = h.alloc(16).unwrap();
        h.free(a).unwrap();
        assert!(h.free(a).is_err());
    }

    #[test]
    fn coalescing_restores_full_arena() {
        let mut h = heap();
        let blocks: Vec<_> = (0..8).map(|_| h.alloc(64).unwrap()).collect();
        // Free in an interleaved order to exercise both coalesce directions.
        for &i in &[1usize, 3, 5, 7, 0, 2, 4, 6] {
            h.free(blocks[i]).unwrap();
        }
        assert_eq!(h.free_regions(), 1, "arena coalesced back to one region");
        // The whole arena is allocatable again.
        let big = h.alloc(4096 - HEADER_BYTES).unwrap();
        assert!(!big.is_null());
    }

    #[test]
    fn footprint_tracks_peak_not_current() {
        let mut h = heap();
        let a = h.alloc(512).unwrap();
        let peak_after_alloc = h.stats().peak_gross_bytes;
        h.free(a).unwrap();
        assert_eq!(h.stats().live_gross_bytes, 0);
        assert_eq!(h.stats().peak_gross_bytes, peak_after_alloc);
        assert_eq!(peak_after_alloc, SimAllocator::gross_size(512));
    }

    #[test]
    fn contains_covers_block_interior_only() {
        let mut h = heap();
        let a = h.alloc(32).unwrap();
        assert!(h.contains(a));
        assert!(h.contains(a.offset(31)));
        assert!(!h.contains(a.offset(32)));
        assert!(!h.contains(VirtAddr::new(a.as_u64() - HEADER_BYTES)));
    }

    #[test]
    fn user_size_reports_requested_size() {
        let mut h = heap();
        let a = h.alloc(33).unwrap();
        assert_eq!(h.user_size(a), Some(33));
        h.free(a).unwrap();
        assert_eq!(h.user_size(a), None);
    }

    #[test]
    fn overhead_ratio_reflects_header_and_padding() {
        let mut h = heap();
        let _ = h.alloc(1).unwrap(); // 1 user byte -> 8 padded + 8 header
        let ratio = h.stats().overhead_ratio();
        assert!((ratio - (1.0 - 1.0 / 16.0)).abs() < 1e-12);
    }

    #[test]
    fn best_fit_picks_the_tightest_hole() {
        let mut h = SimAllocator::with_policy(0x1000, 4096, FitPolicy::BestFit);
        // Carve three holes: 256, 64 and 128 gross bytes (in address order).
        let keep1 = h.alloc(512).unwrap();
        let hole_big = h.alloc(256 - HEADER_BYTES).unwrap();
        let keep2 = h.alloc(512).unwrap();
        let hole_small = h.alloc(64 - HEADER_BYTES).unwrap();
        let keep3 = h.alloc(512).unwrap();
        let hole_mid = h.alloc(128 - HEADER_BYTES).unwrap();
        let _keep4 = h.alloc(512).unwrap();
        h.free(hole_big).unwrap();
        h.free(hole_small).unwrap();
        h.free(hole_mid).unwrap();
        let _ = (keep1, keep2, keep3);
        // A 56-byte request (64 gross) must land in the smallest hole,
        // which first fit would have skipped.
        let got = h.alloc(64 - HEADER_BYTES).unwrap();
        assert_eq!(got, hole_small, "best fit selects the tightest region");
    }

    #[test]
    fn next_fit_resumes_after_the_previous_allocation() {
        let mut h = SimAllocator::with_policy(0x1000, 4096, FitPolicy::NextFit);
        let a = h.alloc(48).unwrap(); // 56 gross
        let b = h.alloc(64).unwrap(); // 72 gross
        h.free(a).unwrap();
        // First fit would reuse `a`'s hole; next fit continues past `b`.
        let c = h.alloc(48).unwrap();
        assert!(c.as_u64() > b.as_u64(), "next fit moved past the cursor");
        // Exhaust the tail with requests too big for `a`'s 56-byte hole;
        // the next 48-byte request then wraps around into it.
        while h.alloc(64).is_ok() {}
        let wrapped = h.alloc(48).unwrap();
        assert_eq!(wrapped, a, "wrap-around reuses the old hole");
    }

    #[test]
    fn all_policies_satisfy_the_same_request_stream() {
        for policy in [FitPolicy::FirstFit, FitPolicy::BestFit, FitPolicy::NextFit] {
            let mut h = SimAllocator::with_policy(0x1000, 64 * 1024, policy);
            let mut blocks = Vec::new();
            for i in 0..100u64 {
                blocks.push(h.alloc(16 + (i * 7) % 120).unwrap());
            }
            for b in blocks.drain(..).step_by(2) {
                h.free(b).unwrap();
            }
            for i in 0..40u64 {
                assert!(h.alloc(16 + i).is_ok(), "{policy} failed at {i}");
            }
        }
    }

    #[test]
    fn policy_display_and_default() {
        assert_eq!(FitPolicy::default(), FitPolicy::FirstFit);
        assert_eq!(FitPolicy::BestFit.to_string(), "best-fit");
        assert_eq!(SimAllocator::new(0x1000, 64).policy(), FitPolicy::FirstFit);
    }

    #[test]
    fn gross_size_is_monotone_and_aligned() {
        let mut prev = 0;
        for s in 1..200 {
            let g = SimAllocator::gross_size(s);
            assert!(g >= prev);
            assert_eq!(g % ALIGN, 0);
            assert!(g >= s + HEADER_BYTES);
            prev = g;
        }
    }
}
