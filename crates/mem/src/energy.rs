//! CACTI-like per-access energy model.
//!
//! The paper computes energy with "an updated version of the CACTI model".
//! CACTI derives the energy of one SRAM access from the array geometry —
//! larger capacity means longer bitlines/wordlines and therefore higher
//! energy per access, roughly with the square root of capacity. This module
//! implements that analytic shape with constants calibrated so that:
//!
//! * an L1-sized SRAM access costs a fraction of a nanojoule,
//! * a DRAM line transfer costs one to two orders of magnitude more,
//!
//! which matches the published ratios the methodology relies on. Absolute
//! joule values are *not* meaningful — only the ordering of DDT
//! implementations is, and any monotone capacity-dependent model preserves
//! it (see `DESIGN.md`, substitution table).

use crate::config::{CacheConfig, DramConfig};
use serde::{Deserialize, Serialize};

/// Per-access energies (nanojoules) for every level of the hierarchy.
///
/// # Example
///
/// ```
/// use ddtr_mem::{CacheConfig, DramConfig, EnergyModel};
///
/// let model = EnergyModel::from_configs(&CacheConfig::default(), &DramConfig::default());
/// assert!(model.l1_access_nj > 0.0);
/// assert!(model.dram_access_nj > 10.0 * model.l1_access_nj);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy of one L1 access (hit or the tag probe part of a miss), nJ.
    pub l1_access_nj: f64,
    /// Energy of one backing-store line transfer at the reference
    /// footprint, nJ. The effective per-transfer energy scales with the
    /// live heap size (see [`EnergyModel::data_access_nj`]) — the CACTI
    /// effect that larger memories cost more per access.
    pub dram_access_nj: f64,
    /// Reserved: reference footprint for energy normalisation, bytes.
    pub footprint_ref_bytes: f64,
    /// Static/leakage energy charged per cycle, nJ (kept tiny; the paper's
    /// metric is dominated by dynamic access energy).
    pub leakage_nj_per_cycle: f64,
}

impl EnergyModel {
    /// Derives per-access energies from the hierarchy geometry using the
    /// CACTI-like analytic shape
    /// `E = e0 + e1 * sqrt(capacity / line) * (1 + alpha * (ways - 1))`.
    #[must_use]
    pub fn from_configs(l1: &CacheConfig, dram: &DramConfig) -> Self {
        let l1_access_nj = Self::sram_access_nj(l1.capacity_bytes, l1.line_bytes, l1.ways);
        // Backing store: per-line activation + transfer energy, scaled
        // mildly with line size (burst length).
        let dram_access_nj = 2.0 + 0.03 * (l1.line_bytes as f64);
        let _ = dram.capacity_bytes; // capacity bounds the arena, not energy
        EnergyModel {
            l1_access_nj,
            dram_access_nj,
            footprint_ref_bytes: 8.0 * 1024.0,
            leakage_nj_per_cycle: 1e-4,
        }
    }

    /// Energy of one data access when the application's live heap
    /// occupies `live_bytes`.
    ///
    /// This is how the paper's CACTI-based estimation works: the memory
    /// serving the dynamic data is sized to what the application actually
    /// allocates, and a larger array has longer wordlines/bitlines, so
    /// *every* access costs more — energy grows with the square root of
    /// capacity while latency (cycles) is unaffected at this abstraction
    /// level. The modelled capacity is clamped to `[1 KiB, 256 KiB]`.
    #[must_use]
    pub fn data_access_nj(&self, live_bytes: u64) -> f64 {
        Self::sram_access_nj(live_bytes.clamp(1 << 10, 1 << 18), 32, 1)
    }

    /// CACTI-like SRAM access energy in nanojoules.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is zero.
    #[must_use]
    pub fn sram_access_nj(capacity_bytes: u64, line_bytes: u64, ways: u32) -> f64 {
        assert!(line_bytes > 0, "line size must be non-zero");
        let lines = capacity_bytes as f64 / line_bytes as f64;
        let assoc_penalty = 1.0 + 0.08 * f64::from(ways.saturating_sub(1));
        0.02 + 0.004 * lines.sqrt() * assoc_penalty
    }

    /// Scales all dynamic energies by `factor` (used by the sensitivity
    /// ablation to check Pareto-front stability under perturbed constants).
    #[must_use]
    pub fn scaled(self, factor: f64) -> Self {
        EnergyModel {
            l1_access_nj: self.l1_access_nj * factor,
            dram_access_nj: self.dram_access_nj * factor,
            footprint_ref_bytes: self.footprint_ref_bytes,
            leakage_nj_per_cycle: self.leakage_nj_per_cycle,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_grows_with_capacity() {
        let small = EnergyModel::sram_access_nj(8 * 1024, 32, 4);
        let large = EnergyModel::sram_access_nj(64 * 1024, 32, 4);
        assert!(large > small);
    }

    #[test]
    fn energy_grows_with_associativity() {
        let dm = EnergyModel::sram_access_nj(32 * 1024, 32, 1);
        let sa = EnergyModel::sram_access_nj(32 * 1024, 32, 8);
        assert!(sa > dm);
    }

    #[test]
    fn dram_dominates_sram() {
        let m = EnergyModel::from_configs(&CacheConfig::default(), &DramConfig::default());
        assert!(m.dram_access_nj / m.l1_access_nj > 10.0);
    }

    #[test]
    fn scaling_preserves_leakage() {
        let m = EnergyModel::from_configs(&CacheConfig::default(), &DramConfig::default());
        let s = m.scaled(2.0);
        assert!((s.l1_access_nj - 2.0 * m.l1_access_nj).abs() < 1e-12);
        assert!((s.dram_access_nj - 2.0 * m.dram_access_nj).abs() < 1e-12);
        assert_eq!(s.leakage_nj_per_cycle, m.leakage_nj_per_cycle);
    }

    #[test]
    #[should_panic(expected = "line size")]
    fn zero_line_rejected() {
        let _ = EnergyModel::sram_access_nj(1024, 0, 1);
    }
}
