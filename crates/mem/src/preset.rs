//! The named platform catalog — the memory-hierarchy axis of the
//! exploration.
//!
//! The DATE 2006 methodology evaluates DDT choices against a *platform's*
//! memory hierarchy, so "which DDTs survive?" is only half a question
//! until the platform is named. [`MemoryPreset`] is the catalog of
//! platforms the sweep axis ranges over: every preset is a pure name →
//! [`MemoryConfig`] mapping, serialisable, and round-trips through its
//! CLI spelling (`"embedded".parse()` ↔ `preset.to_string()`), so the
//! same vocabulary works in CLI flags, wire requests, and persisted
//! results.

use crate::config::MemoryConfig;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// One named platform of the memory-hierarchy sweep axis.
///
/// # Example
///
/// ```
/// use ddtr_mem::MemoryPreset;
///
/// let preset: MemoryPreset = "deep".parse()?;
/// assert_eq!(preset, MemoryPreset::Deep);
/// assert_eq!(preset.to_string(), "deep");
/// assert!(preset.config().l2.is_some());
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MemoryPreset {
    /// The embedded default of the whole reproduction: 32 KiB 4-way L1
    /// straight over a 16 MiB DRAM ([`MemoryConfig::embedded_default`]).
    Embedded,
    /// The default L1 backed by a 256 KiB 8-way L2
    /// ([`MemoryConfig::with_l2`]).
    L2,
    /// A small, close 64 KiB 4-cycle L2 — the cheap-SoC variant
    /// ([`MemoryConfig::with_small_l2`]).
    L2Small,
    /// The deeper three-level hierarchy: halved L1, large 512 KiB L2,
    /// slower DRAM ([`MemoryConfig::deep_hierarchy`]).
    Deep,
    /// The embedded platform with a scratchpad holding the hot DDT
    /// descriptors ([`MemoryConfig::with_spm`]).
    Spm,
}

impl MemoryPreset {
    /// Every preset, in canonical sweep-column order.
    pub const ALL: [MemoryPreset; 5] = [
        MemoryPreset::Embedded,
        MemoryPreset::L2,
        MemoryPreset::L2Small,
        MemoryPreset::Deep,
        MemoryPreset::Spm,
    ];

    /// The CLI/wire spelling of this preset.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MemoryPreset::Embedded => "embedded",
            MemoryPreset::L2 => "l2",
            MemoryPreset::L2Small => "l2-small",
            MemoryPreset::Deep => "deep",
            MemoryPreset::Spm => "spm",
        }
    }

    /// One-line description for catalogs and `--help` style output.
    #[must_use]
    pub fn describe(self) -> &'static str {
        match self {
            MemoryPreset::Embedded => "32 KiB 4-way L1 over 16 MiB DRAM (the default)",
            MemoryPreset::L2 => "default L1 + 256 KiB 8-way L2",
            MemoryPreset::L2Small => "default L1 + small close 64 KiB 4-cycle L2",
            MemoryPreset::Deep => "16 KiB L1 + 512 KiB L2 + slow 64 MiB DRAM",
            MemoryPreset::Spm => "default L1 + 4 KiB scratchpad for DDT descriptors",
        }
    }

    /// The platform configuration this preset names. Always valid — the
    /// catalog is test-enforced against [`MemoryConfig::validate`].
    #[must_use]
    pub fn config(self) -> MemoryConfig {
        match self {
            MemoryPreset::Embedded => MemoryConfig::embedded_default(),
            MemoryPreset::L2 => MemoryConfig::with_l2(),
            MemoryPreset::L2Small => MemoryConfig::with_small_l2(),
            MemoryPreset::Deep => MemoryConfig::deep_hierarchy(),
            MemoryPreset::Spm => MemoryConfig::with_spm(),
        }
    }

    /// The comma-joined list of valid preset names, for error messages
    /// that must name every accepted spelling.
    #[must_use]
    pub fn names() -> String {
        Self::ALL
            .iter()
            .map(|p| p.name())
            .collect::<Vec<_>>()
            .join(", ")
    }
}

impl fmt::Display for MemoryPreset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for MemoryPreset {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm = s.trim().to_ascii_lowercase();
        Self::ALL
            .iter()
            .copied()
            .find(|p| p.name() == norm)
            .ok_or_else(|| format!("unknown memory preset `{s}` (expected {})", Self::names()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_parsing() {
        for preset in MemoryPreset::ALL {
            assert_eq!(preset.name().parse::<MemoryPreset>().unwrap(), preset);
            assert_eq!(preset.to_string(), preset.name());
        }
        // Parsing is whitespace- and case-forgiving, like the other
        // catalogs.
        assert_eq!(
            " L2-Small ".parse::<MemoryPreset>().unwrap(),
            MemoryPreset::L2Small
        );
    }

    #[test]
    fn unknown_names_are_rejected_listing_the_catalog() {
        let err = "quantum".parse::<MemoryPreset>().unwrap_err();
        assert!(err.contains("quantum"), "{err}");
        for preset in MemoryPreset::ALL {
            assert!(err.contains(preset.name()), "{err} misses {preset}");
        }
    }

    #[test]
    fn every_preset_config_is_valid_and_distinct() {
        let mut encodings: Vec<String> = MemoryPreset::ALL
            .iter()
            .map(|p| {
                p.config().validate().expect("preset config valid");
                serde_json::to_string(&p.config()).expect("ser")
            })
            .collect();
        encodings.sort();
        encodings.dedup();
        assert_eq!(
            encodings.len(),
            MemoryPreset::ALL.len(),
            "presets must name distinct platforms"
        );
    }

    #[test]
    fn presets_serialise_round_trip() {
        for preset in MemoryPreset::ALL {
            let json = serde_json::to_string(&preset).expect("ser");
            let back: MemoryPreset = serde_json::from_str(&json).expect("de");
            assert_eq!(back, preset);
        }
    }

    #[test]
    fn embedded_is_the_default_platform() {
        assert_eq!(
            serde_json::to_string(&MemoryPreset::Embedded.config()).expect("ser"),
            serde_json::to_string(&MemoryConfig::embedded_default()).expect("ser"),
        );
    }
}
