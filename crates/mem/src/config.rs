//! Configuration of the simulated memory subsystem.

use serde::{Deserialize, Serialize};

/// Victim-selection policy of a set-associative cache.
///
/// # Example
///
/// ```
/// use ddtr_mem::{CacheConfig, ReplacementPolicy};
///
/// let fifo = CacheConfig {
///     replacement: ReplacementPolicy::Fifo,
///     ..CacheConfig::default()
/// };
/// fifo.validate().expect("replacement does not affect geometry");
/// assert_eq!(ReplacementPolicy::default(), ReplacementPolicy::Lru);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplacementPolicy {
    /// Evict the least recently used way (the default).
    #[default]
    Lru,
    /// Evict the oldest-filled way, ignoring hits (cheaper hardware).
    Fifo,
    /// Evict a pseudo-random way (deterministic xorshift sequence).
    Random,
}

impl std::fmt::Display for ReplacementPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ReplacementPolicy::Lru => "lru",
            ReplacementPolicy::Fifo => "fifo",
            ReplacementPolicy::Random => "random",
        })
    }
}

/// Geometry and timing of one cache level.
///
/// The defaults model a small embedded L1 data cache: 32 KiB, 32-byte lines,
/// 4-way set-associative, 1-cycle hits, LRU replacement — in line with the
/// embedded platforms targeted by the DATE 2006 study.
///
/// # Example
///
/// ```
/// use ddtr_mem::CacheConfig;
///
/// let cfg = CacheConfig::default();
/// assert_eq!(cfg.capacity_bytes, 32 * 1024);
/// assert_eq!(cfg.sets(), 32 * 1024 / (32 * 4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Cache line size in bytes.
    pub line_bytes: u64,
    /// Associativity (number of ways per set).
    pub ways: u32,
    /// Latency of a hit, in CPU cycles.
    pub hit_cycles: u64,
    /// Victim selection on a miss in a full set.
    pub replacement: ReplacementPolicy,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero line size or ways, or a
    /// capacity that does not hold at least one full set).
    #[must_use]
    pub fn sets(&self) -> u64 {
        assert!(self.line_bytes > 0, "line size must be non-zero");
        assert!(self.ways > 0, "associativity must be non-zero");
        let sets = self.capacity_bytes / (self.line_bytes * u64::from(self.ways));
        assert!(sets > 0, "cache must contain at least one set");
        sets
    }

    /// Validates the configuration, returning a human-readable reason when
    /// the geometry is unusable.
    ///
    /// # Errors
    ///
    /// Returns an error string if any field is zero, if the line size is not
    /// a power of two, or if capacity is not a multiple of `line * ways`.
    pub fn validate(&self) -> Result<(), String> {
        if self.line_bytes == 0 {
            return Err("cache line size must be non-zero".into());
        }
        if !self.line_bytes.is_power_of_two() {
            return Err(format!(
                "cache line size must be a power of two, got {}",
                self.line_bytes
            ));
        }
        if self.ways == 0 {
            return Err("cache associativity must be non-zero".into());
        }
        let set_bytes = self.line_bytes * u64::from(self.ways);
        if self.capacity_bytes == 0 || !self.capacity_bytes.is_multiple_of(set_bytes) {
            return Err(format!(
                "cache capacity {} is not a multiple of line*ways = {}",
                self.capacity_bytes, set_bytes
            ));
        }
        Ok(())
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity_bytes: 32 * 1024,
            line_bytes: 32,
            ways: 4,
            hit_cycles: 1,
            replacement: ReplacementPolicy::Lru,
        }
    }
}

/// Geometry and timing of an optional scratchpad memory (SPM).
///
/// Scratchpads are the alternative the related work of the paper explores
/// for hot data ([Kandemir DAC'01], [Steinke DATE'02], [Verma
/// CODES+ISSS'04]): a small, software-managed SRAM with deterministic
/// single-digit-cycle access that bypasses the cache hierarchy entirely.
/// Here the scratchpad holds the hottest dynamic objects — the DDT
/// descriptors — when enabled (see
/// [`MemorySystem::alloc_hot`](crate::MemorySystem::alloc_hot)).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpmConfig {
    /// Scratchpad capacity in bytes.
    pub capacity_bytes: u64,
    /// Latency of one access, in CPU cycles.
    pub access_cycles: u64,
}

impl Default for SpmConfig {
    fn default() -> Self {
        SpmConfig {
            capacity_bytes: 4 * 1024,
            access_cycles: 1,
        }
    }
}

/// Timing and sizing of the simulated main memory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Latency of one line transfer, in CPU cycles.
    pub access_cycles: u64,
    /// Size of the DRAM array in bytes (bounds the heap arena).
    pub capacity_bytes: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            access_cycles: 60,
            capacity_bytes: 16 * 1024 * 1024,
        }
    }
}

/// Cost charged for the bookkeeping work of the dynamic memory manager.
///
/// The paper's access counts include the internal mechanisms of the DDTs,
/// which in turn call the allocator. Rather than simulating the free-list
/// walk address-by-address, each `malloc`/`free` is charged a fixed number of
/// metadata accesses and CPU cycles, which is how the original framework's
/// dynamic-memory-manager cost model works.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AllocCostModel {
    /// Metadata reads+writes charged per allocation.
    pub accesses_per_alloc: u64,
    /// Metadata reads+writes charged per free.
    pub accesses_per_free: u64,
    /// Pure CPU cycles charged per allocation.
    pub cycles_per_alloc: u64,
    /// Pure CPU cycles charged per free.
    pub cycles_per_free: u64,
}

impl Default for AllocCostModel {
    fn default() -> Self {
        AllocCostModel {
            accesses_per_alloc: 4,
            accesses_per_free: 4,
            cycles_per_alloc: 30,
            cycles_per_free: 24,
        }
    }
}

/// Full configuration of a [`MemorySystem`](crate::MemorySystem).
///
/// # Example
///
/// ```
/// use ddtr_mem::{MemoryConfig, MemorySystem};
///
/// let cfg = MemoryConfig::embedded_default();
/// cfg.validate().expect("default config is valid");
/// let mem = MemorySystem::new(cfg);
/// assert_eq!(mem.report().accesses, 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// L1 data cache geometry.
    pub l1: CacheConfig,
    /// Optional unified L2 cache between the L1 and main memory.
    pub l2: Option<CacheConfig>,
    /// Optional scratchpad memory for hot objects (DDT descriptors).
    pub spm: Option<SpmConfig>,
    /// Main memory model.
    pub dram: DramConfig,
    /// Allocator bookkeeping costs.
    pub alloc_cost: AllocCostModel,
    /// Heap free-region selection policy.
    pub fit_policy: crate::FitPolicy,
    /// Cycles charged per pure CPU operation (comparisons, arithmetic).
    pub cpu_op_cycles: u64,
    /// Base of the simulated heap arena.
    pub heap_base: u64,
}

impl MemoryConfig {
    /// The default embedded platform used throughout the reproduction:
    /// 32 KiB 4-way L1 with 32-byte lines over a 16 MiB DRAM.
    #[must_use]
    pub fn embedded_default() -> Self {
        Self::default()
    }

    /// A richer platform with a 256 KiB 8-way L2 behind the default L1 —
    /// used by the platform-sweep example and hierarchy tests.
    #[must_use]
    pub fn with_l2() -> Self {
        MemoryConfig {
            l2: Some(CacheConfig {
                capacity_bytes: 256 * 1024,
                line_bytes: 32,
                ways: 8,
                hit_cycles: 8,
                replacement: ReplacementPolicy::Lru,
            }),
            ..Self::default()
        }
    }

    /// A `with_l2` variant with a small, close L2: 64 KiB 8-way with
    /// 4-cycle hits — the cheap-SoC point of the platform family.
    #[must_use]
    pub fn with_small_l2() -> Self {
        MemoryConfig {
            l2: Some(CacheConfig {
                capacity_bytes: 64 * 1024,
                line_bytes: 32,
                ways: 8,
                hit_cycles: 4,
                replacement: ReplacementPolicy::Lru,
            }),
            ..Self::default()
        }
    }

    /// A deeper three-level hierarchy: a halved 16 KiB 2-way L1 in front
    /// of a large 512 KiB 16-way L2, over a bigger but slower DRAM — the
    /// application-processor end of the platform family, where a DDT's
    /// locality is rewarded twice before main memory is charged.
    #[must_use]
    pub fn deep_hierarchy() -> Self {
        MemoryConfig {
            l1: CacheConfig {
                capacity_bytes: 16 * 1024,
                line_bytes: 32,
                ways: 2,
                hit_cycles: 1,
                replacement: ReplacementPolicy::Lru,
            },
            l2: Some(CacheConfig {
                capacity_bytes: 512 * 1024,
                line_bytes: 32,
                ways: 16,
                hit_cycles: 12,
                replacement: ReplacementPolicy::Lru,
            }),
            dram: DramConfig {
                access_cycles: 100,
                capacity_bytes: 64 * 1024 * 1024,
            },
            ..Self::default()
        }
    }

    /// The default platform extended with a scratchpad for DDT descriptors
    /// — used by the scratchpad ablation.
    #[must_use]
    pub fn with_spm() -> Self {
        MemoryConfig {
            spm: Some(SpmConfig::default()),
            ..Self::default()
        }
    }

    /// A deliberately tiny platform for tests: 1 KiB direct-mapped cache,
    /// small arena, so that evictions and out-of-memory paths are reachable.
    #[must_use]
    pub fn tiny_for_tests() -> Self {
        MemoryConfig {
            l1: CacheConfig {
                capacity_bytes: 1024,
                line_bytes: 32,
                ways: 1,
                hit_cycles: 1,
                replacement: ReplacementPolicy::Lru,
            },
            l2: None,
            spm: None,
            dram: DramConfig {
                access_cycles: 50,
                capacity_bytes: 64 * 1024,
            },
            alloc_cost: AllocCostModel::default(),
            fit_policy: crate::FitPolicy::FirstFit,
            cpu_op_cycles: 1,
            heap_base: 0x1000,
        }
    }

    /// Validates all sub-configurations.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field found.
    pub fn validate(&self) -> Result<(), String> {
        self.l1.validate()?;
        if let Some(l2) = &self.l2 {
            l2.validate()?;
            if l2.line_bytes != self.l1.line_bytes {
                return Err(format!(
                    "L2 line size {} must match L1 line size {}",
                    l2.line_bytes, self.l1.line_bytes
                ));
            }
            if l2.capacity_bytes <= self.l1.capacity_bytes {
                return Err("L2 must be larger than L1".into());
            }
        }
        if self.dram.capacity_bytes == 0 {
            return Err("dram capacity must be non-zero".into());
        }
        if self.heap_base == 0 {
            return Err("heap base must be non-zero (null is reserved)".into());
        }
        if let Some(spm) = &self.spm {
            if spm.capacity_bytes == 0 {
                return Err("scratchpad capacity must be non-zero".into());
            }
            // The scratchpad occupies [SPM_BASE, SPM_BASE + capacity),
            // which must stay below the heap arena.
            if crate::system::SPM_BASE + spm.capacity_bytes > self.heap_base {
                return Err(format!(
                    "scratchpad of {} bytes overlaps the heap arena at {:#x}",
                    spm.capacity_bytes, self.heap_base
                ));
            }
        }
        Ok(())
    }
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig {
            l1: CacheConfig::default(),
            l2: None,
            spm: None,
            dram: DramConfig::default(),
            alloc_cost: AllocCostModel::default(),
            fit_policy: crate::FitPolicy::FirstFit,
            cpu_op_cycles: 1,
            heap_base: 0x0010_0000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cache_geometry() {
        let cfg = CacheConfig::default();
        assert_eq!(cfg.sets(), 256);
        cfg.validate().expect("default is valid");
    }

    #[test]
    fn rejects_non_power_of_two_line() {
        let cfg = CacheConfig {
            line_bytes: 48,
            ..CacheConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_zero_ways() {
        let cfg = CacheConfig {
            ways: 0,
            ..CacheConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_misaligned_capacity() {
        let cfg = CacheConfig {
            capacity_bytes: 1000,
            ..CacheConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn memory_config_default_is_valid() {
        MemoryConfig::default().validate().expect("valid");
        MemoryConfig::tiny_for_tests().validate().expect("valid");
    }

    #[test]
    fn rejects_zero_heap_base() {
        let cfg = MemoryConfig {
            heap_base: 0,
            ..MemoryConfig::default()
        };
        assert!(cfg.validate().is_err());
    }
}
