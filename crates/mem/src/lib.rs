//! Simulated embedded memory subsystem for dynamic-data-type exploration.
//!
//! This crate is the lowest substrate of the `ddtr` workspace. It models the
//! part of an embedded platform that the DATE 2006 paper *"Dynamic Data Type
//! Refinement Methodology for Systematic Performance–Energy Design
//! Exploration of Network Applications"* charges its four cost metrics to:
//!
//! * a **heap allocator** ([`SimAllocator`]) managing a simulated address
//!   space with free-list allocation, block headers and fragmentation — the
//!   source of the *memory footprint* metric,
//! * a **set-associative L1 cache** ([`Cache`]) in front of a **DRAM model**
//!   ([`DramModel`]) — the source of the *execution time* (cycles) metric,
//! * a **CACTI-like energy model** ([`EnergyModel`]) assigning a per-access
//!   energy to every hierarchy level — the source of the *energy* metric,
//! * an access ledger ([`MemStats`]) — the source of the *memory accesses*
//!   metric.
//!
//! Everything is deterministic: two runs with the same inputs produce
//! bit-identical reports, which the exploration methodology requires in order
//! to compare hundreds of simulations fairly.
//!
//! # Example
//!
//! ```
//! use ddtr_mem::{MemoryConfig, MemorySystem};
//!
//! let mut mem = MemorySystem::new(MemoryConfig::default());
//! let block = mem.alloc(64).expect("arena has room");
//! mem.reset_stats(); // exclude allocator bookkeeping from the measurement
//! mem.write(block, 64);
//! mem.read(block, 8);
//! let report = mem.report();
//! assert_eq!(report.accesses, 2);
//! assert!(report.energy_nj > 0.0);
//! assert!(report.peak_footprint_bytes >= 64);
//! ```

mod addr;
mod allocator;
mod cache;
mod config;
mod dram;
mod energy;
mod preset;
mod report;
mod system;

pub use addr::VirtAddr;
pub use allocator::{AllocError, AllocStats, FitPolicy, SimAllocator};
pub use cache::{Cache, CacheStats, LineAccess};
pub use config::{
    AllocCostModel, CacheConfig, DramConfig, MemoryConfig, ReplacementPolicy, SpmConfig,
};
pub use dram::{DramModel, DramStats};
pub use energy::EnergyModel;
pub use preset::MemoryPreset;
pub use report::{CostReport, MemStats};
pub use system::MemorySystem;
