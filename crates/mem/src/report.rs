//! Aggregated measurement ledger and the four-metric cost report.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::AddAssign;

/// Raw counters accumulated by a [`crate::MemorySystem`] during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MemStats {
    /// Read transactions issued by the workload.
    pub reads: u64,
    /// Write transactions issued by the workload.
    pub writes: u64,
    /// Bytes read.
    pub read_bytes: u64,
    /// Bytes written.
    pub write_bytes: u64,
    /// Total elapsed cycles (memory latency plus charged CPU work).
    pub cycles: u64,
    /// Total dynamic + leakage energy in nanojoules.
    pub energy_nj: f64,
    /// Successful heap allocations.
    pub allocs: u64,
    /// Heap frees.
    pub frees: u64,
}

impl MemStats {
    /// Total memory accesses — the paper's *memory accesses* metric.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }
}

impl AddAssign for MemStats {
    fn add_assign(&mut self, rhs: MemStats) {
        self.reads += rhs.reads;
        self.writes += rhs.writes;
        self.read_bytes += rhs.read_bytes;
        self.write_bytes += rhs.write_bytes;
        self.cycles += rhs.cycles;
        self.energy_nj += rhs.energy_nj;
        self.allocs += rhs.allocs;
        self.frees += rhs.frees;
    }
}

/// The four cost metrics of the DATE 2006 methodology for one simulation.
///
/// Lower is better in every dimension. [`CostReport::dominates`] implements
/// the Pareto relation used by step 3 of the methodology.
///
/// # Example
///
/// ```
/// use ddtr_mem::CostReport;
///
/// let fast = CostReport { accesses: 10, cycles: 100, energy_nj: 5.0, peak_footprint_bytes: 64 };
/// let slow = CostReport { accesses: 20, cycles: 300, energy_nj: 9.0, peak_footprint_bytes: 64 };
/// assert!(fast.dominates(&slow));
/// assert!(!slow.dominates(&fast));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostReport {
    /// Total memory accesses.
    pub accesses: u64,
    /// Execution time in cycles.
    pub cycles: u64,
    /// Energy in nanojoules.
    pub energy_nj: f64,
    /// Peak heap footprint in bytes (allocator overhead included).
    pub peak_footprint_bytes: u64,
}

impl CostReport {
    /// A zero report (useful as an accumulator identity).
    #[must_use]
    pub fn zero() -> Self {
        CostReport {
            accesses: 0,
            cycles: 0,
            energy_nj: 0.0,
            peak_footprint_bytes: 0,
        }
    }

    /// Returns the metrics as an array ordered
    /// `[energy, cycles, accesses, footprint]`, the order used by the
    /// paper's tables.
    #[must_use]
    pub fn as_array(&self) -> [f64; 4] {
        [
            self.energy_nj,
            self.cycles as f64,
            self.accesses as f64,
            self.peak_footprint_bytes as f64,
        ]
    }

    /// Pareto dominance: no metric worse, at least one strictly better.
    #[must_use]
    pub fn dominates(&self, other: &CostReport) -> bool {
        let a = self.as_array();
        let b = other.as_array();
        let mut strictly = false;
        for (x, y) in a.iter().zip(b.iter()) {
            if x > y {
                return false;
            }
            if x < y {
                strictly = true;
            }
        }
        strictly
    }
}

impl fmt::Display for CostReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "energy {:.2} uJ | time {} cycles | {} accesses | footprint {} B",
            self.energy_nj / 1000.0,
            self.cycles,
            self.accesses,
            self.peak_footprint_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(accesses: u64, cycles: u64, energy: f64, fp: u64) -> CostReport {
        CostReport {
            accesses,
            cycles,
            energy_nj: energy,
            peak_footprint_bytes: fp,
        }
    }

    #[test]
    fn accesses_sum_reads_writes() {
        let s = MemStats {
            reads: 3,
            writes: 4,
            ..MemStats::default()
        };
        assert_eq!(s.accesses(), 7);
    }

    #[test]
    fn add_assign_accumulates_all_fields() {
        let mut a = MemStats {
            reads: 1,
            writes: 2,
            read_bytes: 8,
            write_bytes: 16,
            cycles: 10,
            energy_nj: 1.5,
            allocs: 1,
            frees: 0,
        };
        a += a;
        assert_eq!(a.reads, 2);
        assert_eq!(a.cycles, 20);
        assert!((a.energy_nj - 3.0).abs() < 1e-12);
    }

    #[test]
    fn dominance_requires_strict_improvement() {
        let a = r(10, 10, 10.0, 10);
        assert!(!a.dominates(&a), "equal points do not dominate");
        let better = r(9, 10, 10.0, 10);
        assert!(better.dominates(&a));
        assert!(!a.dominates(&better));
    }

    #[test]
    fn incomparable_points_do_not_dominate() {
        let a = r(5, 20, 10.0, 10);
        let b = r(20, 5, 10.0, 10);
        assert!(!a.dominates(&b));
        assert!(!b.dominates(&a));
    }

    #[test]
    fn array_order_matches_paper_tables() {
        let a = r(3, 2, 1.0, 4);
        assert_eq!(a.as_array(), [1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", CostReport::zero()).is_empty());
    }
}
