//! Tests of the two-level cache hierarchy.

use ddtr_mem::{CacheConfig, DramConfig, MemoryConfig, MemorySystem, VirtAddr};

/// A platform whose L1 is tiny and L2 moderate, so a strided working set
/// fits the L2 but thrashes the L1.
fn two_level() -> MemoryConfig {
    MemoryConfig {
        l1: CacheConfig {
            capacity_bytes: 512,
            line_bytes: 32,
            ways: 1,
            hit_cycles: 1,
            ..CacheConfig::default()
        },
        l2: Some(CacheConfig {
            capacity_bytes: 8 * 1024,
            line_bytes: 32,
            ways: 4,
            hit_cycles: 6,
            ..CacheConfig::default()
        }),
        dram: DramConfig {
            access_cycles: 80,
            capacity_bytes: 256 * 1024,
        },
        ..MemoryConfig::tiny_for_tests()
    }
}

fn one_level() -> MemoryConfig {
    MemoryConfig {
        l2: None,
        ..two_level()
    }
}

/// Sweep a 4 KiB working set repeatedly: thrashes the 512 B L1, fits the
/// 8 KiB L2.
fn sweep(mem: &mut MemorySystem) -> u64 {
    let base = mem.alloc(4096).expect("arena fits");
    mem.reset_stats();
    for _round in 0..4 {
        for off in (0..4096).step_by(32) {
            mem.read(base.offset(off), 8);
        }
    }
    mem.report().cycles
}

#[test]
fn l2_absorbs_l1_thrashing() {
    let mut with = MemorySystem::new(two_level());
    let mut without = MemorySystem::new(one_level());
    let cycles_with = sweep(&mut with);
    let cycles_without = sweep(&mut without);
    assert!(
        cycles_with * 2 < cycles_without,
        "L2 should absorb the refills: {cycles_with} vs {cycles_without}"
    );
    let l2 = with.l2_stats().expect("l2 configured");
    assert!(l2.read_hits > l2.read_misses, "steady state hits in L2");
}

#[test]
fn l2_stats_absent_without_l2() {
    let mem = MemorySystem::new(one_level());
    assert!(mem.l2_stats().is_none());
}

#[test]
fn dirty_victims_land_in_l2_not_dram() {
    let mut mem = MemorySystem::new(two_level());
    let base = mem.alloc(2048).expect("arena fits");
    mem.reset_stats();
    // Dirty a 2 KiB region (64 lines through a 16-line L1), then sweep it
    // again: every L1 victim writeback must be absorbed by the L2.
    for round in 0..3 {
        for off in (0..2048).step_by(32) {
            if round % 2 == 0 {
                mem.write(base.offset(off), 8);
            } else {
                mem.read(base.offset(off), 8);
            }
        }
    }
    let l2 = mem.l2_stats().expect("l2 configured");
    assert!(l2.write_hits + l2.write_misses > 0, "writebacks reached L2");
    // The L2 never evicted a dirty line for this small working set.
    assert_eq!(l2.writebacks, 0, "nothing should spill to DRAM");
}

#[test]
fn writeback_goes_to_the_victims_address() {
    // Regression guard for multi-level correctness: the L1 victim's
    // *own* address is what reaches the next level, not the address that
    // caused the eviction. With a direct-mapped L1, address A dirtied and
    // then evicted by B (same set) must appear as a write at A in the L2,
    // making a subsequent L2 probe of A hit.
    let mut mem = MemorySystem::new(two_level());
    // Two addresses mapping to the same L1 set (512 B direct-mapped = 16
    // lines): A and A + 512.
    let a = VirtAddr::new(0x1000);
    let b = a.offset(512);
    mem.write(a, 8); // miss, dirty A in L1 (L2 sees the fill read)
    mem.read(b, 8); // evicts dirty A -> writeback lands at A in L2
    let l2_before =
        mem.l2_stats().expect("l2").write_hits + mem.l2_stats().expect("l2").write_misses;
    assert!(l2_before > 0, "the writeback reached the L2");
    // A is now resident (and dirty) in the L2: re-reading A misses L1 but
    // hits L2.
    let hits_before = mem.l2_stats().expect("l2").read_hits;
    mem.read(a, 8);
    assert_eq!(
        mem.l2_stats().expect("l2").read_hits,
        hits_before + 1,
        "A must hit in L2 after its writeback"
    );
}

#[test]
fn l2_validation_rules() {
    let mut cfg = two_level();
    cfg.l2 = Some(CacheConfig {
        line_bytes: 64, // mismatched line size
        ..cfg.l2.expect("set")
    });
    assert!(cfg.validate().is_err());

    let mut cfg = two_level();
    cfg.l2 = Some(CacheConfig {
        capacity_bytes: 256, // smaller than L1
        line_bytes: 32,
        ways: 1,
        hit_cycles: 6,
        ..CacheConfig::default()
    });
    assert!(cfg.validate().is_err());

    assert!(MemoryConfig::with_l2().validate().is_ok());
}

#[test]
fn l2_adds_energy_per_probe() {
    let mut with = MemorySystem::new(two_level());
    let mut without = MemorySystem::new(one_level());
    // A single cold miss: the two-level system pays the L2 probe energy on
    // top of the DRAM fill.
    let a1 = with.alloc(64).expect("fits");
    let a2 = without.alloc(64).expect("fits");
    with.reset_stats();
    without.reset_stats();
    with.read(a1, 8);
    without.read(a2, 8);
    assert!(with.stats().energy_nj > without.stats().energy_nj);
}
