//! Integration tests of the platform extension knobs: scratchpad memory,
//! allocator fit policies and cache replacement policies.

use ddtr_mem::{CacheConfig, FitPolicy, MemoryConfig, MemorySystem, ReplacementPolicy, SpmConfig};

#[test]
fn alloc_hot_lands_in_the_scratchpad_when_configured() {
    let mut m = MemorySystem::new(MemoryConfig::with_spm());
    let hot = m.alloc_hot(24).expect("spm has room");
    assert!(m.is_spm_addr(hot));
    assert_eq!(m.spm_used(), 24);
    // Scratchpad residents do not occupy the heap arena.
    assert_eq!(m.alloc_stats().live_gross_bytes, 0);
}

#[test]
fn alloc_hot_falls_back_to_heap_without_scratchpad() {
    let mut m = MemorySystem::new(MemoryConfig::default());
    let hot = m.alloc_hot(24).expect("heap has room");
    assert!(!m.is_spm_addr(hot));
    assert_eq!(m.spm_used(), 0);
    assert!(m.alloc_stats().live_gross_bytes > 0);
    m.free(hot).expect("heap block is freeable");
}

#[test]
fn alloc_hot_falls_back_once_the_scratchpad_fills() {
    let cfg = MemoryConfig {
        spm: Some(SpmConfig {
            capacity_bytes: 64,
            access_cycles: 1,
        }),
        ..MemoryConfig::default()
    };
    let mut m = MemorySystem::new(cfg);
    let a = m.alloc_hot(48).expect("fits the spm");
    let b = m.alloc_hot(48).expect("overflows to the heap");
    assert!(m.is_spm_addr(a));
    assert!(!m.is_spm_addr(b));
    assert_eq!(m.spm_used(), 48);
}

#[test]
fn scratchpad_accesses_bypass_the_cache_at_fixed_cost() {
    let mut m = MemorySystem::new(MemoryConfig::with_spm());
    let hot = m.alloc_hot(32).expect("spm has room");
    let cache_before = m.cache_stats().accesses();
    let c1 = m.read(hot, 8);
    let c2 = m.read(hot, 8);
    assert_eq!(m.cache_stats().accesses(), cache_before, "no cache traffic");
    assert_eq!(c1, c2, "every scratchpad access costs the same");
    assert_eq!(c1, 1, "single-cycle scratchpad");
}

#[test]
fn scratchpad_descriptor_access_is_cheaper_than_a_cold_heap_access() {
    // The first touch of a heap line misses all the way to DRAM; the first
    // touch of a scratchpad word costs one cycle. This is the entire value
    // proposition of SPM placement for hot descriptors.
    let mut with_spm = MemorySystem::new(MemoryConfig::with_spm());
    let hot = with_spm.alloc_hot(24).expect("spm");
    let spm_cycles = with_spm.read(hot, 8);

    let mut without = MemorySystem::new(MemoryConfig::default());
    let cold = without.alloc_hot(24).expect("heap");
    let heap_cycles = without.read(cold, 8);

    assert!(
        heap_cycles > 10 * spm_cycles,
        "cold heap read ({heap_cycles}) vs spm read ({spm_cycles})"
    );
}

#[test]
fn spm_energy_is_accounted_but_small() {
    let mut m = MemorySystem::new(MemoryConfig::with_spm());
    let hot = m.alloc_hot(32).expect("spm");
    let e0 = m.stats().energy_nj;
    m.write(hot, 32);
    let e1 = m.stats().energy_nj;
    assert!(e1 > e0, "spm writes consume energy");
    // One L1-sized access would cost more than a 4 KiB scratchpad access.
    let heap = m.alloc(32).expect("heap");
    m.write(heap, 32);
    m.write(heap, 32); // warm (hit) write
    let warm_start = m.stats().energy_nj;
    m.write(heap, 32);
    let warm_cost = m.stats().energy_nj - warm_start;
    assert!(e1 - e0 < warm_cost, "spm access is the cheapest access");
}

#[test]
fn spm_config_validation_rejects_overlap_with_heap() {
    let cfg = MemoryConfig {
        spm: Some(SpmConfig {
            capacity_bytes: 1 << 30,
            access_cycles: 1,
        }),
        ..MemoryConfig::default()
    };
    let err = cfg.validate().expect_err("spm bigger than the heap base");
    assert!(err.contains("overlaps"), "got: {err}");
}

#[test]
fn fit_policy_flows_from_config_to_allocator() {
    for policy in [FitPolicy::FirstFit, FitPolicy::BestFit, FitPolicy::NextFit] {
        let cfg = MemoryConfig {
            fit_policy: policy,
            ..MemoryConfig::default()
        };
        let m = MemorySystem::new(cfg);
        assert_eq!(m.allocator().policy(), policy);
    }
}

#[test]
fn fit_policies_produce_different_layouts_but_identical_user_bytes() {
    // After freeing an early block, first fit reuses its hole while next
    // fit keeps moving forward — the canonical layout divergence.
    let run = |policy: FitPolicy| {
        let cfg = MemoryConfig {
            fit_policy: policy,
            ..MemoryConfig::tiny_for_tests()
        };
        let mut m = MemorySystem::new(cfg);
        let a = m.alloc(64).expect("fits");
        let _b = m.alloc(64).expect("fits");
        m.free(a).expect("free");
        (m.alloc(64).expect("refit"), m.alloc_stats().live_user_bytes)
    };
    let (first_addr, first_bytes) = run(FitPolicy::FirstFit);
    let (next_addr, next_bytes) = run(FitPolicy::NextFit);
    assert_eq!(first_bytes, next_bytes, "accounting is policy-independent");
    assert_ne!(first_addr, next_addr, "layouts differ between policies");
}

#[test]
fn replacement_policy_changes_the_miss_profile() {
    // A working set slightly larger than one set, with periodic re-touches
    // of one line: LRU keeps the re-touched line, FIFO does not.
    let run = |replacement: ReplacementPolicy| {
        let cfg = MemoryConfig {
            l1: CacheConfig {
                capacity_bytes: 256,
                line_bytes: 32,
                ways: 2,
                hit_cycles: 1,
                replacement,
            },
            ..MemoryConfig::tiny_for_tests()
        };
        let mut m = MemorySystem::new(cfg);
        let base = m.alloc(8192).expect("fits");
        for round in 0..50u64 {
            m.read(base, 8); // the hot line
                             // two conflicting lines mapping to the same set (stride = sets*line)
            m.read(base.offset(4 * 32 * (1 + round % 2)), 8);
        }
        m.cache_stats().miss_ratio()
    };
    let lru = run(ReplacementPolicy::Lru);
    let fifo = run(ReplacementPolicy::Fifo);
    assert_ne!(lru, fifo, "policies must be observable in the miss profile");
}

#[test]
fn reports_stay_deterministic_with_all_knobs_enabled() {
    let run = || {
        let cfg = MemoryConfig {
            spm: Some(SpmConfig::default()),
            fit_policy: FitPolicy::BestFit,
            l1: CacheConfig {
                replacement: ReplacementPolicy::Random,
                ..CacheConfig::default()
            },
            ..MemoryConfig::default()
        };
        let mut m = MemorySystem::new(cfg);
        let hot = m.alloc_hot(32).expect("spm");
        let block = m.alloc(4096).expect("heap");
        for i in 0..500u64 {
            m.read(hot, 8);
            m.write(
                block.offset((i * 37) % 4000),
                16.min(4096 - (i * 37) % 4000),
            );
        }
        m.report()
    };
    let a = run();
    let b = run();
    assert_eq!(a.accesses, b.accesses);
    assert_eq!(a.cycles, b.cycles);
    assert!((a.energy_nj - b.energy_nj).abs() < 1e-9);
}
