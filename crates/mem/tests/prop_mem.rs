//! Property-based tests for the simulated memory subsystem.

use ddtr_mem::{Cache, CacheConfig, MemoryConfig, MemorySystem, SimAllocator, VirtAddr};
use proptest::prelude::*;

/// Operations applied to the allocator under test.
#[derive(Debug, Clone)]
enum HeapOp {
    Alloc(u64),
    /// Free the i-th live block (modulo the live count).
    Free(usize),
}

fn heap_ops() -> impl Strategy<Value = Vec<HeapOp>> {
    prop::collection::vec(
        prop_oneof![
            (1u64..256).prop_map(HeapOp::Alloc),
            (0usize..64).prop_map(HeapOp::Free),
        ],
        1..200,
    )
}

proptest! {
    /// Live blocks never overlap, regardless of the alloc/free sequence.
    #[test]
    fn allocator_blocks_never_overlap(ops in heap_ops()) {
        let mut heap = SimAllocator::new(0x1000, 1 << 20);
        let mut live: Vec<(VirtAddr, u64)> = Vec::new();
        for op in ops {
            match op {
                HeapOp::Alloc(size) => {
                    if let Ok(addr) = heap.alloc(size) {
                        live.push((addr, size));
                    }
                }
                HeapOp::Free(i) => {
                    if !live.is_empty() {
                        let (addr, _) = live.remove(i % live.len());
                        heap.free(addr).expect("live block frees cleanly");
                    }
                }
            }
            // No two live blocks overlap.
            let mut spans: Vec<(u64, u64)> = live
                .iter()
                .map(|&(a, s)| (a.as_u64(), a.as_u64() + s))
                .collect();
            spans.sort_unstable();
            for w in spans.windows(2) {
                prop_assert!(w[0].1 <= w[1].0, "blocks overlap: {:?}", w);
            }
        }
    }

    /// Freeing everything coalesces the arena back to a single region and
    /// zero live bytes.
    #[test]
    fn allocator_full_free_coalesces(sizes in prop::collection::vec(1u64..512, 1..64)) {
        let mut heap = SimAllocator::new(0x1000, 1 << 20);
        let blocks: Vec<_> = sizes.iter().map(|&s| heap.alloc(s).expect("fits")).collect();
        for b in blocks {
            heap.free(b).expect("free");
        }
        prop_assert_eq!(heap.free_regions(), 1);
        prop_assert_eq!(heap.stats().live_gross_bytes, 0);
        prop_assert_eq!(heap.stats().live_user_bytes, 0);
    }

    /// Peak footprint is monotone non-decreasing and at least current usage.
    #[test]
    fn allocator_peak_is_monotone(ops in heap_ops()) {
        let mut heap = SimAllocator::new(0x1000, 1 << 20);
        let mut live: Vec<VirtAddr> = Vec::new();
        let mut last_peak = 0;
        for op in ops {
            match op {
                HeapOp::Alloc(size) => {
                    if let Ok(a) = heap.alloc(size) {
                        live.push(a);
                    }
                }
                HeapOp::Free(i) => {
                    if !live.is_empty() {
                        let a = live.remove(i % live.len());
                        heap.free(a).expect("free");
                    }
                }
            }
            let s = heap.stats();
            prop_assert!(s.peak_gross_bytes >= last_peak);
            prop_assert!(s.peak_gross_bytes >= s.live_gross_bytes);
            last_peak = s.peak_gross_bytes;
        }
    }

    /// Re-accessing an address immediately after the first access always
    /// hits (temporal locality is honoured by the LRU cache).
    #[test]
    fn cache_immediate_reaccess_hits(addrs in prop::collection::vec(0u64..(1 << 20), 1..100)) {
        let mut cache = Cache::new(CacheConfig::default());
        for raw in addrs {
            let a = VirtAddr::new(raw);
            cache.access(a, false);
            let (hit, _) = cache.access(a, false);
            prop_assert!(hit);
        }
    }

    /// Hit + miss counts always add up to total accesses.
    #[test]
    fn cache_counters_are_consistent(
        ops in prop::collection::vec((0u64..(1 << 16), any::<bool>()), 1..300)
    ) {
        let mut cache = Cache::new(CacheConfig {
            capacity_bytes: 1024,
            line_bytes: 32,
            ways: 2,
            hit_cycles: 1,
            ..CacheConfig::default()
        });
        for (raw, write) in &ops {
            cache.access(VirtAddr::new(*raw), *write);
        }
        let s = cache.stats();
        prop_assert_eq!(s.accesses(), ops.len() as u64);
        prop_assert!(s.writebacks <= s.read_misses + s.write_misses);
    }

    /// The composed system is deterministic: same op sequence, same report.
    #[test]
    fn memory_system_is_deterministic(
        ops in prop::collection::vec((0u64..4096, 1u64..64, any::<bool>()), 1..200)
    ) {
        let run = || {
            let mut m = MemorySystem::new(MemoryConfig::tiny_for_tests());
            let base = m.alloc(8192).expect("arena fits");
            for (off, size, write) in &ops {
                let addr = base.offset(off % 8000);
                if *write {
                    m.write(addr, *size);
                } else {
                    m.read(addr, *size);
                }
            }
            m.report()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.accesses, b.accesses);
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert!((a.energy_nj - b.energy_nj).abs() < 1e-9);
        prop_assert_eq!(a.peak_footprint_bytes, b.peak_footprint_bytes);
    }

    /// Energy and cycles are strictly positive for any non-empty workload.
    #[test]
    fn work_always_costs_something(size in 1u64..128) {
        let mut m = MemorySystem::new(MemoryConfig::default());
        let a = m.alloc(size).expect("fits");
        m.write(a, size);
        let r = m.report();
        prop_assert!(r.cycles > 0);
        prop_assert!(r.energy_nj > 0.0);
        prop_assert!(r.peak_footprint_bytes >= size);
    }
}
