//! End-to-end tests of the `ddtr serve` service: protocol round trips
//! through a live server, determinism against the direct entry points,
//! warm-cache answering across client connections, malformed-input
//! handling, and cancellation.

use ddtr_core::{dispatch, ExploreRequest, ExploreResult, MemoryPreset, MethodologyConfig};
use ddtr_engine::EngineConfig;
use ddtr_serve::{
    Client, ClientError, Endpoint, ErrorCode, Event, JobSpec, Request, RequestBody, Server,
    ServerConfig, PROTOCOL_VERSION,
};
use std::io::Write;
use std::net::TcpListener;
use std::sync::{Arc, Mutex};

/// A `Write` sink shareable with the server's writer threads.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).expect("utf8 output")
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Runs one in-process serve session over the given request lines and
/// returns the emitted events in order.
fn serve_script(jobs: usize, lines: &[String]) -> Vec<Event> {
    serve_script_with(EngineConfig::with_jobs(jobs), lines)
}

/// Like [`serve_script`], but with full control over the engine
/// configuration — used by the shared-store tests to point two separate
/// server processes at one cache directory.
fn serve_script_with(cfg: EngineConfig, lines: &[String]) -> Vec<Event> {
    let server = Server::new(cfg).expect("server");
    serve_server_script(&server, lines)
}

/// Runs the given request lines through an already-built server (fleet
/// or hardened configurations included) and returns the emitted events.
fn serve_server_script(server: &Server, lines: &[String]) -> Vec<Event> {
    let input = lines.join("\n");
    let output = SharedBuf::default();
    server.serve_connection(input.as_bytes(), output.clone());
    output
        .contents()
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| serde_json::from_str(l).expect("parseable event"))
        .collect()
}

fn hello_line(id: &str, auth: Option<&str>) -> String {
    serde_json::to_string(&Request::new(
        id,
        RequestBody::Hello {
            proto_version: PROTOCOL_VERSION,
            auth: auth.map(String::from),
            capabilities: Vec::new(),
        },
    ))
    .expect("ser")
}

fn ping_line(id: &str) -> String {
    serde_json::to_string(&Request::new(id, RequestBody::Ping)).expect("ser")
}

fn run_line(id: &str, spec: &JobSpec) -> String {
    serde_json::to_string(&Request::run(id, spec.clone())).expect("ser")
}

fn quick_explore_spec() -> JobSpec {
    JobSpec {
        quick: true,
        ..JobSpec::preset("explore", Some("drr"))
    }
}

fn quick_scenarios_spec() -> JobSpec {
    JobSpec {
        quick: true,
        packets: Some(40),
        ..JobSpec::preset("scenarios", Some("drr"))
    }
}

fn quick_sweep_spec() -> JobSpec {
    JobSpec {
        quick: true,
        packets: Some(40),
        mem: Some(vec!["embedded".into(), "l2".into()]),
        scenarios: Some(vec!["baseline".into(), "flash-crowd".into()]),
        ..JobSpec::preset("sweep", Some("drr"))
    }
}

/// The deterministic core of a terminal event: the Pareto front the
/// result carries, serialised (counters like `executed` legitimately
/// depend on cache warmth and are excluded).
fn front_of(event: &Event) -> String {
    let Event::Result { result, .. } = event else {
        panic!("expected a result event, got {event:?}");
    };
    match result.as_ref() {
        ExploreResult::Explore(outcome) => {
            serde_json::to_string(&outcome.pareto.global_front).expect("ser")
        }
        ExploreResult::Scenarios(matrix) => serde_json::to_string(&matrix.cells).expect("ser"),
        other => serde_json::to_string(&other.front_labels()).expect("ser"),
    }
}

fn terminal_for<'e>(events: &'e [Event], id: &str) -> &'e Event {
    events
        .iter()
        .find(|e| e.is_terminal() && e.id() == Some(id))
        .unwrap_or_else(|| panic!("no terminal event for `{id}` in {events:?}"))
}

#[test]
fn serve_matches_the_cli_entry_points_at_any_jobs_count() {
    let script = vec![
        run_line("explore", &quick_explore_spec()),
        run_line("matrix", &quick_scenarios_spec()),
    ];
    // The same requests through the direct (CLI) entry points.
    let direct_explore =
        dispatch(&quick_explore_spec().resolve().expect("resolves")).expect("direct explore");
    let direct_matrix =
        dispatch(&quick_scenarios_spec().resolve().expect("resolves")).expect("direct matrix");
    let ExploreResult::Explore(direct_explore) = direct_explore else {
        panic!("wrong mode");
    };
    let ExploreResult::Scenarios(direct_matrix) = direct_matrix else {
        panic!("wrong mode");
    };
    let reference_explore =
        serde_json::to_string(&direct_explore.pareto.global_front).expect("ser");
    let reference_matrix = serde_json::to_string(&direct_matrix.cells).expect("ser");
    for jobs in [1, 4] {
        let events = serve_script(jobs, &script);
        assert!(
            matches!(events.first(), Some(Event::Hello { .. })),
            "jobs={jobs}: connection opens with Hello"
        );
        assert!(
            matches!(events.last(), Some(Event::Bye)),
            "jobs={jobs}: connection ends with Bye"
        );
        assert_eq!(
            front_of(terminal_for(&events, "explore")),
            reference_explore,
            "jobs={jobs}: served explore front is byte-identical to the CLI's"
        );
        assert_eq!(
            front_of(terminal_for(&events, "matrix")),
            reference_matrix,
            "jobs={jobs}: served scenario matrix is byte-identical to the CLI's"
        );
        // Progress streamed while the requests ran.
        assert!(
            events
                .iter()
                .any(|e| matches!(e, Event::Running { id, .. } if id == "explore")),
            "jobs={jobs}: running events were streamed"
        );
        // Both requests were accepted before finishing.
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::Queued { id } if id == "matrix")));
    }
}

#[test]
fn second_client_is_answered_from_cache_with_zero_simulations() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let endpoint = Endpoint::Tcp(listener.local_addr().expect("addr").to_string());
    let server = Server::new(EngineConfig::with_jobs(2)).expect("server");
    // Only protocol interaction happens inside the scope (a panic there
    // would leave the server running and hang the join); all assertions
    // run on the collected replies afterwards.
    let (reply_a, reply_b, stats_reply) = std::thread::scope(|scope| {
        let server = &server;
        scope.spawn(move || server.serve_tcp(&listener).expect("serve"));

        // Client A pays for the exploration.
        let mut a = Client::connect(&endpoint).expect("connect A");
        let reply_a = a
            .call(&Request::run("warmup", quick_explore_spec()), |_| {})
            .expect("call A");
        drop(a);

        // Client B, a separate connection, asks the same question.
        let mut b = Client::connect(&endpoint).expect("connect B");
        let reply_b = b
            .call(&Request::run("replay", quick_explore_spec()), |_| {})
            .expect("call B");
        let stats_reply = b
            .call(&Request::new("s", RequestBody::Stats), |_| {})
            .expect("stats");
        b.send(&Request::new("bye", RequestBody::Shutdown))
            .expect("shutdown");
        (reply_a, reply_b, stats_reply)
    });
    assert!(server.shutdown_requested());
    let Event::Result {
        executed: executed_a,
        ..
    } = &reply_a
    else {
        panic!("client A expected a result, got {reply_a:?}");
    };
    assert!(*executed_a > 0, "cold request must execute simulations");
    let Event::Result {
        executed,
        cache_hits,
        ..
    } = &reply_b
    else {
        panic!("client B expected a result, got {reply_b:?}");
    };
    // The session-shared cache answers the second client without
    // executing anything.
    assert_eq!(*executed, 0, "warm request must execute 0 simulations");
    assert!(*cache_hits > 0, "warm request answers from the cache");
    assert_eq!(
        front_of(&reply_a),
        front_of(&reply_b),
        "cold and warm answers carry byte-identical fronts"
    );
    let Event::Stats { stats, .. } = &stats_reply else {
        panic!("expected stats, got {stats_reply:?}");
    };
    // Session-wide hits cover both clients (the pipeline re-hits its own
    // step-1 entries during step 2, so the total exceeds B's share).
    assert!(stats.hits >= *cache_hits);
    assert_eq!(stats.entries, stats.misses, "every execution was retained");
}

#[test]
fn second_server_on_a_shared_store_directory_answers_warm() {
    // Two *separate server processes* — not two clients of one session —
    // pointed at the same persistent store directory. The first pays for
    // the simulations and publishes them on shutdown; the second answers
    // the identical request entirely from the on-disk store.
    let tmp = ddtr_engine::testing::TempCacheDir::new("serve-shared");
    let cfg = EngineConfig {
        jobs: 2,
        cache_dir: Some(tmp.path().to_path_buf()),
        no_cache: false,
    };
    let script = vec![run_line("job", &quick_explore_spec())];

    let cold_events = serve_script_with(cfg.clone(), &script);
    let cold = terminal_for(&cold_events, "job");
    let Event::Result { executed, .. } = cold else {
        panic!("cold server expected a result, got {cold:?}");
    };
    assert!(*executed > 0, "cold server must execute simulations");

    let warm_events = serve_script_with(cfg, &script);
    let warm = terminal_for(&warm_events, "job");
    let Event::Result {
        executed,
        cache_hits,
        ..
    } = warm
    else {
        panic!("warm server expected a result, got {warm:?}");
    };
    assert_eq!(*executed, 0, "warm server must execute 0 simulations");
    assert!(*cache_hits > 0, "warm server answers from the shared store");
    assert_eq!(
        front_of(cold),
        front_of(warm),
        "both servers produce byte-identical fronts"
    );
}

#[test]
fn sweep_requests_stream_cells_and_repeat_from_cache() {
    // Two identical sweeps, the second sent only after the first's
    // terminal event (a blocking client round trip — concurrent identical
    // requests would legitimately race each other's cache fills): the
    // first streams one Cell event per platform cell and pays for the
    // simulations, the second answers entirely from the session cache.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let endpoint = Endpoint::Tcp(listener.local_addr().expect("addr").to_string());
    let server = Server::new(EngineConfig::with_jobs(2)).expect("server");
    let (events, reply_cold, reply_warm) = std::thread::scope(|scope| {
        let server = &server;
        scope.spawn(move || server.serve_tcp(&listener).expect("serve"));
        let mut client = Client::connect(&endpoint).expect("connect");
        let mut events: Vec<Event> = Vec::new();
        let reply_cold = client
            .call(&Request::run("cold", quick_sweep_spec()), |e| {
                events.push(e.clone());
            })
            .expect("cold call");
        let reply_warm = client
            .call(&Request::run("warm", quick_sweep_spec()), |e| {
                events.push(e.clone());
            })
            .expect("warm call");
        client
            .send(&Request::new("bye", RequestBody::Shutdown))
            .expect("shutdown");
        (events, reply_cold, reply_warm)
    });
    let cells: Vec<&Event> = events
        .iter()
        .filter(|e| matches!(e, Event::Cell { id, .. } if id == "cold"))
        .collect();
    assert_eq!(
        cells.len(),
        4,
        "1 app x 2 scenarios x 2 platforms: {events:?}"
    );
    for (i, event) in cells.iter().enumerate() {
        let Event::Cell {
            done, total, front, ..
        } = event
        else {
            unreachable!()
        };
        assert_eq!((*done, *total), (i + 1, 4), "cells stream in order");
        assert!(!front.is_empty(), "every cell carries its front");
        assert!(!event.is_terminal(), "cells are progress, not terminals");
    }
    // Both platforms of the axis appear among the streamed cells.
    for preset in [MemoryPreset::Embedded, MemoryPreset::L2] {
        assert!(
            cells
                .iter()
                .any(|e| matches!(e, Event::Cell { mem, .. } if *mem == preset)),
            "platform {preset} streamed: {events:?}"
        );
    }
    // The aggregated result matches a direct dispatch byte-for-byte.
    let direct = dispatch(&quick_sweep_spec().resolve().expect("resolves")).expect("direct");
    let ExploreResult::Sweep(direct) = direct else {
        panic!("wrong mode");
    };
    let Event::Result {
        executed, result, ..
    } = &reply_cold
    else {
        panic!("cold sweep must succeed: {reply_cold:?}");
    };
    assert!(*executed > 0, "cold sweep simulates");
    let ExploreResult::Sweep(served) = result.as_ref() else {
        panic!("wrong result mode");
    };
    assert_eq!(
        serde_json::to_string(&served.cells).expect("ser"),
        serde_json::to_string(&direct.cells).expect("ser"),
        "served sweep cells are byte-identical to the direct entry point"
    );
    assert_eq!(
        serde_json::to_string(&served.survivors).expect("ser"),
        serde_json::to_string(&direct.survivors).expect("ser"),
    );
    // The repeat reports executed=0 — the acceptance criterion of the
    // whole axis: sweep cells are individually reusable.
    let Event::Result {
        executed,
        cache_hits,
        ..
    } = &reply_warm
    else {
        panic!("warm sweep must succeed: {reply_warm:?}");
    };
    assert_eq!(*executed, 0, "repeated sweep executes nothing");
    assert_eq!(*cache_hits, 400, "4 cells x 100 combinations replay");
}

#[test]
fn unknown_memory_presets_get_structured_errors_across_the_protocol() {
    // A bad preset name must come back as an Error event listing the
    // catalog — never a panic, never a dropped connection.
    let bad = JobSpec {
        mem: Some(vec!["quantum".into()]),
        ..quick_sweep_spec()
    };
    let script = vec![
        run_line("bad-mem", &bad),
        serde_json::to_string(&Request::new("alive", RequestBody::Ping)).expect("ser"),
    ];
    let events = serve_script(1, &script);
    let Event::Error {
        id: Some(id),
        error,
        ..
    } = terminal_for(&events, "bad-mem")
    else {
        panic!("bad preset must answer with an error: {events:?}");
    };
    assert_eq!(id, "bad-mem");
    assert!(error.contains("quantum"), "{error}");
    for preset in MemoryPreset::ALL {
        assert!(error.contains(preset.name()), "{error} misses {preset}");
    }
    assert!(
        matches!(terminal_for(&events, "alive"), Event::Pong { .. }),
        "the connection stays usable after the rejection"
    );
}

#[test]
fn malformed_requests_get_structured_errors_and_the_connection_survives() {
    let script = vec![
        "this is not json".to_string(),
        r#"{"id": 42}"#.to_string(),
        run_line("bad-spec", &JobSpec::preset("frobnicate", Some("drr"))),
        serde_json::to_string(&Request::new("alive", RequestBody::Ping)).expect("ser"),
    ];
    let events = serve_script(1, &script);
    let unparseable: Vec<&Event> = events
        .iter()
        .filter(|e| matches!(e, Event::Error { id: None, .. }))
        .collect();
    assert_eq!(
        unparseable.len(),
        2,
        "both unparseable lines get structured null-id errors: {events:?}"
    );
    let Event::Error {
        id: Some(id),
        error,
        ..
    } = terminal_for(&events, "bad-spec")
    else {
        panic!("bad spec must answer with an error");
    };
    assert_eq!(id, "bad-spec");
    assert!(error.contains("frobnicate"), "{error}");
    assert!(
        matches!(terminal_for(&events, "alive"), Event::Pong { .. }),
        "the connection stays usable after errors"
    );
    assert!(matches!(events.last(), Some(Event::Bye)));
}

#[test]
fn cancel_aborts_a_large_request() {
    // A paper-sized matrix (2500 units) that a cancel lands in long
    // before completion.
    let big = JobSpec {
        packets: Some(5000),
        ..JobSpec::preset("scenarios", None)
    };
    let script = vec![
        run_line("big", &big),
        serde_json::to_string(&Request::new(
            "halt",
            RequestBody::Cancel {
                target: "big".into(),
            },
        ))
        .expect("ser"),
        serde_json::to_string(&Request::new(
            "nope",
            RequestBody::Cancel {
                target: "ghost".into(),
            },
        ))
        .expect("ser"),
    ];
    let events = serve_script(2, &script);
    // The cancel raced the run; either it landed (Cancelled) or the run
    // finished first (Result) — but never both, and the registry answers
    // the unknown target with an error either way.
    let terminals: Vec<&Event> = events
        .iter()
        .filter(|e| e.is_terminal() && e.id() == Some("big"))
        .collect();
    assert_eq!(terminals.len(), 1, "exactly one terminal event: {events:?}");
    assert!(
        matches!(terminals[0], Event::Cancelled { .. }),
        "cancel must land long before a 2500-unit matrix completes: {:?}",
        terminals[0]
    );
    let Event::Error {
        id: Some(id),
        error,
        ..
    } = terminal_for(&events, "nope")
    else {
        panic!("unknown cancel target must answer with an error");
    };
    assert_eq!(id, "nope");
    assert!(error.contains("ghost"), "{error}");
}

/// A writer that dies after a few lines — a client whose socket closed.
#[derive(Clone)]
struct DyingWriter {
    inner: SharedBuf,
    remaining: Arc<Mutex<usize>>,
}

impl Write for DyingWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let mut remaining = self.remaining.lock().unwrap();
        if *remaining == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "peer gone",
            ));
        }
        *remaining -= 1;
        drop(remaining);
        self.inner.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn a_vanished_client_cancels_its_abandoned_work() {
    // A paper-sized matrix (2500 units, 5000 packets each) whose client
    // stops accepting events right after Queued: the progress observer
    // must notice the dead peer and cancel instead of simulating the
    // whole matrix for nobody.
    let server = Server::new(EngineConfig::with_jobs(2)).expect("server");
    let big = JobSpec {
        packets: Some(5000),
        ..JobSpec::preset("scenarios", None)
    };
    let output = SharedBuf::default();
    let writer = DyingWriter {
        inner: output.clone(),
        // Enough for Hello + Queued + a couple of Running lines.
        remaining: Arc::new(Mutex::new(4)),
    };
    let input = run_line("orphan", &big);
    server.serve_connection(input.as_bytes(), writer);
    // serve_connection returning at all (instead of grinding through
    // 2500 × 5000-packet simulations) is the point; double-check almost
    // nothing executed.
    let stats = server.session().stats();
    assert!(
        stats.misses < 250,
        "abandoned request must stop early, executed {}",
        stats.misses
    );
    assert!(
        output.contents().contains("Queued"),
        "the request was accepted before the peer vanished"
    );
}

#[test]
fn duplicate_inflight_ids_are_rejected() {
    // Two Runs under one id racing: the second must be refused while the
    // first is still in flight, keeping the registry unambiguous.
    let big = JobSpec {
        packets: Some(5000),
        ..JobSpec::preset("scenarios", None)
    };
    let script = vec![
        run_line("dup", &big),
        run_line("dup", &quick_explore_spec()),
        serde_json::to_string(&Request::new(
            "halt",
            RequestBody::Cancel {
                target: "dup".into(),
            },
        ))
        .expect("ser"),
    ];
    let events = serve_script(2, &script);
    assert!(
        events.iter().any(|e| matches!(
            e,
            Event::Error { id: Some(id), error, .. } if id == "dup" && error.contains("in flight")
        )),
        "duplicate id must be rejected: {events:?}"
    );
    // The original request still terminates exactly once (cancelled).
    let terminals = events
        .iter()
        .filter(|e| e.is_terminal() && e.id() == Some("dup"))
        .count();
    assert_eq!(terminals, 2, "one rejection + one terminal for the run");
}

#[test]
fn metrics_requests_return_the_exposition_and_stats_carry_the_snapshot() {
    // Ping first: its end-to-end latency is recorded synchronously, so
    // by the time the Metrics line is parsed the latency histogram is
    // guaranteed non-empty (the explore may still be in flight).
    let script = vec![
        serde_json::to_string(&Request::new("warm", RequestBody::Ping)).expect("ser"),
        run_line("paid", &quick_explore_spec()),
        serde_json::to_string(&Request::new("m", RequestBody::Metrics)).expect("ser"),
        serde_json::to_string(&Request::new("s", RequestBody::Stats)).expect("ser"),
    ];
    let events = serve_script(2, &script);
    let Event::Metrics { id, text } = terminal_for(&events, "m") else {
        panic!("metrics request must answer with Metrics: {events:?}");
    };
    assert_eq!(id, "m");
    // Prometheus-style exposition: per-request latency summary with
    // quantiles, and the per-variant request counters, all non-zero.
    assert!(
        text.contains("# TYPE ddtr_serve_request_latency_seconds summary"),
        "{text}"
    );
    assert!(
        text.contains("ddtr_serve_request_latency_seconds{quantile=\"0.5\"}"),
        "{text}"
    );
    assert!(
        text.contains("ddtr_serve_request_latency_seconds{quantile=\"0.99\"}"),
        "{text}"
    );
    let counter_value = |name: &str| -> u64 {
        text.lines()
            .find_map(|l| l.strip_prefix(name).map(|v| v.trim()))
            .unwrap_or_else(|| panic!("{name} missing from exposition: {text}"))
            .parse()
            .expect("counter value parses")
    };
    assert!(counter_value("ddtr_serve_request_ping_total ") >= 1);
    assert!(counter_value("ddtr_serve_request_run_total ") >= 1);
    assert!(counter_value("ddtr_serve_request_metrics_total ") >= 1);
    // The Stats event carries the same snapshot structurally.
    let Event::Stats { metrics, .. } = terminal_for(&events, "s") else {
        panic!("stats request must answer with Stats: {events:?}");
    };
    assert!(
        metrics.counters.get("serve.request.ping").copied() >= Some(1),
        "snapshot carries the ping counter: {:?}",
        metrics.counters
    );
    assert!(
        metrics
            .histograms
            .get("serve.request.latency")
            .is_some_and(|h| h.count >= 1 && h.sum > 0),
        "snapshot carries the latency histogram: {:?}",
        metrics.histograms.keys().collect::<Vec<_>>()
    );
}

#[test]
fn stats_events_from_pre_metrics_servers_still_parse() {
    // The `metrics` field is new in this protocol revision; an event
    // written by an older server (no such key) must deserialise with an
    // empty snapshot rather than fail.
    let legacy =
        r#"{"Stats":{"id":"s","stats":{"entries":3,"hits":2,"misses":1,"loaded":0},"jobs":4}}"#;
    let event: Event = serde_json::from_str(legacy).expect("legacy Stats parses");
    let Event::Stats {
        id,
        stats,
        jobs,
        metrics,
    } = event
    else {
        panic!("wrong variant");
    };
    assert_eq!((id.as_str(), jobs), ("s", 4));
    assert_eq!((stats.entries, stats.hits, stats.misses), (3, 2, 1));
    assert!(metrics.counters.is_empty() && metrics.histograms.is_empty());
}

#[test]
fn inline_configs_round_trip_through_a_live_server() {
    // serialize → dispatch (through the live server) → deserialize: the
    // full protocol round trip on an inline configuration.
    let inline = ExploreRequest::Explore(MethodologyConfig::quick(ddtr_apps::AppKind::Url));
    let script = vec![run_line("inline", &JobSpec::inline(inline.clone()))];
    let events = serve_script(2, &script);
    let Event::Result { result, .. } = terminal_for(&events, "inline") else {
        panic!("inline request must succeed: {events:?}");
    };
    // The served result round-trips losslessly and matches a direct
    // dispatch of the deserialized request.
    let json = serde_json::to_string(result).expect("ser");
    let back: ExploreResult = serde_json::from_str(&json).expect("de");
    assert_eq!(serde_json::to_string(&back).expect("ser"), json);
    let direct = dispatch(&inline).expect("direct");
    let (ExploreResult::Explore(served), ExploreResult::Explore(direct)) = (&back, &direct) else {
        panic!("wrong modes");
    };
    assert_eq!(
        serde_json::to_string(&served.pareto.global_front).expect("ser"),
        serde_json::to_string(&direct.pareto.global_front).expect("ser"),
    );
}

fn secured_config() -> ServerConfig {
    ServerConfig {
        auth_token: Some("sesame".into()),
        ..ServerConfig::new(EngineConfig::with_jobs(1))
    }
}

#[test]
fn auth_is_enforced_at_hello_before_any_engine_work() {
    // A Run on an unauthenticated connection: rejected with a coded
    // error before the spec is even resolved — the engine must do zero
    // work for an unauthenticated peer.
    let server = Server::with_config(secured_config()).expect("server");
    let events = serve_server_script(
        &server,
        &[run_line("sneak", &quick_explore_spec()), ping_line("also")],
    );
    let rejected = terminal_for(&events, "sneak");
    assert_eq!(
        rejected.error_code(),
        Some(ErrorCode::AuthRequired),
        "{events:?}"
    );
    assert_eq!(
        terminal_for(&events, "also").error_code(),
        Some(ErrorCode::AuthRequired),
        "every pre-auth request is turned away"
    );
    let stats = server.fleet_stats();
    assert_eq!(
        (stats.misses, stats.hits),
        (0, 0),
        "no engine work happened for the unauthenticated peer"
    );
    // The greeting still advertises how to get in.
    let Some(Event::Hello { capabilities, .. }) = events.first() else {
        panic!("greeting first: {events:?}");
    };
    assert!(capabilities.iter().any(|c| c == "auth"), "{capabilities:?}");
}

#[test]
fn wrong_auth_token_closes_the_connection_but_missing_token_keeps_it() {
    // A wrong secret ends the conversation outright (no free guessing).
    let server = Server::with_config(secured_config()).expect("server");
    let events = serve_server_script(
        &server,
        &[hello_line("guess", Some("wrong")), ping_line("after")],
    );
    assert_eq!(
        terminal_for(&events, "guess").error_code(),
        Some(ErrorCode::AuthFailed)
    );
    assert!(
        !events.iter().any(|e| e.id() == Some("after")),
        "connection closed after the failed guess: {events:?}"
    );
    assert!(matches!(events.last(), Some(Event::Bye)));

    // A tokenless Hello is an honest mistake: coded error, connection
    // survives, and the right token then opens the gate.
    let events = serve_server_script(
        &server,
        &[
            hello_line("bare", None),
            hello_line("key", Some("sesame")),
            ping_line("in"),
        ],
    );
    assert_eq!(
        terminal_for(&events, "bare").error_code(),
        Some(ErrorCode::AuthRequired)
    );
    assert!(
        matches!(terminal_for(&events, "key"), Event::Welcome { .. }),
        "{events:?}"
    );
    assert!(matches!(terminal_for(&events, "in"), Event::Pong { .. }));
}

#[test]
fn client_builder_handshakes_with_auth_and_surfaces_rejection() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let endpoint = Endpoint::Tcp(listener.local_addr().expect("addr").to_string());
    let server = Server::with_config(secured_config()).expect("server");
    let (reply, greeting_ok, rejection) = std::thread::scope(|scope| {
        let server = &server;
        scope.spawn(move || server.serve_tcp(&listener).expect("serve"));
        let rejection = Client::builder(endpoint.clone())
            .auth_token("wrong")
            .connect()
            .expect_err("wrong token must be rejected");
        let mut client = Client::builder(endpoint.clone())
            .auth_token("sesame")
            .connect()
            .expect("right token connects");
        let greeting_ok = client.greeting().is_some();
        let reply = client
            .call(&Request::new("p", RequestBody::Ping), |_| {})
            .expect("ping");
        client
            .send(&Request::new("bye", RequestBody::Shutdown))
            .expect("shutdown");
        (reply, greeting_ok, rejection)
    });
    assert!(matches!(reply, Event::Pong { .. }));
    assert!(greeting_ok, "the builder captured the server greeting");
    let ClientError::Rejected { code, error } = rejection else {
        panic!("expected a protocol rejection, got {rejection:?}");
    };
    assert_eq!(code, Some(ErrorCode::AuthFailed), "{error}");
}

#[test]
fn oversized_request_lines_get_coded_errors_and_the_connection_survives() {
    let cfg = ServerConfig {
        max_request_bytes: 64,
        ..ServerConfig::new(EngineConfig::with_jobs(1))
    };
    let server = Server::with_config(cfg).expect("server");
    let huge = format!(r#"{{"id":"big","body":"{}"}}"#, "x".repeat(4096));
    let events = serve_server_script(&server, &[huge, ping_line("alive")]);
    assert!(
        events.iter().any(|e| matches!(
            e,
            Event::Error {
                id: None,
                code: Some(ErrorCode::TooLarge),
                ..
            }
        )),
        "oversized line must answer with a coded error: {events:?}"
    );
    assert!(
        matches!(terminal_for(&events, "alive"), Event::Pong { .. }),
        "the connection survives the oversized line"
    );
    assert!(matches!(events.last(), Some(Event::Bye)));
}

#[test]
fn rate_limited_connection_backs_off_while_a_second_client_proceeds() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let endpoint = Endpoint::Tcp(listener.local_addr().expect("addr").to_string());
    let cfg = ServerConfig {
        rate_limit: Some(2),
        ..ServerConfig::new(EngineConfig::with_jobs(1))
    };
    let server = Server::with_config(cfg).expect("server");
    let (flood_replies, calm_replies) = std::thread::scope(|scope| {
        let server = &server;
        scope.spawn(move || server.serve_tcp(&listener).expect("serve"));
        // Client A floods well past its 2-per-second budget.
        let mut flood = Client::connect(&endpoint).expect("connect A");
        let flood_replies: Vec<Event> = (0..8)
            .map(|i| {
                flood
                    .call(&Request::new(format!("f{i}"), RequestBody::Ping), |_| {})
                    .expect("flood call")
            })
            .collect();
        // Client B, its own connection, has its own untouched budget
        // (one ping + the shutdown below stay within the 2/s limit).
        let mut calm = Client::connect(&endpoint).expect("connect B");
        let calm_replies: Vec<Event> = (0..1)
            .map(|i| {
                calm.call(&Request::new(format!("c{i}"), RequestBody::Ping), |_| {})
                    .expect("calm call")
            })
            .collect();
        calm.send(&Request::new("bye", RequestBody::Shutdown))
            .expect("shutdown");
        (flood_replies, calm_replies)
    });
    let limited = flood_replies
        .iter()
        .filter(|e| e.error_code() == Some(ErrorCode::RateLimited))
        .count();
    let ponged = flood_replies
        .iter()
        .filter(|e| matches!(e, Event::Pong { .. }))
        .count();
    assert!(
        limited >= 1,
        "the flooding connection must see backpressure: {flood_replies:?}"
    );
    assert!(ponged >= 1, "the budget admits the first requests");
    assert!(
        calm_replies.iter().all(|e| matches!(e, Event::Pong { .. })),
        "the second client's own budget is untouched: {calm_replies:?}"
    );
}

#[test]
fn multi_worker_fleet_routes_deterministically_and_answers_warm() {
    let cfg = ServerConfig {
        workers: 3,
        ..ServerConfig::new(EngineConfig::with_jobs(2))
    };
    let server = Server::with_config(cfg).expect("server");
    assert_eq!(server.worker_count(), 3);
    // Placement is a pure function of the resolved request content.
    let resolved = quick_explore_spec().resolve().expect("resolves");
    let placed = server.route(&resolved);
    assert!(placed < 3);
    assert_eq!(placed, server.route(&resolved), "stable placement");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let endpoint = Endpoint::Tcp(listener.local_addr().expect("addr").to_string());
    let (greeting_workers, reply_cold, reply_warm) = std::thread::scope(|scope| {
        let server = &server;
        scope.spawn(move || server.serve_tcp(&listener).expect("serve"));
        let mut a = Client::connect(&endpoint).expect("connect A");
        let reply_cold = a
            .call(&Request::run("cold", quick_explore_spec()), |_| {})
            .expect("cold call");
        let greeting_workers = match a.greeting() {
            Some(Event::Hello { workers, .. }) => *workers,
            other => panic!("expected a Hello greeting, got {other:?}"),
        };
        drop(a);
        let mut b = Client::connect(&endpoint).expect("connect B");
        let reply_warm = b
            .call(&Request::run("warm", quick_explore_spec()), |_| {})
            .expect("warm call");
        b.send(&Request::new("bye", RequestBody::Shutdown))
            .expect("shutdown");
        (greeting_workers, reply_cold, reply_warm)
    });
    assert_eq!(greeting_workers, 3, "the greeting advertises the fleet");
    let Event::Result { executed, .. } = &reply_cold else {
        panic!("cold request must succeed: {reply_cold:?}");
    };
    assert!(*executed > 0, "cold request simulates");
    let Event::Result {
        executed,
        cache_hits,
        ..
    } = &reply_warm
    else {
        panic!("warm request must succeed: {reply_warm:?}");
    };
    // Deterministic routing sends the identical request to the same
    // worker, so its warm in-memory cache answers without simulating —
    // the fleet-scale acceptance criterion.
    assert_eq!(
        *executed, 0,
        "identical request re-routes to the warm worker"
    );
    assert!(*cache_hits > 0);
    assert_eq!(front_of(&reply_cold), front_of(&reply_warm));
}
