//! A blocking client for the serve protocol — the machinery behind
//! `ddtr query`, `ddtr loadtest` and the integration tests.
//!
//! [`Client::connect`] is the raw transport (connect, speak lines);
//! [`ClientBuilder`] layers the fleet-era niceties on top: the versioned
//! `Hello` handshake with an auth token, connect retries with backoff,
//! and socket timeouts.

use crate::endpoint::Endpoint;
use crate::protocol::{ErrorCode, Event, Request, RequestBody, PROTOCOL_VERSION};
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A client-side failure: transport trouble, or the server answering
/// the handshake with a structured rejection.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (connect, read or write).
    Io(io::Error),
    /// The server rejected the handshake with an `Error` event.
    Rejected {
        /// The machine-readable code, when the server sent one.
        code: Option<ErrorCode>,
        /// The human-readable description.
        error: String,
    },
    /// The connection closed before the handshake finished.
    Closed,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client error: {e}"),
            ClientError::Rejected { code, error } => match code {
                Some(code) => write!(f, "server rejected handshake [{code}]: {error}"),
                None => write!(f, "server rejected handshake: {error}"),
            },
            ClientError::Closed => write!(f, "connection closed during handshake"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A typed builder for fleet-era connections: auth token, timeouts and
/// connect retries around [`Client::connect`], plus the versioned
/// `Hello`/`Welcome` handshake.
///
/// ```no_run
/// use ddtr_serve::{Client, Endpoint};
/// use std::time::Duration;
///
/// let endpoint: Endpoint = "tcp:127.0.0.1:7171".parse().unwrap();
/// let client = Client::builder(endpoint)
///     .auth_token("sesame")
///     .read_timeout(Duration::from_secs(30))
///     .retry_connect(5, Duration::from_millis(100))
///     .connect();
/// ```
#[derive(Debug, Clone)]
pub struct ClientBuilder {
    endpoint: Endpoint,
    auth: Option<String>,
    capabilities: Vec<String>,
    handshake: bool,
    read_timeout: Option<Duration>,
    retries: u32,
    retry_delay: Duration,
}

impl ClientBuilder {
    /// A builder for `endpoint` with no auth, no timeouts, no retries
    /// and the handshake enabled.
    #[must_use]
    pub fn new(endpoint: Endpoint) -> Self {
        ClientBuilder {
            endpoint,
            auth: None,
            capabilities: Vec::new(),
            handshake: true,
            read_timeout: None,
            retries: 0,
            retry_delay: Duration::from_millis(50),
        }
    }

    /// Presents `token` in the handshake's `Hello` (required by servers
    /// started with `--auth-token`).
    #[must_use]
    pub fn auth_token(mut self, token: impl Into<String>) -> Self {
        self.auth = Some(token.into());
        self
    }

    /// Announces client capability names in the handshake
    /// (informational).
    #[must_use]
    pub fn capabilities(mut self, capabilities: Vec<String>) -> Self {
        self.capabilities = capabilities;
        self
    }

    /// Skips the `Hello`/`Welcome` handshake entirely (v1 behaviour;
    /// only works against servers without an auth token).
    #[must_use]
    pub fn no_handshake(mut self) -> Self {
        self.handshake = false;
        self
    }

    /// Fails reads that stall longer than `timeout` (socket endpoints
    /// only).
    #[must_use]
    pub fn read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = Some(timeout);
        self
    }

    /// Retries a refused/failed connect up to `attempts` more times,
    /// sleeping `delay` between attempts — the difference between a
    /// thundering herd of clients surviving a momentarily full accept
    /// backlog and dropping connections.
    #[must_use]
    pub fn retry_connect(mut self, attempts: u32, delay: Duration) -> Self {
        self.retries = attempts;
        self.retry_delay = delay;
        self
    }

    /// Connects (with retries), applies socket options, and — unless
    /// [`ClientBuilder::no_handshake`] — performs the versioned
    /// handshake, returning the ready-to-use client.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Io`] when every connect attempt fails,
    /// [`ClientError::Rejected`] when the server answers the handshake
    /// with an `Error` event (bad token, unsupported version), and
    /// [`ClientError::Closed`] when the connection ends mid-handshake.
    pub fn connect(self) -> Result<Client, ClientError> {
        let mut attempt = 0;
        let mut client = loop {
            match self.connect_once() {
                Ok(client) => break client,
                Err(e) => {
                    if attempt >= self.retries {
                        return Err(ClientError::Io(e));
                    }
                    attempt += 1;
                    std::thread::sleep(self.retry_delay);
                }
            }
        };
        if self.handshake {
            client.handshake(self.auth.clone(), self.capabilities.clone())?;
        }
        Ok(client)
    }

    /// One transport-level connect with socket options applied.
    fn connect_once(&self) -> io::Result<Client> {
        match &self.endpoint {
            Endpoint::Tcp(addr) => {
                let stream = TcpStream::connect(addr.as_str())?;
                // One small request line waiting on one small reply line
                // is the worst case for Nagle + delayed ACK (tens of ms
                // per round trip); send request lines immediately.
                let _ = stream.set_nodelay(true);
                stream.set_read_timeout(self.read_timeout)?;
                Ok(Client::over(BufReader::new(stream.try_clone()?), stream))
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                let stream = std::os::unix::net::UnixStream::connect(path)?;
                stream.set_read_timeout(self.read_timeout)?;
                Ok(Client::over(BufReader::new(stream.try_clone()?), stream))
            }
            _ => Client::connect(&self.endpoint),
        }
    }
}

/// One connection to a running `ddtr serve` instance.
///
/// The client is deliberately dumb: it writes [`Request`] lines and reads
/// [`Event`] lines; [`Client::call`] layers the one pattern everything
/// uses — send a request, stream its events, return its terminal event.
/// [`Client::builder`] adds the fleet handshake, retries and timeouts.
pub struct Client {
    reader: Box<dyn BufRead + Send>,
    writer: Box<dyn Write + Send>,
    greeting: Option<Event>,
    handshakes: usize,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client").finish_non_exhaustive()
    }
}

impl Client {
    /// A typed builder around `endpoint`: auth, timeouts, retries and
    /// the versioned handshake.
    #[must_use]
    pub fn builder(endpoint: Endpoint) -> ClientBuilder {
        ClientBuilder::new(endpoint)
    }

    /// Connects to a socket endpoint ([`Endpoint::Stdio`] cannot be
    /// connected to — it is the server's own stdin/stdout).
    ///
    /// # Errors
    ///
    /// Returns the connection error, or `InvalidInput` for `stdio`.
    pub fn connect(endpoint: &Endpoint) -> io::Result<Self> {
        match endpoint {
            Endpoint::Stdio => Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "cannot connect to `stdio` — point the client at the server's tcp:/unix: endpoint",
            )),
            Endpoint::Tcp(addr) => {
                let stream = TcpStream::connect(addr.as_str())?;
                // See ClientBuilder::connect_once on Nagle.
                let _ = stream.set_nodelay(true);
                Ok(Self::over(BufReader::new(stream.try_clone()?), stream))
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                let stream = std::os::unix::net::UnixStream::connect(path)?;
                Ok(Self::over(BufReader::new(stream.try_clone()?), stream))
            }
            #[cfg(not(unix))]
            Endpoint::Unix(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix: endpoints need a Unix platform",
            )),
        }
    }

    /// Wraps an already-established duplex transport.
    #[must_use]
    pub fn over(
        reader: impl BufRead + Send + 'static,
        writer: impl Write + Send + 'static,
    ) -> Self {
        Client {
            reader: Box::new(reader),
            writer: Box::new(writer),
            greeting: None,
            handshakes: 0,
        }
    }

    /// The server's greeting `Hello` event, once the handshake (or any
    /// read that encountered it) has seen it.
    #[must_use]
    pub fn greeting(&self) -> Option<&Event> {
        self.greeting.as_ref()
    }

    /// Performs the versioned `Hello`/`Welcome` handshake on an open
    /// connection.
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] when the server answers with an
    /// `Error`, [`ClientError::Closed`] on EOF mid-handshake.
    pub fn handshake(
        &mut self,
        auth: Option<String>,
        capabilities: Vec<String>,
    ) -> Result<(), ClientError> {
        self.handshakes += 1;
        let id = format!("hello-{}", self.handshakes);
        let request = Request::new(
            id,
            RequestBody::Hello {
                proto_version: PROTOCOL_VERSION,
                auth,
                capabilities,
            },
        );
        let reply = self.call(&request, |_| {})?;
        match reply {
            Event::Welcome { .. } => Ok(()),
            Event::Error { error, code, .. } => Err(ClientError::Rejected { code, error }),
            other => Err(ClientError::Rejected {
                code: None,
                error: format!("unexpected handshake reply: {other:?}"),
            }),
        }
    }

    /// Sends one request line.
    ///
    /// # Errors
    ///
    /// Returns the underlying write error.
    pub fn send(&mut self, request: &Request) -> io::Result<()> {
        let line = serde_json::to_string(request)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        writeln!(self.writer, "{line}")?;
        self.writer.flush()
    }

    /// Reads the next event line. `Ok(None)` means the server closed the
    /// connection.
    ///
    /// # Errors
    ///
    /// Returns the read error, or `InvalidData` for an unparseable line.
    pub fn next_event(&mut self) -> io::Result<Option<Event>> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Ok(None);
            }
            if line.trim().is_empty() {
                continue;
            }
            let event: Event = serde_json::from_str(line.trim()).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unparseable event: {e}: {line}"),
                )
            })?;
            if matches!(event, Event::Hello { .. }) && self.greeting.is_none() {
                self.greeting = Some(event.clone());
            }
            return Ok(Some(event));
        }
    }

    /// Sends `request` and reads events until its terminal event
    /// (`Result`, `Cancelled`, `Error`, `Pong`, `Welcome` or `Stats`),
    /// which is returned. Every event read on the way — including events
    /// of other concurrent requests on this connection — is passed to
    /// `on_event` first.
    ///
    /// # Errors
    ///
    /// Returns the transport error, or `UnexpectedEof` if the connection
    /// closes before the terminal event.
    pub fn call(
        &mut self,
        request: &Request,
        mut on_event: impl FnMut(&Event),
    ) -> io::Result<Event> {
        self.send(request)?;
        while let Some(event) = self.next_event()? {
            on_event(&event);
            if event.is_terminal() && event.id() == Some(request.id.as_str()) {
                return Ok(event);
            }
            // A parse failure of the request itself comes back with a
            // null id; surface it as this call's terminal event.
            if matches!(&event, Event::Error { id: None, .. }) {
                return Ok(event);
            }
        }
        Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!("connection closed before request `{}` finished", request.id),
        ))
    }
}
