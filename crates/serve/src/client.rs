//! A blocking client for the serve protocol — the machinery behind
//! `ddtr query` and the integration tests.

use crate::protocol::{Event, Request};
use crate::server::Endpoint;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;

/// One connection to a running `ddtr serve` instance.
///
/// The client is deliberately dumb: it writes [`Request`] lines and reads
/// [`Event`] lines; [`Client::call`] layers the one pattern everything
/// uses — send a request, stream its events, return its terminal event.
pub struct Client {
    reader: Box<dyn BufRead + Send>,
    writer: Box<dyn Write + Send>,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client").finish_non_exhaustive()
    }
}

impl Client {
    /// Connects to a socket endpoint ([`Endpoint::Stdio`] cannot be
    /// connected to — it is the server's own stdin/stdout).
    ///
    /// # Errors
    ///
    /// Returns the connection error, or `InvalidInput` for `stdio`.
    pub fn connect(endpoint: &Endpoint) -> io::Result<Self> {
        match endpoint {
            Endpoint::Stdio => Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "cannot connect to `stdio` — point the client at the server's tcp:/unix: endpoint",
            )),
            Endpoint::Tcp(addr) => {
                let stream = TcpStream::connect(addr.as_str())?;
                // One small request line waiting on one small reply line
                // is the worst case for Nagle + delayed ACK (tens of ms
                // per round trip); send request lines immediately.
                let _ = stream.set_nodelay(true);
                Ok(Self::over(BufReader::new(stream.try_clone()?), stream))
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                let stream = std::os::unix::net::UnixStream::connect(path)?;
                Ok(Self::over(BufReader::new(stream.try_clone()?), stream))
            }
            #[cfg(not(unix))]
            Endpoint::Unix(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix: endpoints need a Unix platform",
            )),
        }
    }

    /// Wraps an already-established duplex transport.
    #[must_use]
    pub fn over(
        reader: impl BufRead + Send + 'static,
        writer: impl Write + Send + 'static,
    ) -> Self {
        Client {
            reader: Box::new(reader),
            writer: Box::new(writer),
        }
    }

    /// Sends one request line.
    ///
    /// # Errors
    ///
    /// Returns the underlying write error.
    pub fn send(&mut self, request: &Request) -> io::Result<()> {
        let line = serde_json::to_string(request)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        writeln!(self.writer, "{line}")?;
        self.writer.flush()
    }

    /// Reads the next event line. `Ok(None)` means the server closed the
    /// connection.
    ///
    /// # Errors
    ///
    /// Returns the read error, or `InvalidData` for an unparseable line.
    pub fn next_event(&mut self) -> io::Result<Option<Event>> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Ok(None);
            }
            if line.trim().is_empty() {
                continue;
            }
            return serde_json::from_str(line.trim()).map(Some).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unparseable event: {e}: {line}"),
                )
            });
        }
    }

    /// Sends `request` and reads events until its terminal event
    /// (`Result`, `Cancelled`, `Error`, `Pong` or `Stats`), which is
    /// returned. Every event read on the way — including events of other
    /// concurrent requests on this connection — is passed to `on_event`
    /// first.
    ///
    /// # Errors
    ///
    /// Returns the transport error, or `UnexpectedEof` if the connection
    /// closes before the terminal event.
    pub fn call(
        &mut self,
        request: &Request,
        mut on_event: impl FnMut(&Event),
    ) -> io::Result<Event> {
        self.send(request)?;
        while let Some(event) = self.next_event()? {
            on_event(&event);
            if event.is_terminal() && event.id() == Some(request.id.as_str()) {
                return Ok(event);
            }
            // A parse failure of the request itself comes back with a
            // null id; surface it as this call's terminal event.
            if matches!(&event, Event::Error { id: None, .. }) {
                return Ok(event);
            }
        }
        Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!("connection closed before request `{}` finished", request.id),
        ))
    }
}
