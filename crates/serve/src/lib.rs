//! `ddtr_serve` — the long-running exploration service.
//!
//! The paper's flow is explore-once: run the methodology, read the Pareto
//! fronts, done. At production scale the economics invert — many clients
//! ask many overlapping exploration questions, and the expensive part
//! (the simulation sweep) is exactly what the engine's content-addressed
//! cache amortizes. This crate turns the workspace into a resident
//! service around that cache:
//!
//! * [`protocol`] — the newline-delimited JSON wire format: [`Request`]
//!   lines in (`Ping`/`Stats`/`Run`/`Cancel`/`Shutdown`), [`Event`] lines
//!   out (`Hello`, `Queued`, `Running` progress, `Result`/`Cancelled`/
//!   `Error`, `Bye`), with exploration work named either by app/mode
//!   preset or as a full inline configuration ([`JobSpec`]).
//! * [`Server`] — serves stdin/stdout, TCP, or Unix-socket connections
//!   (`ddtr serve --listen …`) on one shared
//!   [`ddtr_engine::EngineSession`]: every request gets its own engine
//!   bound to the session's result cache and FIFO `--jobs` pool, so a
//!   million-packet job cannot starve a small query, repeated requests
//!   answer from cache with zero simulations, and results are
//!   byte-identical to the CLI's regardless of request interleaving.
//! * [`Client`] — the blocking client behind `ddtr query` and the
//!   integration tests.
//!
//! See `docs/PROTOCOL.md` for the full wire schema with a worked
//! transcript and `docs/ARCHITECTURE.md` for where the service sits in
//! the workspace.
//!
//! # Example
//!
//! ```
//! use ddtr_serve::{Client, Event, JobSpec, Request, RequestBody, Server};
//! use ddtr_engine::EngineConfig;
//! use std::net::TcpListener;
//!
//! let listener = TcpListener::bind("127.0.0.1:0")?;
//! let endpoint = ddtr_serve::Endpoint::Tcp(listener.local_addr()?.to_string());
//! let server = Server::new(EngineConfig::with_jobs(2)).expect("server");
//! std::thread::scope(|scope| -> std::io::Result<()> {
//!     let server = &server;
//!     scope.spawn(move || server.serve_tcp(&listener));
//!     let mut client = Client::connect(&endpoint)?;
//!     let spec = JobSpec {
//!         quick: true,
//!         ..JobSpec::preset("explore", Some("drr"))
//!     };
//!     let reply = client.call(&Request::run("q1", spec), |_| {})?;
//!     assert!(matches!(reply, Event::Result { .. }));
//!     client.send(&Request::new("bye", RequestBody::Shutdown))?;
//!     Ok(())
//! })?;
//! # Ok::<(), std::io::Error>(())
//! ```

mod client;
pub mod protocol;
mod server;

pub use client::Client;
pub use protocol::{Event, JobSpec, Request, RequestBody, PROTOCOL_VERSION};
pub use server::{Endpoint, ServeError, Server};
