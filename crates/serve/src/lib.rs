//! `ddtr_serve` — the long-running exploration service.
//!
//! The paper's flow is explore-once: run the methodology, read the Pareto
//! fronts, done. At production scale the economics invert — many clients
//! ask many overlapping exploration questions, and the expensive part
//! (the simulation sweep) is exactly what the engine's content-addressed
//! cache amortizes. This crate turns the workspace into a resident
//! service around that cache:
//!
//! * [`protocol`] — the newline-delimited JSON wire format: [`Request`]
//!   lines in (`Hello`/`Ping`/`Stats`/`Run`/`Cancel`/`Shutdown`),
//!   [`Event`] lines out (`Hello`/`Welcome`, `Queued`, `Running`
//!   progress, `Result`/`Cancelled`/`Error` — errors carrying a stable
//!   [`protocol::ErrorCode`] — and `Bye`), with exploration work named
//!   either by app/mode preset or as a full inline configuration
//!   ([`JobSpec`]).
//! * [`Server`] — serves stdin/stdout, TCP, or Unix-socket connections
//!   (`ddtr serve --listen …`) on a fleet of worker
//!   [`ddtr_engine::EngineSession`]s sharing one on-disk store: every
//!   `Run` routes deterministically to a worker by content fingerprint
//!   ([`route_worker`]) and gets its own engine bound to that worker's
//!   result cache and FIFO `--jobs` pool, so a million-packet job cannot
//!   starve a small query, repeated requests answer from the same warm
//!   cache with zero simulations, and results are byte-identical to the
//!   CLI's regardless of fleet size or request interleaving. The edge is
//!   hardened ([`ServerConfig`]): optional auth at `Hello`, bounded
//!   connection slots, per-connection rate and in-flight limits, and a
//!   request-size ceiling — every violation a structured coded error.
//! * [`Client`] — the blocking client behind `ddtr query` and the
//!   integration tests, with [`ClientBuilder`] layering the versioned
//!   handshake, auth, timeouts and connect retries on top.
//! * [`loadtest`] — the concurrent load harness behind `ddtr loadtest`
//!   and the `BENCH_serve.json` benchmarks.
//!
//! See `docs/PROTOCOL.md` for the full wire schema with a worked
//! transcript and `docs/ARCHITECTURE.md` for where the service sits in
//! the workspace.
//!
//! # Example
//!
//! ```
//! use ddtr_serve::{Client, Event, JobSpec, Request, RequestBody, Server};
//! use ddtr_engine::EngineConfig;
//! use std::net::TcpListener;
//!
//! let listener = TcpListener::bind("127.0.0.1:0")?;
//! let endpoint = ddtr_serve::Endpoint::Tcp(listener.local_addr()?.to_string());
//! let server = Server::new(EngineConfig::with_jobs(2)).expect("server");
//! std::thread::scope(|scope| -> std::io::Result<()> {
//!     let server = &server;
//!     scope.spawn(move || server.serve_tcp(&listener));
//!     let mut client = Client::connect(&endpoint)?;
//!     let spec = JobSpec {
//!         quick: true,
//!         ..JobSpec::preset("explore", Some("drr"))
//!     };
//!     let reply = client.call(&Request::run("q1", spec), |_| {})?;
//!     assert!(matches!(reply, Event::Result { .. }));
//!     client.send(&Request::new("bye", RequestBody::Shutdown))?;
//!     Ok(())
//! })?;
//! # Ok::<(), std::io::Error>(())
//! ```

mod client;
mod endpoint;
mod fleet;
mod limits;
pub mod loadtest;
pub mod protocol;
mod server;

pub use client::{Client, ClientBuilder, ClientError};
pub use endpoint::{Endpoint, EndpointErrorKind, EndpointParseError};
pub use fleet::{route_worker, ServerConfig};
pub use protocol::{
    ErrorCode, Event, JobSpec, Request, RequestBody, ResolveError, PROTOCOL_VERSION,
};
pub use server::{write_pidfile, ServeError, Server};
