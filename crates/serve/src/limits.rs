//! Edge-hardening primitives of the fleet server: the bounded connection
//! gate, the per-connection request-rate budget, and the size-ceilinged
//! line reader.
//!
//! Everything here is untrusted-input territory (the far side is an
//! arbitrary network peer), so per the `no-panic-boundary` contract each
//! failure mode surfaces as a value the caller turns into a structured
//! `Error` event — never a panic, and never unbounded memory: an
//! oversized line is discarded chunk by chunk without ever being
//! buffered whole.

use std::io::{self, BufRead, Read};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// A bounded pool of connection slots: the thing that turns the old
/// unbounded thread-per-connection accept loop into a bounded one.
///
/// Acquisition never blocks — at capacity the caller rejects the
/// connection with a structured `Overloaded` error instead of queueing
/// it, so a flood degrades loudly rather than exhausting threads.
#[derive(Debug)]
pub(crate) struct ConnGate {
    active: AtomicUsize,
    capacity: usize,
}

impl ConnGate {
    pub(crate) fn new(capacity: usize) -> Self {
        ConnGate {
            active: AtomicUsize::new(0),
            capacity: capacity.max(1),
        }
    }

    /// Tries to claim one slot; `None` means the gate is full.
    pub(crate) fn acquire(&self) -> Option<ConnSlot<'_>> {
        let claimed = self
            .active
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < self.capacity).then_some(n + 1)
            });
        claimed.ok().map(|_| ConnSlot { gate: self })
    }
}

/// One claimed connection slot; dropping it releases the slot.
#[derive(Debug)]
pub(crate) struct ConnSlot<'a> {
    gate: &'a ConnGate,
}

impl Drop for ConnSlot<'_> {
    fn drop(&mut self) {
        self.gate.active.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A fixed-window request-rate budget: at most `limit` requests per
/// second on one connection. Integer arithmetic only (no float
/// comparisons) and deterministic given the clock.
#[derive(Debug)]
pub(crate) struct RateLimiter {
    limit: Option<u32>,
    window: Mutex<RateWindow>,
}

#[derive(Debug)]
struct RateWindow {
    started: Instant,
    used: u32,
}

impl RateLimiter {
    /// A limiter allowing `limit` requests per second; `None` disables
    /// limiting.
    pub(crate) fn new(limit: Option<u32>) -> Self {
        RateLimiter {
            limit,
            window: Mutex::new(RateWindow {
                started: Instant::now(),
                used: 0,
            }),
        }
    }

    /// Spends one request from the budget; `false` means over budget
    /// (the caller answers `RateLimited` and keeps the connection open).
    pub(crate) fn admit(&self) -> bool {
        let Some(limit) = self.limit else {
            return true;
        };
        let mut window = self.window.lock().unwrap_or_else(PoisonError::into_inner);
        let now = Instant::now();
        if now.duration_since(window.started).as_millis() >= 1000 {
            window.started = now;
            window.used = 0;
        }
        if window.used < limit {
            window.used += 1;
            true
        } else {
            false
        }
    }
}

/// One read attempt from the request stream.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum RequestLine {
    /// The peer closed the stream.
    Eof,
    /// One complete line within the ceiling (terminator stripped).
    Line(String),
    /// The line exceeded the ceiling; it was discarded unread and the
    /// stream is positioned at the next line.
    TooLarge,
    /// The line was not valid UTF-8; discarded, stream still usable.
    NotUtf8,
}

/// Reads one `\n`-terminated line of at most `max_bytes` payload.
///
/// Never buffers more than `max_bytes + 1` bytes: when the ceiling is
/// hit the remainder of the line is drained chunk-by-chunk straight out
/// of the reader's buffer, so a hostile client cannot make the server
/// hold a multi-gigabyte "line" in memory.
pub(crate) fn read_request_line<R: BufRead>(
    reader: &mut R,
    max_bytes: usize,
) -> io::Result<RequestLine> {
    let mut buf = Vec::new();
    let n = (&mut *reader)
        .take(max_bytes as u64 + 1)
        .read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(RequestLine::Eof);
    }
    if buf.last() != Some(&b'\n') && buf.len() > max_bytes {
        discard_to_newline(reader)?;
        return Ok(RequestLine::TooLarge);
    }
    while buf.last() == Some(&b'\n') || buf.last() == Some(&b'\r') {
        buf.pop();
    }
    match String::from_utf8(buf) {
        Ok(line) => Ok(RequestLine::Line(line)),
        Err(_) => Ok(RequestLine::NotUtf8),
    }
}

/// Consumes the reader up to and including the next `\n` (or EOF)
/// without accumulating the skipped bytes.
fn discard_to_newline<R: BufRead>(reader: &mut R) -> io::Result<()> {
    loop {
        let (done, used) = {
            let chunk = reader.fill_buf()?;
            if chunk.is_empty() {
                return Ok(());
            }
            match chunk.iter().position(|&b| b == b'\n') {
                Some(pos) => (true, pos + 1),
                None => (false, chunk.len()),
            }
        };
        reader.consume(used);
        if done {
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn conn_gate_bounds_and_releases() {
        let gate = ConnGate::new(2);
        let a = gate.acquire().expect("slot a");
        let b = gate.acquire().expect("slot b");
        assert!(gate.acquire().is_none(), "full");
        drop(a);
        let c = gate.acquire().expect("slot after release");
        assert!(gate.acquire().is_none(), "full again");
        drop(b);
        drop(c);
        assert!(gate.acquire().is_some(), "all slots released");
    }

    #[test]
    fn rate_limiter_enforces_and_refills() {
        let unlimited = RateLimiter::new(None);
        for _ in 0..1000 {
            assert!(unlimited.admit());
        }
        let limited = RateLimiter::new(Some(3));
        assert!(limited.admit());
        assert!(limited.admit());
        assert!(limited.admit());
        assert!(!limited.admit(), "budget spent");
        // Force the window back to simulate a second passing.
        {
            let mut w = limited.window.lock().unwrap();
            w.started = Instant::now() - std::time::Duration::from_millis(1100);
        }
        assert!(limited.admit(), "budget refilled");
    }

    #[test]
    fn bounded_lines_read_and_oversize_discards() {
        let mut input = Cursor::new(b"short\nxxxxxxxxxxxxxxxxxxxx\nnext\n".to_vec());
        assert_eq!(
            read_request_line(&mut input, 10).unwrap(),
            RequestLine::Line("short".into())
        );
        assert_eq!(
            read_request_line(&mut input, 10).unwrap(),
            RequestLine::TooLarge
        );
        assert_eq!(
            read_request_line(&mut input, 10).unwrap(),
            RequestLine::Line("next".into()),
            "connection survives an oversized line"
        );
        assert_eq!(read_request_line(&mut input, 10).unwrap(), RequestLine::Eof);
    }

    #[test]
    fn exact_ceiling_and_crlf_and_utf8() {
        let mut exact = Cursor::new(b"0123456789\n".to_vec());
        assert_eq!(
            read_request_line(&mut exact, 10).unwrap(),
            RequestLine::Line("0123456789".into())
        );
        let mut crlf = Cursor::new(b"hi\r\n".to_vec());
        assert_eq!(
            read_request_line(&mut crlf, 10).unwrap(),
            RequestLine::Line("hi".into())
        );
        let mut bad = Cursor::new(vec![0xff, 0xfe, b'\n', b'o', b'k', b'\n']);
        assert_eq!(
            read_request_line(&mut bad, 10).unwrap(),
            RequestLine::NotUtf8
        );
        assert_eq!(
            read_request_line(&mut bad, 10).unwrap(),
            RequestLine::Line("ok".into())
        );
        // No trailing newline at EOF still yields the payload.
        let mut tail = Cursor::new(b"tail".to_vec());
        assert_eq!(
            read_request_line(&mut tail, 10).unwrap(),
            RequestLine::Line("tail".into())
        );
    }
}
