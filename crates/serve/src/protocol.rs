//! The wire protocol of `ddtr serve`: newline-delimited JSON.
//!
//! Every line the client writes is one [`Request`]; every line the server
//! writes is one [`Event`]. Values use serde's external tagging — a unit
//! variant is its name as a string (`"Ping"`), a data-carrying variant a
//! single-key object (`{"Run": {…}}`). The full schema, with a worked
//! `ddtr query` transcript, is documented in `docs/PROTOCOL.md` at the
//! workspace root.
//!
//! Requests carry a client-chosen `id`; every event about a request echoes
//! that id, so events of concurrently running requests can interleave
//! freely on one connection. Exploration work is named either *inline* —
//! a full [`ExploreRequest`] configuration — or by *preset*: mode, app
//! and the same flags the CLI subcommands take ([`JobSpec::resolve`] is
//! the one place both spellings meet).

use ddtr_apps::AppKind;
use ddtr_core::{
    CacheStats, ExploreRequest, ExploreResult, GaConfig, MemoryPreset, MethodologyConfig,
    ScenarioConfig, SweepConfig,
};
use ddtr_ddt::DdtKind;
use ddtr_obs::MetricsSnapshot;
use ddtr_trace::{NetworkPreset, Scenario};
use serde::{Deserialize, Serialize};

/// Version of the wire protocol; servers announce it in [`Event::Hello`]
/// and reject a [`RequestBody::Hello`] naming any other version with
/// [`ErrorCode::UnsupportedProtocol`]. Everything since v1 is additive,
/// so the number has not moved.
pub const PROTOCOL_VERSION: u32 = 1;

/// Capability names a fleet server advertises in [`Event::Hello`] /
/// [`Event::Welcome`]: what this build can do beyond the bare v1 wire
/// shape. Clients must ignore names they do not know.
pub const SERVER_CAPABILITIES: &[&str] = &["auth", "cancel", "cells", "codes", "fleet", "metrics"];

// The serde-compat manifest: the v1 wire shape, pinned. `ddtr-lint`
// cross-checks it against the types below both ways — removing or
// renaming anything listed here is a wire break and fails CI; fields
// added since v1 (`JobSpec.mem`, `Event::Stats.metrics`,
// `Event::Hello.{capabilities,workers}`, `Event::Error.code`) must stay
// optional, and enum variants beyond the lists (`Metrics`, `Cell`,
// `Welcome`, `RequestBody::Hello`) are additive. `ErrorCode` shipped
// whole with the fleet surface, so its variant list is pinned from its
// first release. Bump deliberately by editing this block in the same
// commit.
//
// ddtr-lint: serde-compat begin
// struct Request v1: id, body
// enum RequestBody v1: Ping, Stats, Run, Cancel, Shutdown
// variant RequestBody::Cancel v1: target
// struct JobSpec v1: inline, mode, app, quick, extended, stream, base, scenarios, packets, seed
// enum Event v1: Hello, Pong, Queued, Running, Result, Stats, Cancelled, Error, Bye
// variant Event::Hello v1: protocol, server, jobs
// variant Event::Pong v1: id
// variant Event::Queued v1: id
// variant Event::Running v1: id, done, total
// variant Event::Result v1: id, executed, cache_hits, result
// variant Event::Stats v1: id, stats, jobs
// variant Event::Cancelled v1: id
// variant Event::Error v1: id, error
// enum ErrorCode v1: Parse, BadRequest, AuthRequired, AuthFailed, UnsupportedProtocol, RateLimited, TooLarge, DuplicateId, UnknownTarget, Overloaded, Internal
// ddtr-lint: serde-compat end

/// Stable machine-readable classification of an [`Event::Error`].
///
/// Codes are additive: a client must treat an unknown code (or an absent
/// one, from a pre-`codes` server) as [`ErrorCode::Internal`]-like and
/// fall back to the human-readable `error` text. The full table, with
/// which codes end the connection, lives in `docs/PROTOCOL.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// The request line was not valid JSON for a [`Request`].
    Parse,
    /// The request parsed but is semantically invalid (bad mode, app,
    /// preset or flag combination — everything [`ResolveError`] covers).
    BadRequest,
    /// The server requires an auth token and the connection has not
    /// presented one: send [`RequestBody::Hello`] with `auth` first.
    AuthRequired,
    /// The presented auth token is wrong. The server closes the
    /// connection after this error.
    AuthFailed,
    /// The client's [`RequestBody::Hello`] named a `proto_version` this
    /// server does not speak.
    UnsupportedProtocol,
    /// The connection exceeded its request-rate budget; retry after
    /// backing off. The connection stays open.
    RateLimited,
    /// The request line exceeded the server's size ceiling and was
    /// discarded unread. The connection stays open.
    TooLarge,
    /// A `Run` re-used the id of a request still in flight.
    DuplicateId,
    /// A `Cancel` named an id that is not in flight.
    UnknownTarget,
    /// The server is at capacity (connection slots or per-connection
    /// in-flight budget exhausted).
    Overloaded,
    /// The engine failed while executing the request.
    Internal,
}

impl ErrorCode {
    /// The wire spelling of the code (the serde variant name).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Parse => "Parse",
            ErrorCode::BadRequest => "BadRequest",
            ErrorCode::AuthRequired => "AuthRequired",
            ErrorCode::AuthFailed => "AuthFailed",
            ErrorCode::UnsupportedProtocol => "UnsupportedProtocol",
            ErrorCode::RateLimited => "RateLimited",
            ErrorCode::TooLarge => "TooLarge",
            ErrorCode::DuplicateId => "DuplicateId",
            ErrorCode::UnknownTarget => "UnknownTarget",
            ErrorCode::Overloaded => "Overloaded",
            ErrorCode::Internal => "Internal",
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Why a [`JobSpec`] failed to resolve into an [`ExploreRequest`].
///
/// Every variant maps onto [`ErrorCode::BadRequest`] on the wire; the
/// structure exists so in-process callers (the CLI validates specs before
/// sending them) can branch on the kind instead of grepping a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveError {
    /// `inline` was combined with preset fields.
    InlineWithPreset,
    /// Neither `inline` nor `mode` was given.
    MissingMode,
    /// `mode` names no known exploration mode.
    UnknownMode(String),
    /// The mode requires `app` and none was given.
    MissingApp {
        /// The mode that needed it.
        mode: String,
    },
    /// An app/network/scenario/platform name failed to parse; the
    /// message lists the valid catalog.
    UnknownName(String),
    /// A flag was set that the chosen mode does not take.
    FlagNotApplicable {
        /// The offending `JobSpec` field.
        flag: String,
        /// The mode that rejects it.
        mode: String,
    },
    /// A non-sweep mode was given more than one `mem` preset.
    MemArity {
        /// The mode that takes exactly one platform.
        mode: String,
    },
    /// The spec resolved but the resulting configuration failed
    /// validation.
    Invalid(String),
}

impl ResolveError {
    /// The wire code for this failure (always [`ErrorCode::BadRequest`]).
    #[must_use]
    pub fn code(&self) -> ErrorCode {
        ErrorCode::BadRequest
    }
}

impl std::fmt::Display for ResolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResolveError::InlineWithPreset => f.write_str("inline configs take no preset fields"),
            ResolveError::MissingMode => f.write_str("missing `mode` (or `inline`)"),
            ResolveError::UnknownMode(mode) => write!(
                f,
                "unknown mode `{mode}` (expected explore, ga, scenarios, sweep or headline)"
            ),
            ResolveError::MissingApp { mode } => write!(f, "mode `{mode}` requires `app`"),
            ResolveError::UnknownName(msg) | ResolveError::Invalid(msg) => f.write_str(msg),
            ResolveError::FlagNotApplicable { flag, mode } => {
                write!(f, "`{flag}` does not apply to mode `{mode}`")
            }
            ResolveError::MemArity { mode } => write!(
                f,
                "mode `{mode}` takes exactly one `mem` preset (the sweep mode takes a list)"
            ),
        }
    }
}

impl std::error::Error for ResolveError {}

/// One client → server line.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Request {
    /// Client-chosen identifier echoed on every event about this request.
    pub id: String,
    /// What to do.
    pub body: RequestBody,
}

impl Request {
    /// Convenience constructor.
    #[must_use]
    pub fn new(id: impl Into<String>, body: RequestBody) -> Self {
        Request {
            id: id.into(),
            body,
        }
    }

    /// A `Run` request for `spec`.
    #[must_use]
    pub fn run(id: impl Into<String>, spec: JobSpec) -> Self {
        Request::new(id, RequestBody::Run(Box::new(spec)))
    }
}

/// The action a [`Request`] asks for.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum RequestBody {
    /// Versioned handshake; answered with [`Event::Welcome`] (or
    /// [`Event::Error`] carrying [`ErrorCode::UnsupportedProtocol`] /
    /// [`ErrorCode::AuthFailed`]). Optional on open servers; mandatory
    /// first request when the server was started with `--auth-token`.
    Hello {
        /// The protocol version the client speaks; must equal
        /// [`PROTOCOL_VERSION`].
        proto_version: u32,
        /// The shared secret, when the server requires one.
        #[serde(default)]
        auth: Option<String>,
        /// Capability names the client understands (informational; the
        /// server never rejects on them).
        #[serde(default)]
        capabilities: Vec<String>,
    },
    /// Liveness check; answered with [`Event::Pong`].
    Ping,
    /// Report the session's shared cache counters and jobs budget;
    /// answered with [`Event::Stats`].
    Stats,
    /// Report the process's full metrics in the Prometheus text
    /// exposition format; answered with [`Event::Metrics`]. `ddtr query
    /// <endpoint> metrics` prints the text verbatim.
    Metrics,
    /// Schedule one exploration; answered with [`Event::Queued`], a
    /// stream of [`Event::Running`], and finally [`Event::Result`],
    /// [`Event::Cancelled`] or [`Event::Error`]. (Boxed: a full inline
    /// configuration dwarfs the other variants.)
    Run(Box<JobSpec>),
    /// Cancel the in-flight request whose id is `target`. The cancelled
    /// request answers with [`Event::Cancelled`]; an unknown or already
    /// finished target answers with [`Event::Error`] on *this* request's
    /// id.
    Cancel {
        /// The id of the request to cancel.
        target: String,
    },
    /// Finish in-flight work, close the connection and — when the server
    /// listens on a socket — stop accepting new connections.
    Shutdown,
}

/// One exploration to schedule: either a full inline configuration or an
/// app/mode preset with CLI-equivalent flags.
///
/// Preset resolution mirrors the CLI exactly: `mode` is one of
/// `"explore"`, `"ga"`, `"scenarios"`, `"sweep"`, `"headline"`; `quick`
/// selects the reduced configuration; `extended` widens the DDT candidate
/// set; `stream` generates packets on the fly; `mem` names platform
/// presets from the [`MemoryPreset`] catalog (one for the single-platform
/// modes, the platform axis for `sweep`). Fields that do not apply to the
/// chosen mode are rejected, not ignored.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct JobSpec {
    /// Full inline configuration; when present every preset field must be
    /// absent.
    #[serde(default)]
    pub inline: Option<ExploreRequest>,
    /// Exploration mode: `explore`, `ga`, `scenarios` or `headline`.
    #[serde(default)]
    pub mode: Option<String>,
    /// Application preset (required for `explore`/`ga`/`headline`;
    /// optional row restriction for `scenarios`).
    #[serde(default)]
    pub app: Option<String>,
    /// Use the reduced (`--quick`) configuration.
    #[serde(default)]
    pub quick: bool,
    /// Explore the extended 12-kind DDT library (`--extended`).
    #[serde(default)]
    pub extended: bool,
    /// Stream packets into each simulation (`--stream`).
    #[serde(default)]
    pub stream: bool,
    /// Base network preset (`scenarios`/`sweep` only; default `BWY-I`).
    #[serde(default)]
    pub base: Option<String>,
    /// Scenario columns (`scenarios`/`sweep` only; default: all).
    #[serde(default)]
    pub scenarios: Option<Vec<String>>,
    /// Packets per simulation override (`scenarios`/`sweep` only).
    #[serde(default)]
    pub packets: Option<usize>,
    /// RNG seed override (`ga` only).
    #[serde(default)]
    pub seed: Option<u64>,
    /// Memory presets: exactly one for `explore`/`ga`/`scenarios`/
    /// `headline` (the platform to run on), any distinct set for `sweep`
    /// (the platform axis; default: the whole catalog). Unknown names are
    /// rejected with an error listing the valid presets.
    #[serde(default)]
    pub mem: Option<Vec<String>>,
}

impl JobSpec {
    /// A preset spec for `mode` over `app`, CLI defaults.
    #[must_use]
    pub fn preset(mode: &str, app: Option<&str>) -> Self {
        JobSpec {
            mode: Some(mode.to_string()),
            app: app.map(str::to_string),
            ..Self::default()
        }
    }

    /// An inline spec wrapping a full configuration.
    #[must_use]
    pub fn inline(request: ExploreRequest) -> Self {
        JobSpec {
            inline: Some(request),
            ..Self::default()
        }
    }

    /// Resolves the spec into the [`ExploreRequest`] to dispatch,
    /// validating it.
    ///
    /// # Errors
    ///
    /// Returns a [`ResolveError`] describing the first problem: unknown
    /// mode, app or scenario names, a flag that does not apply to the
    /// mode, or an invalid resolved configuration.
    pub fn resolve(&self) -> Result<ExploreRequest, ResolveError> {
        let request = self.build()?;
        request
            .validate()
            .map_err(|e| ResolveError::Invalid(e.to_string()))?;
        Ok(request)
    }

    fn build(&self) -> Result<ExploreRequest, ResolveError> {
        if let Some(inline) = &self.inline {
            if self.mode.is_some() || self.app.is_some() {
                return Err(ResolveError::InlineWithPreset);
            }
            return Ok(inline.clone());
        }
        let mode = self.mode.as_deref().ok_or(ResolveError::MissingMode)?;
        let unknown = |e: &dyn std::fmt::Display| ResolveError::UnknownName(e.to_string());
        let optional_app = || -> Result<Option<AppKind>, ResolveError> {
            match &self.app {
                Some(name) => name.parse().map(Some).map_err(|e| unknown(&e)),
                None => Ok(None),
            }
        };
        let required_app = || -> Result<AppKind, ResolveError> {
            optional_app()?.ok_or_else(|| ResolveError::MissingApp {
                mode: mode.to_string(),
            })
        };
        let reject = |field: &str, set: bool| -> Result<(), ResolveError> {
            if set {
                Err(ResolveError::FlagNotApplicable {
                    flag: field.to_string(),
                    mode: mode.to_string(),
                })
            } else {
                Ok(())
            }
        };
        // The single platform of a non-sweep mode, when `mem` is given.
        let single_mem = || -> Result<Option<MemoryPreset>, ResolveError> {
            match &self.mem {
                None => Ok(None),
                Some(names) => match names.as_slice() {
                    [name] => name.parse().map(Some).map_err(|e| unknown(&e)),
                    _ => Err(ResolveError::MemArity {
                        mode: mode.to_string(),
                    }),
                },
            }
        };
        match mode {
            "explore" | "headline" => {
                let app = required_app()?;
                reject("base", self.base.is_some())?;
                reject("scenarios", self.scenarios.is_some())?;
                reject("packets", self.packets.is_some())?;
                reject("seed", self.seed.is_some())?;
                let mut cfg = if self.quick {
                    MethodologyConfig::quick(app)
                } else {
                    MethodologyConfig::paper(app)
                };
                if self.extended {
                    cfg.candidates = DdtKind::EXTENDED.to_vec();
                }
                cfg.streaming = self.stream;
                if let Some(preset) = single_mem()? {
                    cfg.mem = preset.config();
                }
                Ok(if mode == "explore" {
                    ExploreRequest::Explore(cfg)
                } else {
                    ExploreRequest::Headline(cfg)
                })
            }
            "ga" => {
                let app = required_app()?;
                reject("base", self.base.is_some())?;
                reject("scenarios", self.scenarios.is_some())?;
                reject("packets", self.packets.is_some())?;
                let mut cfg = if self.quick {
                    GaConfig::quick(app)
                } else {
                    GaConfig::paper(app)
                };
                if self.extended {
                    cfg.candidates = DdtKind::EXTENDED.to_vec();
                }
                cfg.streaming = self.stream;
                if let Some(seed) = self.seed {
                    cfg.seed = seed;
                }
                if let Some(preset) = single_mem()? {
                    cfg.mem = preset.config();
                }
                Ok(ExploreRequest::Ga(cfg))
            }
            "scenarios" => {
                reject("seed", self.seed.is_some())?;
                // `stream` is accepted as a no-op: scenarios always
                // streams, mirroring the CLI.
                let base: NetworkPreset = match &self.base {
                    Some(name) => name.parse().map_err(|e| unknown(&e))?,
                    None => NetworkPreset::DartmouthBerry,
                };
                let mut cfg = if self.quick {
                    ScenarioConfig::quick(base)
                } else {
                    ScenarioConfig::paper(base)
                };
                if self.extended {
                    cfg.candidates = DdtKind::EXTENDED.to_vec();
                }
                if let Some(app) = optional_app()? {
                    cfg.apps = vec![app];
                }
                if let Some(names) = &self.scenarios {
                    cfg.scenarios = names
                        .iter()
                        .map(|n| n.parse::<Scenario>().map_err(|e| unknown(&e)))
                        .collect::<Result<_, _>>()?;
                }
                if let Some(packets) = self.packets {
                    cfg.packets_per_sim = packets;
                }
                if let Some(preset) = single_mem()? {
                    cfg.mem = preset.config();
                }
                Ok(ExploreRequest::Scenarios(cfg))
            }
            "sweep" => {
                reject("seed", self.seed.is_some())?;
                // `stream` is accepted as a no-op: sweeps always stream,
                // like scenarios.
                let base: NetworkPreset = match &self.base {
                    Some(name) => name.parse().map_err(|e| unknown(&e))?,
                    None => NetworkPreset::DartmouthBerry,
                };
                let mut cfg = if self.quick {
                    SweepConfig::quick(base)
                } else {
                    SweepConfig::paper(base)
                };
                if self.extended {
                    cfg.candidates = DdtKind::EXTENDED.to_vec();
                }
                if let Some(app) = optional_app()? {
                    cfg.apps = vec![app];
                }
                if let Some(names) = &self.scenarios {
                    cfg.scenarios = names
                        .iter()
                        .map(|n| n.parse::<Scenario>().map_err(|e| unknown(&e)))
                        .collect::<Result<_, _>>()?;
                }
                if let Some(packets) = self.packets {
                    cfg.packets_per_sim = packets;
                }
                if let Some(names) = &self.mem {
                    cfg.mem_presets = names
                        .iter()
                        .map(|n| n.parse::<MemoryPreset>().map_err(|e| unknown(&e)))
                        .collect::<Result<_, _>>()?;
                }
                Ok(ExploreRequest::Sweep(cfg))
            }
            other => Err(ResolveError::UnknownMode(other.to_string())),
        }
    }
}

/// One server → client line.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Event {
    /// First line of every connection: protocol version, server build and
    /// the session's concurrent-simulation budget.
    Hello {
        /// [`PROTOCOL_VERSION`] of the server.
        protocol: u32,
        /// Server build identifier.
        server: String,
        /// Concurrent-simulation budget of each worker session.
        jobs: usize,
        /// Capability names of this server build (see
        /// [`SERVER_CAPABILITIES`]); empty from a pre-fleet server.
        #[serde(default)]
        capabilities: Vec<String>,
        /// Worker sessions behind the listener; `0` from a pre-fleet
        /// server (read it as one).
        #[serde(default)]
        workers: usize,
    },
    /// Answer to [`RequestBody::Hello`]: the handshake was accepted and
    /// the connection is authenticated (when auth is configured).
    Welcome {
        /// Echoed request id.
        id: String,
        /// [`PROTOCOL_VERSION`] of the server.
        protocol: u32,
        /// Capability names of this server build.
        capabilities: Vec<String>,
    },
    /// Answer to [`RequestBody::Ping`].
    Pong {
        /// Echoed request id.
        id: String,
    },
    /// A [`RequestBody::Run`] was accepted and scheduled.
    Queued {
        /// Echoed request id.
        id: String,
    },
    /// Progress of a running request. `done`/`total` count simulation
    /// units (cache hits resolve instantly); `total` grows as later
    /// exploration phases are scheduled.
    Running {
        /// Echoed request id.
        id: String,
        /// Units resolved so far.
        done: usize,
        /// Units scheduled so far.
        total: usize,
    },
    /// One completed cell of a running `sweep` request: the platform
    /// family streams in as it is explored, without waiting for the
    /// aggregated [`Event::Result`]. Cells arrive in deterministic
    /// `apps × scenarios × presets` order; `done`/`total` count cells.
    Cell {
        /// Echoed request id.
        id: String,
        /// Cells completed so far (this one included).
        done: usize,
        /// Total cells of the sweep.
        total: usize,
        /// Application of the completed cell.
        app: AppKind,
        /// Scenario of the completed cell.
        scenario: Scenario,
        /// Platform (memory preset) of the completed cell.
        mem: MemoryPreset,
        /// The cell's Pareto-front combination labels, in order.
        front: Vec<String>,
    },
    /// Terminal success of a request. `executed`/`cache_hits` are this
    /// request's exact engine counters; `result` is deterministic — byte
    /// -identical for equal requests at any jobs count and interleaving.
    Result {
        /// Echoed request id.
        id: String,
        /// Simulations this request actually executed (0 on a warm
        /// cache).
        executed: usize,
        /// Simulations answered from the session's shared cache.
        cache_hits: usize,
        /// The typed exploration answer (boxed: it dwarfs every other
        /// event).
        result: Box<ExploreResult>,
    },
    /// Answer to [`RequestBody::Stats`].
    Stats {
        /// Echoed request id.
        id: String,
        /// Counters of the session's shared cache.
        stats: CacheStats,
        /// Concurrent-simulation budget of the session.
        jobs: usize,
        /// Full metrics snapshot of the server process: request latency
        /// histograms, cache counters, in-flight gauge (see
        /// `docs/OBSERVABILITY.md`). Defaults to empty when talking to a
        /// pre-metrics server. (Boxed: it dwarfs the other fields.)
        #[serde(default)]
        metrics: Box<MetricsSnapshot>,
    },
    /// Answer to [`RequestBody::Metrics`]: the process metrics rendered
    /// in the Prometheus text exposition format.
    Metrics {
        /// Echoed request id.
        id: String,
        /// Prometheus-style exposition text (`ddtr_*` families).
        text: String,
    },
    /// Terminal reply of a cancelled request.
    Cancelled {
        /// Echoed request id.
        id: String,
    },
    /// A request failed (or a line could not be parsed — then `id` is
    /// null and the connection stays usable).
    Error {
        /// Echoed request id; null for unparseable lines.
        id: Option<String>,
        /// Human-readable description.
        error: String,
        /// Stable machine-readable classification; absent from pre-
        /// `codes` servers.
        #[serde(default)]
        code: Option<ErrorCode>,
    },
    /// Last line before the server closes the connection.
    Bye,
}

impl Event {
    /// The request id the event concerns, if any.
    #[must_use]
    pub fn id(&self) -> Option<&str> {
        match self {
            Event::Hello { .. } | Event::Bye => None,
            Event::Pong { id }
            | Event::Welcome { id, .. }
            | Event::Queued { id }
            | Event::Running { id, .. }
            | Event::Cell { id, .. }
            | Event::Result { id, .. }
            | Event::Stats { id, .. }
            | Event::Metrics { id, .. }
            | Event::Cancelled { id } => Some(id),
            Event::Error { id, .. } => id.as_deref(),
        }
    }

    /// Whether this event ends its request (result, cancelled or error).
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            Event::Result { .. }
                | Event::Cancelled { .. }
                | Event::Error { .. }
                | Event::Pong { .. }
                | Event::Welcome { .. }
                | Event::Stats { .. }
                | Event::Metrics { .. }
        )
    }

    /// The machine-readable code when this is an [`Event::Error`].
    #[must_use]
    pub fn error_code(&self) -> Option<ErrorCode> {
        match self {
            Event::Error { code, .. } => *code,
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_json() {
        let requests = vec![
            Request::new("a", RequestBody::Ping),
            Request::new("b", RequestBody::Stats),
            Request::run("c", JobSpec::preset("explore", Some("drr"))),
            Request::new("d", RequestBody::Cancel { target: "c".into() }),
            Request::new("e", RequestBody::Shutdown),
        ];
        for request in requests {
            let json = serde_json::to_string(&request).expect("ser");
            let back: Request = serde_json::from_str(&json).expect("de");
            assert_eq!(back.id, request.id);
            assert_eq!(serde_json::to_string(&back).expect("ser"), json, "lossless");
        }
    }

    #[test]
    fn events_round_trip_and_classify() {
        let events = vec![
            Event::Hello {
                protocol: PROTOCOL_VERSION,
                server: "test".into(),
                jobs: 2,
                capabilities: SERVER_CAPABILITIES.iter().map(|s| s.to_string()).collect(),
                workers: 4,
            },
            Event::Welcome {
                id: "h".into(),
                protocol: PROTOCOL_VERSION,
                capabilities: vec!["fleet".into()],
            },
            Event::Queued { id: "r".into() },
            Event::Running {
                id: "r".into(),
                done: 3,
                total: 10,
            },
            Event::Cell {
                id: "r".into(),
                done: 1,
                total: 4,
                app: AppKind::Drr,
                scenario: Scenario::Baseline,
                mem: MemoryPreset::Deep,
                front: vec!["AR+SLL(AR)".into()],
            },
            Event::Cancelled { id: "r".into() },
            Event::Error {
                id: None,
                error: "bad line".into(),
                code: Some(ErrorCode::Parse),
            },
            Event::Bye,
        ];
        for event in events {
            let json = serde_json::to_string(&event).expect("ser");
            let back: Event = serde_json::from_str(&json).expect("de");
            assert_eq!(back.id(), event.id());
            assert_eq!(back.is_terminal(), event.is_terminal());
            assert_eq!(back.error_code(), event.error_code());
        }
        assert!(!Event::Queued { id: "r".into() }.is_terminal());
        assert!(Event::Cancelled { id: "r".into() }.is_terminal());
    }

    #[test]
    fn v1_peers_survive_the_fleet_additions() {
        // A v1 server's greeting and error lines carry none of the
        // post-v1 fields; they must still deserialize.
        let hello: Event =
            serde_json::from_str(r#"{"Hello":{"protocol":1,"server":"old","jobs":2}}"#)
                .expect("v1 Hello");
        let Event::Hello {
            capabilities,
            workers,
            ..
        } = hello
        else {
            panic!("wrong event");
        };
        assert!(capabilities.is_empty());
        assert_eq!(workers, 0);
        let error: Event =
            serde_json::from_str(r#"{"Error":{"id":null,"error":"boom"}}"#).expect("v1 Error");
        assert_eq!(error.error_code(), None);
        // A minimal client handshake needs only the version.
        let req: Request =
            serde_json::from_str(r#"{"id":"h","body":{"Hello":{"proto_version":1}}}"#)
                .expect("minimal Hello");
        let RequestBody::Hello {
            proto_version,
            auth,
            capabilities,
        } = req.body
        else {
            panic!("wrong body");
        };
        assert_eq!(proto_version, PROTOCOL_VERSION);
        assert_eq!(auth, None);
        assert!(capabilities.is_empty());
        // Codes round-trip as bare variant-name strings.
        let json = serde_json::to_string(&ErrorCode::RateLimited).expect("ser");
        assert_eq!(json, r#""RateLimited""#);
        let back: ErrorCode = serde_json::from_str(&json).expect("de");
        assert_eq!(back, ErrorCode::RateLimited);
        assert_eq!(back.as_str(), "RateLimited");
    }

    #[test]
    fn preset_specs_resolve_like_the_cli() {
        let spec = JobSpec {
            quick: true,
            stream: true,
            extended: true,
            ..JobSpec::preset("explore", Some("drr"))
        };
        let request = spec.resolve().expect("resolves");
        let ExploreRequest::Explore(cfg) = &request else {
            panic!("wrong mode {}", request.mode());
        };
        assert!(cfg.streaming);
        assert_eq!(cfg.candidates.len(), 12, "--extended");
        assert_eq!(cfg.networks.len(), 2, "--quick");
    }

    #[test]
    fn scenario_specs_resolve_names() {
        let spec = JobSpec {
            quick: true,
            scenarios: Some(vec!["flash-crowd".into(), "ddos-syn".into()]),
            packets: Some(64),
            base: Some("NLANR-AIX".into()),
            ..JobSpec::preset("scenarios", Some("url"))
        };
        let request = spec.resolve().expect("resolves");
        let ExploreRequest::Scenarios(cfg) = &request else {
            panic!("wrong mode {}", request.mode());
        };
        assert_eq!(cfg.scenarios, vec![Scenario::FlashCrowd, Scenario::DdosSyn]);
        assert_eq!(cfg.packets_per_sim, 64);
        assert_eq!(cfg.apps, vec![AppKind::Url]);
    }

    #[test]
    fn sweep_specs_resolve_the_platform_axis() {
        let spec = JobSpec {
            quick: true,
            mem: Some(vec!["embedded".into(), "deep".into(), "spm".into()]),
            scenarios: Some(vec!["baseline".into(), "ddos-syn".into()]),
            packets: Some(40),
            ..JobSpec::preset("sweep", Some("url"))
        };
        let request = spec.resolve().expect("resolves");
        let ExploreRequest::Sweep(cfg) = &request else {
            panic!("wrong mode {}", request.mode());
        };
        assert_eq!(
            cfg.mem_presets,
            vec![
                MemoryPreset::Embedded,
                MemoryPreset::Deep,
                MemoryPreset::Spm
            ]
        );
        assert_eq!(cfg.scenarios, vec![Scenario::Baseline, Scenario::DdosSyn]);
        assert_eq!(cfg.apps, vec![AppKind::Url]);
        assert_eq!(cfg.packets_per_sim, 40);
        // Without `mem`, the paper-sized sweep covers the whole catalog.
        let full = JobSpec::preset("sweep", None).resolve().expect("resolves");
        let ExploreRequest::Sweep(cfg) = &full else {
            panic!("wrong mode");
        };
        assert_eq!(cfg.mem_presets, MemoryPreset::ALL.to_vec());
    }

    #[test]
    fn single_platform_modes_accept_one_mem_preset() {
        let spec = JobSpec {
            quick: true,
            mem: Some(vec!["l2".into()]),
            ..JobSpec::preset("explore", Some("drr"))
        };
        let request = spec.resolve().expect("resolves");
        let ExploreRequest::Explore(cfg) = &request else {
            panic!("wrong mode {}", request.mode());
        };
        assert!(cfg.mem.l2.is_some(), "--mem l2 reaches the platform config");
        // More than one preset only makes sense for a sweep.
        let err = JobSpec {
            quick: true,
            mem: Some(vec!["l2".into(), "deep".into()]),
            ..JobSpec::preset("explore", Some("drr"))
        }
        .resolve()
        .unwrap_err();
        assert!(err.to_string().contains("exactly one"), "{err}");
    }

    #[test]
    fn unknown_mem_presets_are_rejected_listing_the_catalog() {
        for mode in ["explore", "sweep"] {
            let err = JobSpec {
                quick: true,
                mem: Some(vec!["quantum".into()]),
                ..JobSpec::preset(mode, Some("drr"))
            }
            .resolve()
            .unwrap_err()
            .to_string();
            assert!(err.contains("quantum"), "{mode}: {err}");
            for preset in MemoryPreset::ALL {
                assert!(err.contains(preset.name()), "{mode}: {err} misses {preset}");
            }
        }
    }

    #[test]
    fn bad_specs_are_rejected_with_reasons() {
        let missing = JobSpec::default().resolve().unwrap_err();
        assert_eq!(missing, ResolveError::MissingMode);
        assert!(missing.to_string().contains("mode"), "{missing}");
        let unknown = JobSpec::preset("frobnicate", None).resolve().unwrap_err();
        assert_eq!(unknown, ResolveError::UnknownMode("frobnicate".into()));
        assert!(unknown.to_string().contains("frobnicate"), "{unknown}");
        let no_app = JobSpec::preset("explore", None).resolve().unwrap_err();
        assert!(no_app.to_string().contains("requires `app`"), "{no_app}");
        let bad_app = JobSpec::preset("ga", Some("nfs")).resolve().unwrap_err();
        assert!(matches!(bad_app, ResolveError::UnknownName(_)), "{bad_app}");
        assert!(bad_app.to_string().contains("nfs"), "{bad_app}");
        let stray = JobSpec {
            seed: Some(7),
            ..JobSpec::preset("explore", Some("drr"))
        }
        .resolve()
        .unwrap_err();
        assert!(stray.to_string().contains("seed"), "{stray}");
        let both = JobSpec {
            mode: Some("explore".into()),
            ..JobSpec::inline(ExploreRequest::Explore(MethodologyConfig::quick(
                AppKind::Drr,
            )))
        }
        .resolve()
        .unwrap_err();
        assert_eq!(both, ResolveError::InlineWithPreset);
        assert!(both.to_string().contains("preset"), "{both}");
    }

    #[test]
    fn inline_specs_round_trip_and_resolve() {
        let request = ExploreRequest::Ga(GaConfig::quick(AppKind::Nat));
        let spec = JobSpec::inline(request);
        let json = serde_json::to_string(&Request::run("q", spec)).expect("ser");
        let back: Request = serde_json::from_str(&json).expect("de");
        let RequestBody::Run(spec) = back.body else {
            panic!("wrong body");
        };
        let resolved = spec.resolve().expect("resolves");
        assert_eq!(resolved.mode(), "ga");
    }
}
