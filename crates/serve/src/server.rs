//! The resident exploration server.
//!
//! One [`Server`] owns one [`EngineSession`] — the shared result cache
//! and the shared FIFO `--jobs` pool — and serves any number of
//! connections, each speaking the JSONL protocol of [`crate::protocol`].
//! Every `Run` request executes on its own engine bound to that session,
//! so concurrent requests interleave fairly at simulation granularity,
//! warm the same cache, and still produce byte-identical results
//! regardless of what else is running (results are content-addressed,
//! never order-dependent).

use crate::protocol::{Event, Request, RequestBody, PROTOCOL_VERSION};
use ddtr_core::{dispatch_observed, ExploreError};
use ddtr_engine::{BatchControl, EngineConfig, EngineError, EngineSession};
use std::collections::HashMap;
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// A server-side failure (socket setup, engine/cache construction).
#[derive(Debug)]
pub struct ServeError(String);

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serve error: {}", self.0)
    }
}

impl std::error::Error for ServeError {}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> Self {
        ServeError(e.to_string())
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError(e.to_string())
    }
}

/// Where a server listens or a client connects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// The process's stdin/stdout — one connection, the default of
    /// `ddtr serve`.
    Stdio,
    /// A TCP socket address (`tcp:127.0.0.1:7070`).
    Tcp(String),
    /// A Unix domain socket path (`unix:/tmp/ddtr.sock`); Unix platforms
    /// only.
    Unix(PathBuf),
}

impl FromStr for Endpoint {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "stdio" {
            return Ok(Endpoint::Stdio);
        }
        if let Some(addr) = s.strip_prefix("tcp:") {
            if addr.is_empty() {
                return Err("tcp: endpoint needs an address".into());
            }
            return Ok(Endpoint::Tcp(addr.to_string()));
        }
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("unix: endpoint needs a path".into());
            }
            return Ok(Endpoint::Unix(PathBuf::from(path)));
        }
        Err(format!(
            "unknown endpoint `{s}` (expected stdio, tcp:<addr> or unix:<path>)"
        ))
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Stdio => write!(f, "stdio"),
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// The shared event writer of one connection: serialises events to one
/// line each and remembers when the peer stopped accepting them.
///
/// A failed write means nobody is reading the answers any more; the
/// failure is recorded (never propagated — the connection is being torn
/// down anyway) so in-flight work can notice and cancel itself instead
/// of simulating for a vanished client.
struct ConnWriter<W: Write> {
    inner: Mutex<W>,
    peer_gone: AtomicBool,
}

impl<W: Write> ConnWriter<W> {
    fn new(writer: W) -> Self {
        ConnWriter {
            inner: Mutex::new(writer),
            peer_gone: AtomicBool::new(false),
        }
    }

    /// Writes one event as one flushed line.
    fn emit(&self, event: &Event) {
        let Ok(line) = serde_json::to_string(event) else {
            return;
        };
        let mut w = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        // ddtr-lint: allow(lock-across-io) — this mutex exists to serialise
        // the write itself; it is never held while simulating, and a stalled
        // peer only stalls its own writer (one ConnWriter per connection).
        if writeln!(w, "{line}").and_then(|()| w.flush()).is_err() {
            self.peer_gone.store(true, Ordering::SeqCst);
        }
    }

    /// Whether a write to the peer has failed.
    fn peer_gone(&self) -> bool {
        self.peer_gone.load(Ordering::SeqCst)
    }
}

/// The variant counter a request increments (docs/OBSERVABILITY.md).
fn request_counter(body: &RequestBody) -> &'static str {
    match body {
        RequestBody::Ping => "serve.request.ping",
        RequestBody::Stats => "serve.request.stats",
        RequestBody::Metrics => "serve.request.metrics",
        RequestBody::Run(_) => "serve.request.run",
        RequestBody::Cancel { .. } => "serve.request.cancel",
        RequestBody::Shutdown => "serve.request.shutdown",
    }
}

/// Records one end-to-end request latency sample: receipt of the request
/// line to emission of its terminal event.
fn record_latency(arrived: std::time::Instant) {
    ddtr_obs::histogram("serve.request.latency").record_duration(arrived.elapsed());
}

/// The long-running exploration server. See the crate docs for the
/// protocol and [`EngineSession`] for the sharing/fairness model.
#[derive(Debug)]
pub struct Server {
    session: EngineSession,
    shutdown: AtomicBool,
}

impl Server {
    /// Builds a server, opening the session's (persistent) result cache.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] when the cache directory cannot be opened.
    pub fn new(cfg: EngineConfig) -> Result<Self, ServeError> {
        Ok(Server {
            session: EngineSession::new(cfg)?,
            shutdown: AtomicBool::new(false),
        })
    }

    /// The server's shared engine session.
    #[must_use]
    pub fn session(&self) -> &EngineSession {
        &self.session
    }

    /// Whether a `Shutdown` request has been received.
    #[must_use]
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Serves one connection until EOF or a `Shutdown` request: reads one
    /// JSON [`Request`] per line, runs `Run` requests concurrently on the
    /// shared session, and streams [`Event`] lines (interleaved across
    /// requests, each tagged with its request id). Malformed lines get an
    /// `Error` event with a null id and do not end the connection. All
    /// in-flight work finishes (or is cancelled) before the final `Bye`.
    pub fn serve_connection<R, W>(&self, reader: R, writer: W)
    where
        R: BufRead,
        W: Write + Send + 'static,
    {
        let writer = Arc::new(ConnWriter::new(writer));
        writer.emit(&Event::Hello {
            protocol: PROTOCOL_VERSION,
            server: format!("ddtr_serve {}", env!("CARGO_PKG_VERSION")),
            jobs: self.session.jobs(),
        });
        let inflight: Mutex<HashMap<String, BatchControl>> = Mutex::new(HashMap::new());
        std::thread::scope(|scope| {
            for line in reader.lines() {
                let Ok(line) = line else { break };
                if line.trim().is_empty() {
                    continue;
                }
                let request: Request = match serde_json::from_str(&line) {
                    Ok(request) => request,
                    Err(e) => {
                        ddtr_obs::counter("serve.request.malformed").inc();
                        writer.emit(&Event::Error {
                            id: None,
                            error: format!("unparseable request: {e}"),
                        });
                        continue;
                    }
                };
                // Per-request accounting (docs/OBSERVABILITY.md): one
                // variant counter per request, an end-to-end latency
                // sample per terminal event.
                let arrived = std::time::Instant::now();
                ddtr_obs::counter(request_counter(&request.body)).inc();
                match request.body {
                    RequestBody::Ping => {
                        writer.emit(&Event::Pong { id: request.id });
                        record_latency(arrived);
                    }
                    RequestBody::Stats => {
                        writer.emit(&Event::Stats {
                            id: request.id,
                            stats: self.session.stats(),
                            jobs: self.session.jobs(),
                            metrics: Box::new(ddtr_obs::snapshot()),
                        });
                        record_latency(arrived);
                    }
                    RequestBody::Metrics => {
                        writer.emit(&Event::Metrics {
                            id: request.id,
                            text: ddtr_obs::render_prometheus(&ddtr_obs::snapshot()),
                        });
                        record_latency(arrived);
                    }
                    RequestBody::Cancel { target } => {
                        let control = inflight
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .get(&target)
                            .cloned();
                        match control {
                            // The cancelled request replies `Cancelled`
                            // on its own id.
                            Some(control) => control.cancel(),
                            None => {
                                writer.emit(&Event::Error {
                                    id: Some(request.id),
                                    error: format!(
                                        "no in-flight request `{target}` (unknown or finished)"
                                    ),
                                });
                                record_latency(arrived);
                            }
                        }
                    }
                    RequestBody::Shutdown => {
                        self.shutdown.store(true, Ordering::SeqCst);
                        break;
                    }
                    RequestBody::Run(spec) => {
                        let id = request.id;
                        // A duplicate id would make the earlier request
                        // uncancellable and the event streams
                        // indistinguishable — reject it.
                        if inflight
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .contains_key(&id)
                        {
                            writer.emit(&Event::Error {
                                id: Some(id),
                                error: "a request with this id is already in flight".into(),
                            });
                            record_latency(arrived);
                            continue;
                        }
                        let explore = match spec.resolve() {
                            Ok(explore) => explore,
                            Err(error) => {
                                writer.emit(&Event::Error {
                                    id: Some(id),
                                    error,
                                });
                                record_latency(arrived);
                                continue;
                            }
                        };
                        writer.emit(&Event::Queued { id: id.clone() });
                        // Progress observer: emits monotone `Running`
                        // lines, throttled to ~1% steps (plus every
                        // phase completion) so huge runs don't flood the
                        // wire; workers race between counting and
                        // reporting, so non-increasing snapshots are
                        // dropped. When the peer stops accepting events
                        // the observer cancels its own request — nobody
                        // is left to read the answer.
                        let progress_writer = Arc::clone(&writer);
                        let progress_id = id.clone();
                        let last_done = AtomicUsize::new(0);
                        let own_token: Arc<std::sync::OnceLock<ddtr_engine::CancelToken>> =
                            Arc::new(std::sync::OnceLock::new());
                        let observer_token = Arc::clone(&own_token);
                        let control = BatchControl::observed(move |p| {
                            let stride = (p.total / 100).max(1);
                            let prev = last_done.load(Ordering::SeqCst);
                            if p.done > 0
                                && (p.done == p.total || p.done >= prev + stride)
                                && last_done.fetch_max(p.done, Ordering::SeqCst) < p.done
                            {
                                progress_writer.emit(&Event::Running {
                                    id: progress_id.clone(),
                                    done: p.done,
                                    total: p.total,
                                });
                            }
                            if progress_writer.peer_gone() {
                                if let Some(token) = observer_token.get() {
                                    token.cancel();
                                }
                            }
                        });
                        let _ = own_token.set(control.token());
                        inflight
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .insert(id.clone(), control.clone());
                        let result_writer = Arc::clone(&writer);
                        let session = &self.session;
                        let inflight = &inflight;
                        let queued_at = std::time::Instant::now();
                        ddtr_obs::gauge("serve.inflight").inc();
                        scope.spawn(move || {
                            ddtr_obs::histogram("serve.request.queue_wait")
                                .record_duration(queued_at.elapsed());
                            let mut engine = session.engine_with(control);
                            // Sweep requests additionally stream one
                            // `Cell` line per completed platform cell;
                            // every other mode never invokes the observer.
                            let cell_writer = Arc::clone(&result_writer);
                            let cell_id = id.clone();
                            let outcome =
                                dispatch_observed(&mut engine, &explore, |cell, done, total| {
                                    cell_writer.emit(&Event::Cell {
                                        id: cell_id.clone(),
                                        done,
                                        total,
                                        app: cell.app,
                                        scenario: cell.scenario,
                                        mem: cell.mem,
                                        front: cell.front_labels(),
                                    });
                                });
                            inflight
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner)
                                .remove(&id);
                            let progress = engine.control().progress();
                            let event = match outcome {
                                Ok(result) => Event::Result {
                                    id,
                                    executed: progress.executed,
                                    cache_hits: progress.hits,
                                    result: Box::new(result),
                                },
                                Err(ExploreError::Cancelled) => Event::Cancelled { id },
                                Err(e) => Event::Error {
                                    id: Some(id),
                                    error: e.to_string(),
                                },
                            };
                            result_writer.emit(&event);
                            ddtr_obs::gauge("serve.inflight").dec();
                            record_latency(arrived);
                        });
                    }
                }
            }
            // Leaving the scope joins every in-flight request. Plain EOF
            // does NOT cancel them: in stdio batch mode (`printf … |
            // ddtr serve`) the answers are still wanted after stdin
            // closes. Abandoned work is caught by the observers above
            // the moment a progress write fails.
        });
        writer.emit(&Event::Bye);
    }

    /// Accept loop over an already-bound TCP listener; each connection is
    /// served concurrently on the shared session. Returns after a
    /// `Shutdown` request once every open connection has finished.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the listener's local address cannot be
    /// resolved.
    pub fn serve_tcp(&self, listener: &TcpListener) -> io::Result<()> {
        let local = listener.local_addr()?;
        std::thread::scope(|scope| {
            for conn in listener.incoming() {
                if self.shutdown_requested() {
                    break;
                }
                let Ok(stream) = conn else { continue };
                // Event lines are small and latency-bound; never hold
                // them back for coalescing (Nagle + delayed ACK costs
                // tens of ms per request/reply round trip).
                let _ = stream.set_nodelay(true);
                scope.spawn(move || {
                    let Ok(read_half) = stream.try_clone() else {
                        return;
                    };
                    self.serve_connection(BufReader::new(read_half), stream);
                    if self.shutdown_requested() {
                        // Unblock the accept loop so it can observe the
                        // flag and stop.
                        let _ = TcpStream::connect(local);
                    }
                });
            }
        });
        Ok(())
    }

    /// Accept loop over an already-bound Unix socket listener; the Unix
    /// counterpart of [`Server::serve_tcp`].
    #[cfg(unix)]
    pub fn serve_unix(&self, listener: &std::os::unix::net::UnixListener) -> io::Result<()> {
        let path = listener
            .local_addr()?
            .as_pathname()
            .map(std::path::Path::to_path_buf);
        std::thread::scope(|scope| {
            for conn in listener.incoming() {
                if self.shutdown_requested() {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let path = path.clone();
                scope.spawn(move || {
                    let Ok(read_half) = stream.try_clone() else {
                        return;
                    };
                    self.serve_connection(BufReader::new(read_half), stream);
                    if self.shutdown_requested() {
                        if let Some(path) = path {
                            let _ = std::os::unix::net::UnixStream::connect(path);
                        }
                    }
                });
            }
        });
        Ok(())
    }

    /// Binds `endpoint` and serves it until shutdown, announcing the
    /// bound address on stderr (useful with `tcp:127.0.0.1:0`).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] when the endpoint cannot be bound (or is a
    /// Unix socket on a non-Unix platform).
    pub fn listen(&self, endpoint: &Endpoint) -> Result<(), ServeError> {
        match endpoint {
            Endpoint::Stdio => {
                let stdin = io::stdin();
                eprintln!(
                    "ddtr serve: listening on stdio (jobs={})",
                    self.session.jobs()
                );
                self.serve_connection(stdin.lock(), io::stdout());
                Ok(())
            }
            Endpoint::Tcp(addr) => {
                let listener = TcpListener::bind(addr.as_str())
                    .map_err(|e| ServeError(format!("bind tcp:{addr}: {e}")))?;
                eprintln!(
                    "ddtr serve: listening on tcp:{} (jobs={})",
                    listener.local_addr()?,
                    self.session.jobs()
                );
                self.serve_tcp(&listener)?;
                Ok(())
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                let listener = std::os::unix::net::UnixListener::bind(path)
                    .map_err(|e| ServeError(format!("bind unix:{}: {e}", path.display())))?;
                eprintln!(
                    "ddtr serve: listening on unix:{} (jobs={})",
                    path.display(),
                    self.session.jobs()
                );
                let served = self.serve_unix(&listener);
                let _ = std::fs::remove_file(path);
                served?;
                Ok(())
            }
            #[cfg(not(unix))]
            Endpoint::Unix(path) => Err(ServeError(format!(
                "unix:{} endpoints need a Unix platform",
                path.display()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_parse_and_display() {
        assert_eq!("stdio".parse::<Endpoint>().unwrap(), Endpoint::Stdio);
        assert_eq!(
            "tcp:127.0.0.1:7070".parse::<Endpoint>().unwrap(),
            Endpoint::Tcp("127.0.0.1:7070".into())
        );
        assert_eq!(
            "unix:/tmp/ddtr.sock".parse::<Endpoint>().unwrap(),
            Endpoint::Unix(PathBuf::from("/tmp/ddtr.sock"))
        );
        for raw in ["tcp:", "unix:", "carrier-pigeon:coop"] {
            assert!(raw.parse::<Endpoint>().is_err(), "{raw}");
        }
        assert_eq!(
            "tcp:127.0.0.1:7070"
                .parse::<Endpoint>()
                .unwrap()
                .to_string(),
            "tcp:127.0.0.1:7070"
        );
    }
}
