//! The resident exploration server: a hardened worker fleet.
//!
//! One [`Server`] owns N worker [`EngineSession`]s — each with its own
//! in-memory result cache and FIFO `--jobs` pool, all sharing one
//! on-disk pile store — and serves a bounded number of concurrent
//! connections, each speaking the JSONL protocol of [`crate::protocol`].
//! Every `Run` request resolves to an [`ddtr_core::ExploreRequest`],
//! routes deterministically to one worker by content fingerprint
//! ([`crate::route_worker`]), and executes on its own engine bound to
//! that worker's session — so identical requests always meet the same
//! warm cache, concurrent requests interleave fairly at simulation
//! granularity, and results stay byte-identical regardless of fleet
//! size or interleaving.
//!
//! The edge is hardened per `docs/PROTOCOL.md`: an optional auth token
//! checked at `Hello` before any engine work, a per-connection request
//! rate budget, a per-connection in-flight `Run` cap, a request-line
//! size ceiling, and a bounded connection gate in place of unbounded
//! thread-per-connection. Every limit violation is a structured
//! [`Event::Error`] with a machine-readable [`ErrorCode`]; none is a
//! panic.

use crate::endpoint::Endpoint;
use crate::fleet::{open_workers, route_worker, ServerConfig};
use crate::limits::{read_request_line, ConnGate, RateLimiter, RequestLine};
use crate::protocol::{
    ErrorCode, Event, Request, RequestBody, PROTOCOL_VERSION, SERVER_CAPABILITIES,
};
use ddtr_core::{dispatch_observed, CacheStats, ExploreError};
use ddtr_engine::{BatchControl, EngineConfig, EngineError, EngineSession};
use std::collections::HashMap;
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// A server-side failure (socket setup, worker/cache construction,
/// daemon plumbing) — everything that can go wrong before or around the
/// protocol, as a structured kind instead of a bare string.
#[derive(Debug)]
pub enum ServeError {
    /// Opening a worker's engine session (or its cache dir) failed.
    Engine(EngineError),
    /// The listen endpoint could not be bound.
    Bind {
        /// The endpoint that failed to bind.
        endpoint: String,
        /// The underlying socket error.
        source: io::Error,
    },
    /// A transport-level I/O failure outside any single connection.
    Io(io::Error),
    /// The endpoint kind does not exist on this platform.
    UnsupportedPlatform(String),
    /// The daemon pidfile could not be created.
    PidFile {
        /// The pidfile path that failed.
        path: std::path::PathBuf,
        /// The underlying filesystem error.
        source: io::Error,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Engine(e) => write!(f, "serve error: {e}"),
            ServeError::Bind { endpoint, source } => {
                write!(f, "serve error: bind {endpoint}: {source}")
            }
            ServeError::Io(e) => write!(f, "serve error: {e}"),
            ServeError::UnsupportedPlatform(what) => write!(f, "serve error: {what}"),
            ServeError::PidFile { path, source } => {
                write!(f, "serve error: pidfile {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Engine(e) => Some(e),
            ServeError::Bind { source, .. } | ServeError::PidFile { source, .. } => Some(source),
            ServeError::Io(e) => Some(e),
            ServeError::UnsupportedPlatform(_) => None,
        }
    }
}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> Self {
        ServeError::Engine(e)
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// Writes the daemonized server's pid to `path`, refusing to clobber an
/// existing file (a stale pidfile means an operator question, not a
/// silent overwrite).
///
/// # Errors
///
/// Returns [`ServeError::PidFile`] when the file exists or cannot be
/// created.
pub fn write_pidfile(path: &Path, pid: u32) -> Result<(), ServeError> {
    let fail = |source| ServeError::PidFile {
        path: path.to_path_buf(),
        source,
    };
    let mut file = std::fs::OpenOptions::new()
        .write(true)
        .create_new(true)
        .open(path)
        .map_err(fail)?;
    writeln!(file, "{pid}").map_err(fail)
}

/// The shared event writer of one connection: serialises events to one
/// line each and remembers when the peer stopped accepting them.
///
/// A failed write means nobody is reading the answers any more; the
/// failure is recorded (never propagated — the connection is being torn
/// down anyway) so in-flight work can notice and cancel itself instead
/// of simulating for a vanished client.
struct ConnWriter<W: Write> {
    inner: Mutex<W>,
    peer_gone: AtomicBool,
}

impl<W: Write> ConnWriter<W> {
    fn new(writer: W) -> Self {
        ConnWriter {
            inner: Mutex::new(writer),
            peer_gone: AtomicBool::new(false),
        }
    }

    /// Writes one event as one flushed line.
    fn emit(&self, event: &Event) {
        let Ok(line) = serde_json::to_string(event) else {
            return;
        };
        let mut w = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        // ddtr-lint: allow(lock-across-io) — this mutex exists to serialise
        // the write itself; it is never held while simulating, and a stalled
        // peer only stalls its own writer (one ConnWriter per connection).
        if writeln!(w, "{line}").and_then(|()| w.flush()).is_err() {
            self.peer_gone.store(true, Ordering::SeqCst);
        }
    }

    /// Emits a structured `Error` event carrying `code`, bumping the
    /// matching reject counter when one applies.
    fn emit_error(&self, id: Option<String>, code: ErrorCode, error: String) {
        if let Some(name) = reject_counter(code) {
            ddtr_obs::counter(name).inc();
        }
        self.emit(&Event::Error {
            id,
            error,
            code: Some(code),
        });
    }

    /// Whether a write to the peer has failed.
    fn peer_gone(&self) -> bool {
        self.peer_gone.load(Ordering::SeqCst)
    }
}

/// The variant counter a request increments (docs/OBSERVABILITY.md).
fn request_counter(body: &RequestBody) -> &'static str {
    match body {
        RequestBody::Hello { .. } => "serve.request.hello",
        RequestBody::Ping => "serve.request.ping",
        RequestBody::Stats => "serve.request.stats",
        RequestBody::Metrics => "serve.request.metrics",
        RequestBody::Run(_) => "serve.request.run",
        RequestBody::Cancel { .. } => "serve.request.cancel",
        RequestBody::Shutdown => "serve.request.shutdown",
    }
}

/// The edge-rejection counter a structured error bumps, when the code
/// marks an edge limit rather than a request-level failure
/// (docs/OBSERVABILITY.md).
fn reject_counter(code: ErrorCode) -> Option<&'static str> {
    match code {
        ErrorCode::AuthRequired | ErrorCode::AuthFailed => Some("serve.reject.auth"),
        ErrorCode::RateLimited => Some("serve.reject.rate"),
        ErrorCode::TooLarge => Some("serve.reject.oversize"),
        ErrorCode::Overloaded => Some("serve.reject.overload"),
        _ => None,
    }
}

/// Records one end-to-end request latency sample: receipt of the request
/// line to emission of its terminal event.
fn record_latency(arrived: std::time::Instant) {
    ddtr_obs::histogram("serve.request.latency").record_duration(arrived.elapsed());
}

/// The long-running exploration server: a fleet of worker sessions
/// behind one hardened listener. See the crate docs for the protocol,
/// [`ServerConfig`] for the knobs and [`EngineSession`] for each
/// worker's sharing/fairness model.
#[derive(Debug)]
pub struct Server {
    cfg: ServerConfig,
    /// Worker 0 — always present, also the compatibility session of
    /// [`Server::session`].
    session: EngineSession,
    /// Workers 1…N-1.
    extra: Vec<EngineSession>,
    /// Pre-rendered per-worker gauge names (`serve.worker<N>.inflight`),
    /// one allocation at startup instead of one per request.
    worker_gauges: Vec<String>,
    conns: ConnGate,
    shutdown: AtomicBool,
}

impl Server {
    /// Builds a single-worker, open (no auth, default limits) server —
    /// the pre-fleet constructor, kept for callers that just want a
    /// session behind the protocol.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] when the cache directory cannot be opened.
    pub fn new(cfg: EngineConfig) -> Result<Self, ServeError> {
        Self::with_config(ServerConfig::new(cfg))
    }

    /// Builds a fleet server: `cfg.workers` sessions over one shared
    /// store, plus the edge limits of [`ServerConfig`].
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] when a worker's cache directory cannot be
    /// opened.
    pub fn with_config(cfg: ServerConfig) -> Result<Self, ServeError> {
        let mut workers = open_workers(&cfg)?;
        // `open_workers` clamps to at least one; treat an empty vec as
        // the config asking for a single worker anyway.
        let session = match workers.is_empty() {
            false => workers.remove(0),
            true => EngineSession::new(cfg.engine.clone())?,
        };
        let worker_gauges = (0..=workers.len())
            .map(|i| format!("serve.worker{i}.inflight"))
            .collect();
        let conns = ConnGate::new(cfg.max_connections);
        Ok(Server {
            cfg,
            session,
            extra: workers,
            worker_gauges,
            conns,
            shutdown: AtomicBool::new(false),
        })
    }

    /// The server's primary (worker 0) engine session.
    #[must_use]
    pub fn session(&self) -> &EngineSession {
        &self.session
    }

    /// The server's configuration.
    #[must_use]
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// Worker sessions behind the listener.
    #[must_use]
    pub fn worker_count(&self) -> usize {
        1 + self.extra.len()
    }

    /// The worker a resolved request routes to (see
    /// [`crate::route_worker`]).
    #[must_use]
    pub fn route(&self, request: &ddtr_core::ExploreRequest) -> usize {
        route_worker(request, self.worker_count())
    }

    /// The session of worker `idx`; out-of-range indexes fall back to
    /// worker 0 (routing never produces one).
    fn worker(&self, idx: usize) -> &EngineSession {
        if idx == 0 {
            &self.session
        } else {
            self.extra.get(idx - 1).unwrap_or(&self.session)
        }
    }

    /// Cache counters summed across the fleet: every worker's in-memory
    /// view over the one shared store.
    #[must_use]
    pub fn fleet_stats(&self) -> CacheStats {
        let mut total = self.session.stats();
        for worker in &self.extra {
            let s = worker.stats();
            total.entries += s.entries;
            total.hits += s.hits;
            total.misses += s.misses;
            total.loaded = total.loaded.max(s.loaded);
        }
        total
    }

    /// Whether a `Shutdown` request has been received.
    #[must_use]
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Serves one connection until EOF or a `Shutdown` request: reads one
    /// JSON [`Request`] per line (bounded by the configured size
    /// ceiling), runs `Run` requests concurrently on their routed worker
    /// sessions, and streams [`Event`] lines (interleaved across
    /// requests, each tagged with its request id). Malformed lines get an
    /// `Error` event with a null id and do not end the connection; limit
    /// violations get coded `Error` events per `docs/PROTOCOL.md`. All
    /// in-flight work finishes (or is cancelled) before the final `Bye`.
    pub fn serve_connection<R, W>(&self, mut reader: R, writer: W)
    where
        R: BufRead,
        W: Write + Send + 'static,
    {
        let writer = Arc::new(ConnWriter::new(writer));
        ddtr_obs::gauge("serve.conn.active").inc();
        writer.emit(&Event::Hello {
            protocol: PROTOCOL_VERSION,
            server: format!("ddtr_serve {}", env!("CARGO_PKG_VERSION")),
            jobs: self.session.jobs(),
            capabilities: SERVER_CAPABILITIES.iter().map(|s| s.to_string()).collect(),
            workers: self.worker_count(),
        });
        // Connection state behind the hardened edge: authenticated yet
        // (immediately, on an open server), this connection's request
        // budget, and its count of in-flight `Run`s.
        let mut authed = self.cfg.auth_token.is_none();
        let rate = RateLimiter::new(self.cfg.rate_limit);
        let running = Arc::new(AtomicUsize::new(0));
        let inflight: Mutex<HashMap<String, BatchControl>> = Mutex::new(HashMap::new());
        std::thread::scope(|scope| {
            loop {
                let line = match read_request_line(&mut reader, self.cfg.max_request_bytes) {
                    Ok(RequestLine::Eof) | Err(_) => break,
                    Ok(RequestLine::TooLarge) => {
                        writer.emit_error(
                            None,
                            ErrorCode::TooLarge,
                            format!(
                                "request line exceeds the {}-byte ceiling and was discarded",
                                self.cfg.max_request_bytes
                            ),
                        );
                        continue;
                    }
                    Ok(RequestLine::NotUtf8) => {
                        ddtr_obs::counter("serve.request.malformed").inc();
                        writer.emit_error(
                            None,
                            ErrorCode::Parse,
                            "unparseable request: not valid UTF-8".into(),
                        );
                        continue;
                    }
                    Ok(RequestLine::Line(line)) => line,
                };
                if line.trim().is_empty() {
                    continue;
                }
                let request: Request = match serde_json::from_str(&line) {
                    Ok(request) => request,
                    Err(e) => {
                        ddtr_obs::counter("serve.request.malformed").inc();
                        writer.emit_error(
                            None,
                            ErrorCode::Parse,
                            format!("unparseable request: {e}"),
                        );
                        continue;
                    }
                };
                // Per-request accounting (docs/OBSERVABILITY.md): one
                // variant counter per request, an end-to-end latency
                // sample per terminal event.
                let arrived = std::time::Instant::now();
                ddtr_obs::counter(request_counter(&request.body)).inc();
                // The rate budget covers every request kind — the cheap
                // ones are exactly what a misbehaving client floods.
                if !rate.admit() {
                    writer.emit_error(
                        Some(request.id),
                        ErrorCode::RateLimited,
                        "request rate limit exceeded; back off and retry".into(),
                    );
                    record_latency(arrived);
                    continue;
                }
                // The auth gate: until the connection authenticates,
                // `Hello` is the only request that reaches any further —
                // nothing below costs engine work before this point.
                if !authed && !matches!(request.body, RequestBody::Hello { .. }) {
                    writer.emit_error(
                        Some(request.id),
                        ErrorCode::AuthRequired,
                        "authentication required: send Hello with the auth token first".into(),
                    );
                    record_latency(arrived);
                    continue;
                }
                match request.body {
                    RequestBody::Hello {
                        proto_version,
                        auth,
                        capabilities: _,
                    } => {
                        if proto_version != PROTOCOL_VERSION {
                            writer.emit_error(
                                Some(request.id),
                                ErrorCode::UnsupportedProtocol,
                                format!(
                                    "unsupported protocol version {proto_version} \
                                     (this server speaks {PROTOCOL_VERSION})"
                                ),
                            );
                            record_latency(arrived);
                            continue;
                        }
                        if let Some(expected) = &self.cfg.auth_token {
                            match auth.as_deref() {
                                Some(token) if token == expected.as_str() => {}
                                Some(_) => {
                                    // A wrong secret ends the
                                    // conversation; guessing is not
                                    // free retries on a live socket.
                                    writer.emit_error(
                                        Some(request.id),
                                        ErrorCode::AuthFailed,
                                        "auth token rejected".into(),
                                    );
                                    record_latency(arrived);
                                    break;
                                }
                                None => {
                                    writer.emit_error(
                                        Some(request.id),
                                        ErrorCode::AuthRequired,
                                        "this server requires an auth token".into(),
                                    );
                                    record_latency(arrived);
                                    continue;
                                }
                            }
                        }
                        authed = true;
                        writer.emit(&Event::Welcome {
                            id: request.id,
                            protocol: PROTOCOL_VERSION,
                            capabilities: SERVER_CAPABILITIES
                                .iter()
                                .map(|s| s.to_string())
                                .collect(),
                        });
                        record_latency(arrived);
                    }
                    RequestBody::Ping => {
                        writer.emit(&Event::Pong { id: request.id });
                        record_latency(arrived);
                    }
                    RequestBody::Stats => {
                        writer.emit(&Event::Stats {
                            id: request.id,
                            stats: self.fleet_stats(),
                            jobs: self.session.jobs(),
                            metrics: Box::new(ddtr_obs::snapshot()),
                        });
                        record_latency(arrived);
                    }
                    RequestBody::Metrics => {
                        writer.emit(&Event::Metrics {
                            id: request.id,
                            text: ddtr_obs::render_prometheus(&ddtr_obs::snapshot()),
                        });
                        record_latency(arrived);
                    }
                    RequestBody::Cancel { target } => {
                        let control = inflight
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .get(&target)
                            .cloned();
                        match control {
                            // The cancelled request replies `Cancelled`
                            // on its own id.
                            Some(control) => control.cancel(),
                            None => {
                                writer.emit_error(
                                    Some(request.id),
                                    ErrorCode::UnknownTarget,
                                    format!(
                                        "no in-flight request `{target}` (unknown or finished)"
                                    ),
                                );
                                record_latency(arrived);
                            }
                        }
                    }
                    RequestBody::Shutdown => {
                        self.shutdown.store(true, Ordering::SeqCst);
                        break;
                    }
                    RequestBody::Run(spec) => {
                        let id = request.id;
                        // A duplicate id would make the earlier request
                        // uncancellable and the event streams
                        // indistinguishable — reject it.
                        if inflight
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .contains_key(&id)
                        {
                            writer.emit_error(
                                Some(id),
                                ErrorCode::DuplicateId,
                                "a request with this id is already in flight".into(),
                            );
                            record_latency(arrived);
                            continue;
                        }
                        // The per-connection executor budget: reject
                        // rather than queue, so one connection cannot
                        // hoard every scoped thread.
                        if running.load(Ordering::SeqCst) >= self.cfg.max_inflight {
                            writer.emit_error(
                                Some(id),
                                ErrorCode::Overloaded,
                                format!(
                                    "connection already has {} runs in flight (the limit); \
                                     wait for one to finish",
                                    self.cfg.max_inflight
                                ),
                            );
                            record_latency(arrived);
                            continue;
                        }
                        let explore = match spec.resolve() {
                            Ok(explore) => explore,
                            Err(error) => {
                                writer.emit_error(Some(id), error.code(), error.to_string());
                                record_latency(arrived);
                                continue;
                            }
                        };
                        // Deterministic fleet placement: the resolved
                        // request's content fingerprint picks the worker,
                        // so identical work always meets the same warm
                        // in-memory cache.
                        let worker_idx = self.route(&explore);
                        let session = self.worker(worker_idx);
                        let worker_gauge = self.worker_gauges.get(worker_idx).map(String::as_str);
                        writer.emit(&Event::Queued { id: id.clone() });
                        // Progress observer: emits monotone `Running`
                        // lines, throttled to ~1% steps (plus every
                        // phase completion) so huge runs don't flood the
                        // wire; workers race between counting and
                        // reporting, so non-increasing snapshots are
                        // dropped. When the peer stops accepting events
                        // the observer cancels its own request — nobody
                        // is left to read the answer.
                        let progress_writer = Arc::clone(&writer);
                        let progress_id = id.clone();
                        let last_done = AtomicUsize::new(0);
                        let own_token: Arc<std::sync::OnceLock<ddtr_engine::CancelToken>> =
                            Arc::new(std::sync::OnceLock::new());
                        let observer_token = Arc::clone(&own_token);
                        let control = BatchControl::observed(move |p| {
                            let stride = (p.total / 100).max(1);
                            let prev = last_done.load(Ordering::SeqCst);
                            if p.done > 0
                                && (p.done == p.total || p.done >= prev + stride)
                                && last_done.fetch_max(p.done, Ordering::SeqCst) < p.done
                            {
                                progress_writer.emit(&Event::Running {
                                    id: progress_id.clone(),
                                    done: p.done,
                                    total: p.total,
                                });
                            }
                            if progress_writer.peer_gone() {
                                if let Some(token) = observer_token.get() {
                                    token.cancel();
                                }
                            }
                        });
                        let _ = own_token.set(control.token());
                        inflight
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .insert(id.clone(), control.clone());
                        let result_writer = Arc::clone(&writer);
                        let inflight = &inflight;
                        let running = Arc::clone(&running);
                        running.fetch_add(1, Ordering::SeqCst);
                        let queued_at = std::time::Instant::now();
                        ddtr_obs::gauge("serve.inflight").inc();
                        if let Some(gauge) = worker_gauge {
                            ddtr_obs::gauge(gauge).inc();
                        }
                        scope.spawn(move || {
                            ddtr_obs::histogram("serve.request.queue_wait")
                                .record_duration(queued_at.elapsed());
                            let mut engine = session.engine_with(control);
                            // Sweep requests additionally stream one
                            // `Cell` line per completed platform cell;
                            // every other mode never invokes the observer.
                            let cell_writer = Arc::clone(&result_writer);
                            let cell_id = id.clone();
                            let outcome =
                                dispatch_observed(&mut engine, &explore, |cell, done, total| {
                                    cell_writer.emit(&Event::Cell {
                                        id: cell_id.clone(),
                                        done,
                                        total,
                                        app: cell.app,
                                        scenario: cell.scenario,
                                        mem: cell.mem,
                                        front: cell.front_labels(),
                                    });
                                });
                            inflight
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner)
                                .remove(&id);
                            let progress = engine.control().progress();
                            let event = match outcome {
                                Ok(result) => Event::Result {
                                    id,
                                    executed: progress.executed,
                                    cache_hits: progress.hits,
                                    result: Box::new(result),
                                },
                                Err(ExploreError::Cancelled) => Event::Cancelled { id },
                                Err(e) => Event::Error {
                                    id: Some(id),
                                    error: e.to_string(),
                                    code: Some(ErrorCode::Internal),
                                },
                            };
                            result_writer.emit(&event);
                            running.fetch_sub(1, Ordering::SeqCst);
                            ddtr_obs::gauge("serve.inflight").dec();
                            if let Some(gauge) = worker_gauge {
                                ddtr_obs::gauge(gauge).dec();
                            }
                            record_latency(arrived);
                        });
                    }
                }
            }
            // Leaving the scope joins every in-flight request. Plain EOF
            // does NOT cancel them: in stdio batch mode (`printf … |
            // ddtr serve`) the answers are still wanted after stdin
            // closes. Abandoned work is caught by the observers above
            // the moment a progress write fails.
        });
        writer.emit(&Event::Bye);
        ddtr_obs::gauge("serve.conn.active").dec();
    }

    /// Greets and immediately turns away a connection the gate has no
    /// slot for: a coded `Overloaded` error and `Bye`, never silence, so
    /// the client can tell a full server from a dead one.
    fn reject_connection<W: Write>(&self, writer: W) {
        let writer = ConnWriter::new(writer);
        writer.emit_error(
            None,
            ErrorCode::Overloaded,
            format!(
                "server is at its {}-connection capacity; retry later",
                self.cfg.max_connections
            ),
        );
        writer.emit(&Event::Bye);
    }

    /// Accept loop over an already-bound TCP listener; each accepted
    /// connection takes one bounded connection slot and is served
    /// concurrently; connections beyond the gate's capacity are turned
    /// away with an `Overloaded` error. Returns after a `Shutdown`
    /// request once every open connection has finished.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the listener's local address cannot be
    /// resolved.
    pub fn serve_tcp(&self, listener: &TcpListener) -> io::Result<()> {
        let local = listener.local_addr()?;
        std::thread::scope(|scope| {
            for conn in listener.incoming() {
                if self.shutdown_requested() {
                    break;
                }
                let Ok(stream) = conn else { continue };
                // Event lines are small and latency-bound; never hold
                // them back for coalescing (Nagle + delayed ACK costs
                // tens of ms per request/reply round trip).
                let _ = stream.set_nodelay(true);
                let Some(slot) = self.conns.acquire() else {
                    self.reject_connection(stream);
                    continue;
                };
                scope.spawn(move || {
                    let _slot = slot;
                    let Ok(read_half) = stream.try_clone() else {
                        return;
                    };
                    self.serve_connection(BufReader::new(read_half), stream);
                    if self.shutdown_requested() {
                        // Unblock the accept loop so it can observe the
                        // flag and stop.
                        let _ = TcpStream::connect(local);
                    }
                });
            }
        });
        Ok(())
    }

    /// Accept loop over an already-bound Unix socket listener; the Unix
    /// counterpart of [`Server::serve_tcp`].
    #[cfg(unix)]
    pub fn serve_unix(&self, listener: &std::os::unix::net::UnixListener) -> io::Result<()> {
        let path = listener
            .local_addr()?
            .as_pathname()
            .map(std::path::Path::to_path_buf);
        std::thread::scope(|scope| {
            for conn in listener.incoming() {
                if self.shutdown_requested() {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let Some(slot) = self.conns.acquire() else {
                    self.reject_connection(stream);
                    continue;
                };
                let path = path.clone();
                scope.spawn(move || {
                    let _slot = slot;
                    let Ok(read_half) = stream.try_clone() else {
                        return;
                    };
                    self.serve_connection(BufReader::new(read_half), stream);
                    if self.shutdown_requested() {
                        if let Some(path) = path {
                            let _ = std::os::unix::net::UnixStream::connect(path);
                        }
                    }
                });
            }
        });
        Ok(())
    }

    /// Binds `endpoint` and serves it until shutdown, announcing the
    /// bound address on stderr (useful with `tcp:127.0.0.1:0`).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] when the endpoint cannot be bound (or is a
    /// Unix socket on a non-Unix platform).
    pub fn listen(&self, endpoint: &Endpoint) -> Result<(), ServeError> {
        let workers = self.worker_count();
        match endpoint {
            Endpoint::Stdio => {
                let stdin = io::stdin();
                eprintln!(
                    "ddtr serve: listening on stdio (workers={workers}, jobs={})",
                    self.session.jobs()
                );
                self.serve_connection(stdin.lock(), io::stdout());
                Ok(())
            }
            Endpoint::Tcp(addr) => {
                let listener = TcpListener::bind(addr.as_str()).map_err(|e| ServeError::Bind {
                    endpoint: format!("tcp:{addr}"),
                    source: e,
                })?;
                eprintln!(
                    "ddtr serve: listening on tcp:{} (workers={workers}, jobs={})",
                    listener.local_addr()?,
                    self.session.jobs()
                );
                self.serve_tcp(&listener)?;
                Ok(())
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                let listener =
                    std::os::unix::net::UnixListener::bind(path).map_err(|e| ServeError::Bind {
                        endpoint: format!("unix:{}", path.display()),
                        source: e,
                    })?;
                eprintln!(
                    "ddtr serve: listening on unix:{} (workers={workers}, jobs={})",
                    path.display(),
                    self.session.jobs()
                );
                let served = self.serve_unix(&listener);
                let _ = std::fs::remove_file(path);
                served?;
                Ok(())
            }
            #[cfg(not(unix))]
            Endpoint::Unix(path) => Err(ServeError::UnsupportedPlatform(format!(
                "unix:{} endpoints need a Unix platform",
                path.display()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_errors_display_their_kind() {
        let bind = ServeError::Bind {
            endpoint: "tcp:127.0.0.1:1".into(),
            source: io::Error::new(io::ErrorKind::AddrInUse, "in use"),
        };
        assert!(bind.to_string().contains("bind tcp:127.0.0.1:1"));
        assert!(std::error::Error::source(&bind).is_some());
        let io_err = ServeError::from(io::Error::other("boom"));
        assert!(io_err.to_string().starts_with("serve error:"));
        assert!(matches!(io_err, ServeError::Io(_)));
    }

    #[test]
    fn pidfile_refuses_to_clobber() {
        let dir = ddtr_engine::testing::TempCacheDir::new("pidfile");
        let path = dir.path().join("serve.pid");
        write_pidfile(&path, 4242).expect("first write");
        let text = std::fs::read_to_string(&path).expect("readable");
        assert_eq!(text.trim(), "4242");
        let err = write_pidfile(&path, 1).expect_err("second write refused");
        assert!(matches!(err, ServeError::PidFile { .. }), "{err}");
        assert!(err.to_string().contains("pidfile"), "{err}");
    }

    #[test]
    fn fleet_servers_open_and_route() {
        let cfg = ServerConfig {
            workers: 3,
            ..ServerConfig::new(EngineConfig::with_jobs(1))
        };
        let server = Server::with_config(cfg).expect("fleet opens");
        assert_eq!(server.worker_count(), 3);
        let request = crate::protocol::JobSpec {
            quick: true,
            ..crate::protocol::JobSpec::preset("explore", Some("drr"))
        }
        .resolve()
        .expect("resolves");
        let idx = server.route(&request);
        assert!(idx < 3);
        assert_eq!(idx, server.route(&request), "stable placement");
        let stats = server.fleet_stats();
        assert_eq!(stats.entries, 0, "fresh fleet");
        // Out-of-range worker lookups fall back to worker 0.
        assert_eq!(server.worker(9).jobs(), server.session().jobs());
    }
}
