//! The concurrent load-driving harness behind `ddtr loadtest` and the
//! `ddtr_bench` serve benchmarks.
//!
//! One [`run`] drives `clients` concurrent connections against a live
//! server, each performing the same scripted workload — handshake,
//! pings, preset explores — while recording per-operation latency and
//! counting every way the edge can push back (dropped connections,
//! protocol `Error` events). The aggregated [`LoadtestReport`] carries
//! nearest-rank p50/p99 in microseconds plus the engine counters that
//! prove cache warmth (a repeated run against the same fleet must
//! report `executed == 0`).
//!
//! The harness lives in `ddtr_serve` so the CLI subcommand, the
//! `serve_baseline` bench and the `loadtest` bench share one
//! implementation — and, being inside the serve boundary, it is held to
//! the same no-panic discipline as the server it exercises.

use crate::client::Client;
use crate::endpoint::Endpoint;
use crate::protocol::{Event, JobSpec, Request, RequestBody};
use serde::Serialize;
use std::time::{Duration, Instant};

/// What each simulated client does, and how the fleet is reached.
#[derive(Debug, Clone)]
pub struct LoadtestConfig {
    /// The server to drive (tcp:/unix: — stdio cannot be load-tested).
    pub endpoint: Endpoint,
    /// Concurrent client connections.
    pub clients: usize,
    /// `Ping` round trips per client.
    pub pings: usize,
    /// Preset explore requests per client.
    pub explores: usize,
    /// Run explores with the reduced `--quick` configuration.
    pub quick: bool,
    /// Apps cycled across clients (client *i* explores
    /// `apps[i % apps.len()]`); empty behaves like `["drr"]`.
    pub apps: Vec<String>,
    /// Auth token to present in the handshake.
    pub auth: Option<String>,
    /// Extra connect attempts per client before counting the connection
    /// as dropped.
    pub connect_retries: u32,
    /// Delay between connect attempts.
    pub retry_delay: Duration,
}

impl LoadtestConfig {
    /// The `serve_baseline` workload: 4 clients, 50 pings and 4 quick
    /// `drr` explores each, one connect retry.
    #[must_use]
    pub fn new(endpoint: Endpoint) -> Self {
        LoadtestConfig {
            endpoint,
            clients: 4,
            pings: 50,
            explores: 4,
            quick: true,
            apps: vec!["drr".to_string()],
            auth: None,
            connect_retries: 1,
            retry_delay: Duration::from_millis(50),
        }
    }
}

/// Latency summary of one operation kind, in whole microseconds
/// (nearest-rank percentiles over every recorded sample).
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct LatencyStats {
    /// Samples recorded.
    pub count: usize,
    /// 50th percentile (nearest rank).
    pub p50_us: u64,
    /// 99th percentile (nearest rank).
    pub p99_us: u64,
    /// Slowest sample.
    pub max_us: u64,
}

impl LatencyStats {
    /// Summarises a sample set (sorted internally).
    #[must_use]
    pub fn from_samples(mut samples: Vec<u64>) -> Self {
        samples.sort_unstable();
        LatencyStats {
            count: samples.len(),
            p50_us: percentile(&samples, 50),
            p99_us: percentile(&samples, 99),
            max_us: samples.last().copied().unwrap_or(0),
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted sample set (integer
/// arithmetic; 0 for an empty set).
#[must_use]
pub fn percentile(sorted: &[u64], pct: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (pct * sorted.len()).div_ceil(100).max(1);
    sorted.get(rank - 1).copied().unwrap_or(0)
}

/// The aggregated outcome of one [`run`].
#[derive(Debug, Clone, Serialize)]
pub struct LoadtestReport {
    /// Clients the run was configured with.
    pub clients: usize,
    /// Clients that completed their full workload.
    pub completed_clients: usize,
    /// Connections that failed to establish or died mid-workload.
    pub dropped_connections: usize,
    /// `Error` events received (any request, any client).
    pub protocol_errors: usize,
    /// Simulations the fleet executed for this run's explores.
    pub executed: usize,
    /// Simulations answered from the fleet's caches.
    pub cache_hits: usize,
    /// Ping round-trip latency.
    pub ping: LatencyStats,
    /// Explore end-to-end latency.
    pub explore: LatencyStats,
    /// Wall-clock time of the whole run, in milliseconds.
    pub wall_ms: u64,
}

impl LoadtestReport {
    /// Whether the run saw neither dropped connections nor protocol
    /// errors — the smoke-gate predicate.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.dropped_connections == 0 && self.protocol_errors == 0
    }
}

/// What one client brought home.
#[derive(Debug, Default)]
struct ClientOutcome {
    pings_us: Vec<u64>,
    explores_us: Vec<u64>,
    protocol_errors: usize,
    executed: usize,
    cache_hits: usize,
    completed: bool,
    dropped: bool,
}

/// Drives the configured workload and aggregates the report.
///
/// Every client failure mode is counted, never propagated — the report
/// is the result, even (especially) when the server pushed back.
#[must_use]
pub fn run(cfg: &LoadtestConfig) -> LoadtestReport {
    let started = Instant::now();
    let mut outcomes: Vec<ClientOutcome> = Vec::with_capacity(cfg.clients);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|i| scope.spawn(move || drive_client(cfg, i)))
            .collect();
        for handle in handles {
            outcomes.push(handle.join().unwrap_or_else(|_| ClientOutcome {
                dropped: true,
                ..ClientOutcome::default()
            }));
        }
    });
    let mut pings = Vec::new();
    let mut explores = Vec::new();
    let mut report = LoadtestReport {
        clients: cfg.clients,
        completed_clients: 0,
        dropped_connections: 0,
        protocol_errors: 0,
        executed: 0,
        cache_hits: 0,
        ping: LatencyStats::default(),
        explore: LatencyStats::default(),
        wall_ms: 0,
    };
    for outcome in outcomes {
        pings.extend_from_slice(&outcome.pings_us);
        explores.extend_from_slice(&outcome.explores_us);
        report.protocol_errors += outcome.protocol_errors;
        report.executed += outcome.executed;
        report.cache_hits += outcome.cache_hits;
        report.completed_clients += usize::from(outcome.completed);
        report.dropped_connections += usize::from(outcome.dropped);
    }
    report.ping = LatencyStats::from_samples(pings);
    report.explore = LatencyStats::from_samples(explores);
    report.wall_ms = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);
    report
}

/// One client's scripted workload.
fn drive_client(cfg: &LoadtestConfig, index: usize) -> ClientOutcome {
    let mut outcome = ClientOutcome::default();
    let mut builder =
        Client::builder(cfg.endpoint.clone()).retry_connect(cfg.connect_retries, cfg.retry_delay);
    if let Some(token) = &cfg.auth {
        builder = builder.auth_token(token.clone());
    }
    let mut client = match builder.connect() {
        Ok(client) => client,
        Err(_) => {
            outcome.dropped = true;
            return outcome;
        }
    };
    for p in 0..cfg.pings {
        let request = Request::new(format!("c{index}-ping{p}"), RequestBody::Ping);
        let begun = Instant::now();
        match client.call(&request, |_| {}) {
            Ok(Event::Pong { .. }) => outcome.pings_us.push(elapsed_us(begun)),
            Ok(Event::Error { .. }) => outcome.protocol_errors += 1,
            Ok(_) => outcome.protocol_errors += 1,
            Err(_) => {
                outcome.dropped = true;
                return outcome;
            }
        }
    }
    let app = cfg
        .apps
        .get(index % cfg.apps.len().max(1))
        .map_or("drr", String::as_str);
    for e in 0..cfg.explores {
        let spec = JobSpec {
            quick: cfg.quick,
            ..JobSpec::preset("explore", Some(app))
        };
        let request = Request::run(format!("c{index}-explore{e}"), spec);
        let begun = Instant::now();
        match client.call(&request, |_| {}) {
            Ok(Event::Result {
                executed,
                cache_hits,
                ..
            }) => {
                outcome.explores_us.push(elapsed_us(begun));
                outcome.executed += executed;
                outcome.cache_hits += cache_hits;
            }
            Ok(Event::Error { .. }) => outcome.protocol_errors += 1,
            Ok(_) => outcome.protocol_errors += 1,
            Err(_) => {
                outcome.dropped = true;
                return outcome;
            }
        }
    }
    outcome.completed = true;
    outcome
}

/// Elapsed whole microseconds since `begun`, saturating.
fn elapsed_us(begun: Instant) -> u64 {
    u64::try_from(begun.elapsed().as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_nearest_rank() {
        let samples: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&samples, 50), 50);
        assert_eq!(percentile(&samples, 99), 99);
        assert_eq!(percentile(&samples, 100), 100);
        assert_eq!(percentile(&[7], 99), 7);
        assert_eq!(percentile(&[], 50), 0);
        let stats = LatencyStats::from_samples(vec![30, 10, 20]);
        assert_eq!(stats.count, 3);
        assert_eq!(stats.p50_us, 20);
        assert_eq!(stats.max_us, 30);
    }

    #[test]
    fn reports_judge_cleanliness() {
        let clean = LoadtestReport {
            clients: 1,
            completed_clients: 1,
            dropped_connections: 0,
            protocol_errors: 0,
            executed: 0,
            cache_hits: 0,
            ping: LatencyStats::default(),
            explore: LatencyStats::default(),
            wall_ms: 1,
        };
        assert!(clean.clean());
        let dirty = LoadtestReport {
            protocol_errors: 1,
            ..clean.clone()
        };
        assert!(!dirty.clean());
    }
}
