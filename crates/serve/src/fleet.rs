//! The worker fleet: N shared-nothing [`EngineSession`]s behind one
//! listener, with requests routed by content fingerprint.
//!
//! Each worker owns its own in-memory result cache and FIFO jobs pool;
//! what they share is the on-disk pile store (every session appends its
//! own `O_EXCL` segment and reads everyone's — the PR 9 verified-on-read
//! discipline), so workers never contend on an in-process lock and a
//! result any worker persisted warms the whole fleet after a reopen.
//!
//! Routing is deterministic: a request's resolved [`ExploreRequest`] is
//! fingerprinted with the same FNV-1a-over-canonical-JSON family the
//! engine's `CacheKey` uses, and the fingerprint picks the worker.
//! Identical requests therefore always land on the same worker and hit
//! its warm in-memory cache — a repeated run executes zero simulations
//! without any cross-worker chatter.

use crate::server::ServeError;
use ddtr_core::ExploreRequest;
use ddtr_engine::{fingerprint_value, EngineConfig, EngineSession};

/// Everything a fleet [`crate::Server`] can be configured with beyond
/// the per-worker engine settings.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Per-worker engine configuration (jobs budget, cache directory).
    pub engine: EngineConfig,
    /// Worker sessions behind the listener; clamped to at least 1.
    pub workers: usize,
    /// Shared secret clients must present in a `Hello` request before
    /// anything else is served; `None` leaves the server open.
    pub auth_token: Option<String>,
    /// Concurrent connections accepted before new ones are rejected
    /// with an `Overloaded` error.
    pub max_connections: usize,
    /// Concurrent `Run` requests per connection before further ones are
    /// rejected with an `Overloaded` error.
    pub max_inflight: usize,
    /// Requests per second per connection; `None` disables rate
    /// limiting.
    pub rate_limit: Option<u32>,
    /// Longest accepted request line in bytes; longer lines are
    /// discarded unread and answered with a `TooLarge` error.
    pub max_request_bytes: usize,
}

impl ServerConfig {
    /// The defaults around an engine configuration: one worker, open
    /// auth, 1024 connection slots, 64 in-flight runs per connection, no
    /// rate limit, 4 MiB request lines.
    #[must_use]
    pub fn new(engine: EngineConfig) -> Self {
        ServerConfig {
            engine,
            workers: 1,
            auth_token: None,
            max_connections: 1024,
            max_inflight: 64,
            rate_limit: None,
            max_request_bytes: 4 * 1024 * 1024,
        }
    }
}

/// The deterministic request → worker routing function.
///
/// Exposed so tests (and operators debugging placement) can predict
/// where a request lands: the resolved request's content fingerprint —
/// the same canonical-JSON FNV-1a family as the engine's `CacheKey` —
/// modulo the worker count.
#[must_use]
pub fn route_worker(request: &ExploreRequest, workers: usize) -> usize {
    if workers <= 1 {
        return 0;
    }
    (fingerprint_value(request) % workers as u64) as usize
}

/// Opens the fleet's worker sessions, all over the same engine
/// configuration (and thus the same shared cache directory).
pub(crate) fn open_workers(cfg: &ServerConfig) -> Result<Vec<EngineSession>, ServeError> {
    let count = cfg.workers.max(1);
    let mut workers = Vec::with_capacity(count);
    for _ in 0..count {
        workers.push(EngineSession::new(cfg.engine.clone()).map_err(ServeError::Engine)?);
    }
    Ok(workers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::JobSpec;

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let a = JobSpec {
            quick: true,
            ..JobSpec::preset("explore", Some("drr"))
        }
        .resolve()
        .expect("resolves");
        let b = JobSpec {
            quick: true,
            ..JobSpec::preset("explore", Some("url"))
        }
        .resolve()
        .expect("resolves");
        for workers in [1, 2, 3, 8] {
            let wa = route_worker(&a, workers);
            assert_eq!(wa, route_worker(&a, workers), "stable");
            assert!(wa < workers, "in range");
            assert!(route_worker(&b, workers) < workers);
        }
        // A single-worker fleet routes everything to worker 0.
        assert_eq!(route_worker(&a, 1), 0);
        assert_eq!(route_worker(&b, 0), 0);
    }
}
