//! Where a server listens and a client connects, as one parseable,
//! printable value.
//!
//! The `--listen` flag of `ddtr serve`, the positional endpoint of
//! `ddtr query`/`ddtr loadtest` and [`crate::ClientBuilder`] all speak
//! the same three spellings: `stdio`, `tcp:<addr>` and `unix:<path>`.
//! [`Endpoint`] round-trips through [`std::str::FromStr`] /
//! [`std::fmt::Display`] losslessly, and parse failures are a structured
//! [`EndpointParseError`] instead of an ad-hoc string.

use std::fmt;
use std::path::PathBuf;
use std::str::FromStr;

/// Where a server listens or a client connects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// The process's stdin/stdout — one connection, the default of
    /// `ddtr serve`.
    Stdio,
    /// A TCP socket address (`tcp:127.0.0.1:7070`).
    Tcp(String),
    /// A Unix domain socket path (`unix:/tmp/ddtr.sock`); Unix platforms
    /// only.
    Unix(PathBuf),
}

/// Why a string failed to parse as an [`Endpoint`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EndpointParseError {
    /// The rejected input.
    pub input: String,
    /// What was wrong with it.
    pub kind: EndpointErrorKind,
}

/// The kinds of [`EndpointParseError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndpointErrorKind {
    /// `tcp:` with nothing after the scheme.
    EmptyTcpAddress,
    /// `unix:` with nothing after the scheme.
    EmptyUnixPath,
    /// No known scheme at all.
    UnknownScheme,
}

impl fmt::Display for EndpointParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            EndpointErrorKind::EmptyTcpAddress => write!(f, "tcp: endpoint needs an address"),
            EndpointErrorKind::EmptyUnixPath => write!(f, "unix: endpoint needs a path"),
            EndpointErrorKind::UnknownScheme => write!(
                f,
                "unknown endpoint `{}` (expected stdio, tcp:<addr> or unix:<path>)",
                self.input
            ),
        }
    }
}

impl std::error::Error for EndpointParseError {}

// The CLI's error channel is `Result<_, String>`; keep `endpoint.parse()?`
// working there without forcing every call site through `map_err`.
impl From<EndpointParseError> for String {
    fn from(e: EndpointParseError) -> Self {
        e.to_string()
    }
}

impl FromStr for Endpoint {
    type Err = EndpointParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let fail = |kind| EndpointParseError {
            input: s.to_string(),
            kind,
        };
        if s == "stdio" {
            return Ok(Endpoint::Stdio);
        }
        if let Some(addr) = s.strip_prefix("tcp:") {
            if addr.is_empty() {
                return Err(fail(EndpointErrorKind::EmptyTcpAddress));
            }
            return Ok(Endpoint::Tcp(addr.to_string()));
        }
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err(fail(EndpointErrorKind::EmptyUnixPath));
            }
            return Ok(Endpoint::Unix(PathBuf::from(path)));
        }
        Err(fail(EndpointErrorKind::UnknownScheme))
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Stdio => write!(f, "stdio"),
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_parse_and_display() {
        assert_eq!("stdio".parse::<Endpoint>().unwrap(), Endpoint::Stdio);
        assert_eq!(
            "tcp:127.0.0.1:7070".parse::<Endpoint>().unwrap(),
            Endpoint::Tcp("127.0.0.1:7070".into())
        );
        assert_eq!(
            "unix:/tmp/ddtr.sock".parse::<Endpoint>().unwrap(),
            Endpoint::Unix(PathBuf::from("/tmp/ddtr.sock"))
        );
        for (raw, kind) in [
            ("tcp:", EndpointErrorKind::EmptyTcpAddress),
            ("unix:", EndpointErrorKind::EmptyUnixPath),
            ("carrier-pigeon:coop", EndpointErrorKind::UnknownScheme),
        ] {
            let err = raw.parse::<Endpoint>().unwrap_err();
            assert_eq!(err.kind, kind, "{raw}");
            assert_eq!(err.input, raw);
        }
        assert!("carrier-pigeon:coop"
            .parse::<Endpoint>()
            .unwrap_err()
            .to_string()
            .contains("carrier-pigeon"));
        for raw in ["stdio", "tcp:127.0.0.1:7070", "unix:/tmp/ddtr.sock"] {
            let ep: Endpoint = raw.parse().unwrap();
            assert_eq!(ep.to_string(), raw, "lossless");
        }
    }
}
