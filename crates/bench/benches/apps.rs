//! Criterion benchmarks over the four applications: cost of processing a
//! trace under the SLL+SLL baseline versus a refined combination — the
//! host-side counterpart of the paper's 0.8-64 s per-simulation figure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddtr_apps::{AppKind, AppParams};
use ddtr_ddt::DdtKind;
use ddtr_mem::{MemoryConfig, MemorySystem};
use ddtr_trace::NetworkPreset;
use std::hint::black_box;
use std::time::Duration;

fn bench_apps(c: &mut Criterion) {
    let trace = NetworkPreset::DartmouthBerry.generate(150);
    let params = AppParams {
        route_table_size: 64,
        firewall_rules: 16,
        table_cap: 24,
        ..AppParams::default()
    };
    let combos: [(&str, [DdtKind; 2]); 2] = [
        ("baseline_sll", [DdtKind::Sll, DdtKind::Sll]),
        ("refined_ar_dll", [DdtKind::Array, DdtKind::Dll]),
    ];
    let mut group = c.benchmark_group("app_simulation_150pkt");
    for app in AppKind::ALL {
        for (label, combo) in combos {
            group.bench_with_input(
                BenchmarkId::new(app.to_string(), label),
                &combo,
                |b, &combo| {
                    b.iter(|| {
                        let mut mem = MemorySystem::new(MemoryConfig::default());
                        let mut instance = app.instantiate(combo, &params, &mut mem);
                        for pkt in &trace {
                            instance.process(pkt, &mut mem);
                        }
                        black_box(mem.report().accesses)
                    });
                },
            );
        }
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(700))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_apps
}
criterion_main!(benches);
