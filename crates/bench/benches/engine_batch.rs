//! Criterion benchmarks over the execution engine: one 25-unit batch
//! (quarter of the application-level space) evaluated cold at one worker,
//! cold at auto workers, and warm from the cache — the three regimes the
//! `--jobs`/`--cache-dir` flags expose.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddtr_apps::{AppKind, AppParams};
use ddtr_ddt::DdtKind;
use ddtr_engine::{combos_from, fingerprint_trace, ExploreEngine, SimUnit};
use ddtr_mem::MemoryConfig;
use ddtr_trace::NetworkPreset;
use std::hint::black_box;
use std::time::Duration;

fn bench_engine(c: &mut Criterion) {
    let trace = NetworkPreset::DartmouthBerry.generate(120);
    let trace_fp = fingerprint_trace(&trace);
    let params = AppParams::default();
    let combos = combos_from(&DdtKind::ALL);
    let units: Vec<SimUnit> = combos[..25]
        .iter()
        .map(|&combo| {
            SimUnit::with_fingerprint(
                AppKind::Drr,
                combo,
                &params,
                &trace,
                trace_fp,
                MemoryConfig::embedded_default(),
            )
        })
        .collect();

    let mut group = c.benchmark_group("engine_batch_25_units");
    for jobs in [1usize, 0] {
        group.bench_with_input(BenchmarkId::new("cold", jobs), &jobs, |b, &jobs| {
            b.iter(|| {
                let mut engine = ExploreEngine::with_jobs(jobs);
                black_box(engine.evaluate_batch(&units).len())
            });
        });
    }
    group.bench_function("warm", |b| {
        let mut engine = ExploreEngine::in_memory();
        engine.evaluate_batch(&units);
        b.iter(|| black_box(engine.evaluate_batch(&units).len()));
    });
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_engine
}
criterion_main!(benches);
