//! Criterion micro-benchmarks over the twelve DDT implementations (paper library + extensions): the raw
//! host-side cost of the modelled operations (insert, key search,
//! positional access, removal) — the per-simulation cost driver of the
//! exploration tool.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddtr_ddt::{Ddt, DdtKind, TestRecord};
use ddtr_mem::{MemoryConfig, MemorySystem};
use std::hint::black_box;
use std::time::Duration;

type Rec = TestRecord<32>;

const N: u64 = 64;

fn filled(kind: DdtKind) -> (MemorySystem, Box<dyn Ddt<Rec>>) {
    let mut mem = MemorySystem::new(MemoryConfig::default());
    let mut ddt = kind.instantiate::<Rec>(&mut mem);
    for i in 0..N {
        ddt.insert(Rec { id: i, tag: i }, &mut mem);
    }
    (mem, ddt)
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("insert_64");
    for kind in DdtKind::EXTENDED {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, &kind| {
            b.iter(|| {
                let mut mem = MemorySystem::new(MemoryConfig::default());
                let mut ddt = kind.instantiate::<Rec>(&mut mem);
                for i in 0..N {
                    ddt.insert(Rec { id: i, tag: i }, &mut mem);
                }
                black_box(mem.report().accesses)
            });
        });
    }
    group.finish();
}

fn bench_get(c: &mut Criterion) {
    let mut group = c.benchmark_group("key_search_64");
    for kind in DdtKind::EXTENDED {
        let (mut mem, mut ddt) = filled(kind);
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, _| {
            b.iter(|| {
                for i in 0..N {
                    black_box(ddt.get((i * 13) % N, &mut mem));
                }
            });
        });
    }
    group.finish();
}

fn bench_get_nth(c: &mut Criterion) {
    let mut group = c.benchmark_group("positional_scan_64");
    for kind in DdtKind::EXTENDED {
        let (mut mem, mut ddt) = filled(kind);
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, _| {
            b.iter(|| {
                for i in 0..N as usize {
                    black_box(ddt.get_nth(i, &mut mem));
                }
            });
        });
    }
    group.finish();
}

fn bench_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("remove_insert_churn");
    for kind in DdtKind::EXTENDED {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, &kind| {
            b.iter(|| {
                let (mut mem, mut ddt) = filled(kind);
                for i in 0..N {
                    ddt.remove(i, &mut mem);
                    ddt.insert(Rec { id: i + N, tag: 0 }, &mut mem);
                }
                black_box(ddt.len())
            });
        });
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(700))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_insert, bench_get, bench_get_nth, bench_churn
}
criterion_main!(benches);
