//! Criterion micro-benchmarks of the step-3 post-processing machinery —
//! the paper's Perl tool "processes the Gigabytes of the log files
//! produced by previous steps"; these measure the Rust counterpart's cost
//! per exploration-sized batch of 4-metric points.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddtr_pareto::{curve_2d, hypervolume, hypervolume_2d, pareto_front_indices, pareto_ranks};
use std::hint::black_box;
use std::time::Duration;

/// Deterministic pseudo-random 4-metric points shaped like exploration
/// logs (correlated, positive).
fn points(n: usize) -> Vec<[f64; 4]> {
    let mut state = 0x5EEDu64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % 10_000) as f64 / 100.0
    };
    (0..n)
        .map(|_| {
            let base = next();
            [
                base + next() * 0.3,
                base * 1.4 + next() * 0.2,
                base * 20.0 + next(),
                base * 8.0 + next() * 0.5,
            ]
        })
        .collect()
}

fn bench_front(c: &mut Criterion) {
    let mut group = c.benchmark_group("pareto_front");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(700));
    group.sample_size(10);
    for n in [100usize, 400, 1600] {
        let pts = points(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &pts, |b, pts| {
            b.iter(|| black_box(pareto_front_indices(black_box(pts))));
        });
    }
    group.finish();
}

fn bench_ranks(c: &mut Criterion) {
    let mut group = c.benchmark_group("pareto_ranks");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(700));
    group.sample_size(10);
    for n in [100usize, 400] {
        let pts = points(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &pts, |b, pts| {
            b.iter(|| black_box(pareto_ranks(black_box(pts))));
        });
    }
    group.finish();
}

fn bench_curves_and_volumes(c: &mut Criterion) {
    let mut group = c.benchmark_group("pareto_postprocess");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(700));
    group.sample_size(10);
    let pts = points(400);
    let reference4 = [120.0f64, 160.0, 2100.0, 850.0];
    group.bench_function("curve_2d_time_energy", |b| {
        b.iter(|| black_box(curve_2d(black_box(&pts), 0, 1)));
    });
    group.bench_function("hypervolume_2d", |b| {
        let te: Vec<[f64; 2]> = pts.iter().map(|p| [p[0], p[1]]).collect();
        b.iter(|| black_box(hypervolume_2d(black_box(&te), [120.0, 160.0])));
    });
    group.bench_function("hypervolume_4d", |b| {
        b.iter(|| black_box(hypervolume(black_box(&pts), &reference4)));
    });
    group.finish();
}

criterion_group!(benches, bench_front, bench_ranks, bench_curves_and_volumes);
criterion_main!(benches);
