//! Guards the observability overhead: a quick DRR explore with the
//! metrics/span layer recording must stay within 5% of the same explore
//! with recording disabled (`ddtr_obs::set_enabled(false)`).
//!
//! Both variants run `ROUNDS` times and the best (minimum) wall-clock of
//! each is compared — the minimum is the run least disturbed by the
//! host, which is what an overhead bound is about. A small absolute
//! floor keeps sub-millisecond jitter from failing the ratio on very
//! fast hosts. Exits non-zero when the bound is exceeded, so CI can run
//! it directly.
//!
//! Run with `cargo run -p ddtr_bench --bin obs_overhead --release`.

use ddtr_apps::AppKind;
use ddtr_core::{ExploreEngine, Methodology, MethodologyConfig};
use ddtr_engine::timing::time_secs;
use std::process::ExitCode;

/// Timed runs per variant; the minimum is compared.
const ROUNDS: usize = 5;

/// Allowed instrumented/disabled ratio.
const MAX_RATIO: f64 = 1.05;

/// Absolute slack (seconds) so scheduler jitter on a fast host cannot
/// fail the relative bound on its own.
const ABS_SLACK_SECS: f64 = 0.010;

/// Best-of-[`ROUNDS`] wall-clock of a quick DRR explore on one worker.
fn best_explore_secs() -> f64 {
    let cfg = MethodologyConfig::quick(AppKind::Drr);
    let mut best = f64::INFINITY;
    for _ in 0..ROUNDS {
        let mut engine = ExploreEngine::with_jobs(1);
        let (outcome, secs) = time_secs(|| {
            Methodology::new(cfg.clone())
                .run_with(&mut engine)
                .expect("exploration runs")
        });
        assert!(
            !outcome.pareto.global_front.is_empty(),
            "explore produces a front"
        );
        best = best.min(secs);
    }
    best
}

fn main() -> ExitCode {
    println!("# observability overhead guard\n");

    // Interleaving would let one variant warm caches for the other
    // asymmetrically; instead each variant gets its own contiguous
    // best-of-N block, with the disabled block first as the baseline.
    ddtr_obs::set_enabled(false);
    let disabled = best_explore_secs();
    ddtr_obs::set_enabled(true);
    let enabled = best_explore_secs();

    let ratio = enabled / disabled;
    let bound = (disabled * MAX_RATIO).max(disabled + ABS_SLACK_SECS);
    println!("disabled (baseline) : {disabled:8.4}s  (best of {ROUNDS})");
    println!("enabled             : {enabled:8.4}s  (best of {ROUNDS})");
    println!(
        "ratio               : {ratio:8.4}x  (bound {MAX_RATIO}x or +{:.0}ms)",
        ABS_SLACK_SECS * 1e3
    );
    if enabled <= bound {
        println!("\nOK: instrumentation overhead within bounds");
        ExitCode::SUCCESS
    } else {
        println!("\nFAIL: instrumented explore exceeds the overhead bound");
        ExitCode::FAILURE
    }
}
