//! Ablation — **cache replacement policy**: execution time and energy are
//! measured behind an L1 whose victim-selection hardware varies across
//! embedded platforms. This harness re-runs the exploration under LRU,
//! FIFO and pseudo-random replacement and reports front stability and the
//! cycle spread, validating that the methodology's rankings do not hinge
//! on one replacement policy.
//!
//! Run with `cargo run -p ddtr-bench --bin ablation_replacement --release`.

use ddtr_apps::{AppKind, AppParams};
use ddtr_core::{all_combos, combo_label};
use ddtr_mem::{CostReport, MemoryConfig, MemorySystem, ReplacementPolicy};
use ddtr_pareto::pareto_front_indices;
use ddtr_trace::NetworkPreset;
use std::collections::BTreeSet;

fn sweep(replacement: ReplacementPolicy) -> (BTreeSet<String>, f64, f64) {
    // A small 2-way L1 so the routing table overflows it and the victim
    // choice actually matters; the default 32 KiB L1 holds the whole
    // working set and masks the policy entirely.
    let mut mem_cfg = MemoryConfig::embedded_default();
    mem_cfg.l1.capacity_bytes = 2 * 1024;
    mem_cfg.l1.ways = 2;
    mem_cfg.l1.replacement = replacement;
    let params = AppParams::default();
    let trace = NetworkPreset::DartmouthBerry.generate(300);
    let mut labels = Vec::new();
    let mut reports: Vec<CostReport> = Vec::new();
    for combo in all_combos() {
        let mut mem = MemorySystem::new(mem_cfg);
        let mut app = AppKind::Route.instantiate(combo, &params, &mut mem);
        for pkt in &trace {
            app.process(pkt, &mut mem);
        }
        labels.push(combo_label(combo));
        reports.push(mem.report());
    }
    let points: Vec<[f64; 4]> = reports.iter().map(CostReport::as_array).collect();
    let front = pareto_front_indices(&points)
        .into_iter()
        .map(|i| labels[i].clone())
        .collect();
    let mean_cycles = reports.iter().map(|r| r.cycles as f64).sum::<f64>() / reports.len() as f64;
    let mean_energy = reports.iter().map(|r| r.energy_nj).sum::<f64>() / reports.len() as f64;
    (front, mean_cycles, mean_energy)
}

fn main() {
    println!("Ablation — exploration robustness vs L1 replacement policy (Route, BWY-I)\n");
    let (nominal, cy0, en0) = sweep(ReplacementPolicy::Lru);
    println!(
        "{:<8} front {:2} points, mean cycles {cy0:>12.0}, mean energy {:>10.0} nJ",
        "lru",
        nominal.len(),
        en0
    );
    for policy in [ReplacementPolicy::Fifo, ReplacementPolicy::Random] {
        let (front, cy, en) = sweep(policy);
        let stable = nominal.intersection(&front).count();
        println!(
            "{:<8} front {:2} points, mean cycles {cy:>12.0} ({:+.2}%), mean energy {en:>10.0} nJ ({:+.2}%), {stable}/{} of LRU front retained",
            policy.to_string(),
            front.len(),
            100.0 * (cy - cy0) / cy0,
            100.0 * (en - en0) / en0,
            nominal.len(),
        );
    }
    println!("\nShape check: replacement hardware shifts absolute cycles by a few");
    println!("percent but the Pareto membership — which DDT combination to pick —");
    println!("is stable across LRU, FIFO and random victim selection.");
}
