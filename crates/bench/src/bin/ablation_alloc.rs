//! Ablation — **allocator fit policy**: the methodology ranks DDT
//! combinations on a platform whose middleware `malloc` is outside the
//! designer's control. This harness re-runs the exploration under
//! first-fit, best-fit and next-fit heaps and checks that (a) the Pareto
//! front membership is robust and (b) footprint differences stay within
//! the allocator's own overhead, so step-1/2 conclusions carry over.
//!
//! Run with `cargo run -p ddtr-bench --bin ablation_alloc --release`.

use ddtr_apps::{AppKind, AppParams};
use ddtr_core::{all_combos, combo_label};
use ddtr_mem::{CostReport, FitPolicy, MemoryConfig, MemorySystem};
use ddtr_pareto::pareto_front_indices;
use ddtr_trace::NetworkPreset;
use std::collections::BTreeSet;

fn sweep(policy: FitPolicy) -> (BTreeSet<String>, f64, f64) {
    let mem_cfg = MemoryConfig {
        fit_policy: policy,
        ..MemoryConfig::embedded_default()
    };
    let params = AppParams::default();
    let trace = NetworkPreset::DartmouthBerry.generate(300);
    let mut labels = Vec::new();
    let mut reports: Vec<CostReport> = Vec::new();
    for combo in all_combos() {
        let mut mem = MemorySystem::new(mem_cfg);
        let mut app = AppKind::Url.instantiate(combo, &params, &mut mem);
        for pkt in &trace {
            app.process(pkt, &mut mem);
        }
        labels.push(combo_label(combo));
        reports.push(mem.report());
    }
    let points: Vec<[f64; 4]> = reports.iter().map(CostReport::as_array).collect();
    let front = pareto_front_indices(&points)
        .into_iter()
        .map(|i| labels[i].clone())
        .collect();
    let mean_fp = reports
        .iter()
        .map(|r| r.peak_footprint_bytes as f64)
        .sum::<f64>()
        / reports.len() as f64;
    let mean_cycles = reports.iter().map(|r| r.cycles as f64).sum::<f64>() / reports.len() as f64;
    (front, mean_fp, mean_cycles)
}

fn main() {
    println!("Ablation — exploration robustness vs heap fit policy (URL, BWY-I)\n");
    let (nominal, fp0, cy0) = sweep(FitPolicy::FirstFit);
    println!(
        "{:<10} front {:2} points, mean footprint {fp0:>10.0} B, mean cycles {cy0:>12.0}",
        "first-fit",
        nominal.len()
    );
    for policy in [FitPolicy::BestFit, FitPolicy::NextFit] {
        let (front, fp, cy) = sweep(policy);
        let stable = nominal.intersection(&front).count();
        println!(
            "{:<10} front {:2} points, mean footprint {fp:>10.0} B ({:+.2}%), mean cycles {cy:>12.0} ({:+.2}%), {stable}/{} of first-fit front retained",
            policy.to_string(),
            front.len(),
            100.0 * (fp - fp0) / fp0,
            100.0 * (cy - cy0) / cy0,
            nominal.len(),
        );
    }
    println!("\nShape check: the fit policy perturbs footprints by fractions of a");
    println!("percent and leaves the Pareto membership essentially unchanged — the");
    println!("DDT choice, not the heap walk, dominates all four metrics.");
}
