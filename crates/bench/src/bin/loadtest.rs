//! Fleet loadtest: hundreds of concurrent clients against a
//! multi-worker server, cold then warm, writing `BENCH_serve.json`.
//!
//! This is the bench-side twin of `ddtr loadtest`: same shared
//! [`ddtr_serve::loadtest`] harness, but it also *owns* the server, so
//! it can assert fleet-level invariants a black-box client cannot:
//!
//! * the run is clean — zero dropped connections, zero protocol errors —
//!   even at hundreds of concurrent clients through the bounded gate;
//! * a repeated warm pass reports `executed = 0`: deterministic
//!   fingerprint routing sent every repeat explore back to the worker
//!   whose in-memory cache already holds the answer.
//!
//! Rows record the worker count alongside client-side p50/p99 for both
//! passes. Run with
//! `cargo run -p ddtr_bench --bin loadtest --release`; override the
//! shape with `--workers N --clients N --pings N --explores N`.

use ddtr_core::EngineConfig;
use ddtr_engine::timing::BenchReport;
use ddtr_serve::loadtest::{run as run_loadtest, LoadtestConfig, LoadtestReport};
use ddtr_serve::{Client, Endpoint, Request, RequestBody, Server, ServerConfig};
use std::net::TcpListener;
use std::path::Path;

/// Parses `--flag N` from the bin's argument list.
fn arg_value(args: &[String], flag: &str) -> Option<usize> {
    let pos = args.iter().position(|a| a == flag)?;
    let raw = args
        .get(pos + 1)
        .unwrap_or_else(|| panic!("{flag} needs a value"));
    Some(
        raw.parse()
            .unwrap_or_else(|e| panic!("bad {flag} value `{raw}`: {e}")),
    )
}

/// One full pass of the shared workload; panics unless it was clean.
fn pass(name: &str, cfg: &LoadtestConfig) -> LoadtestReport {
    let report = run_loadtest(cfg);
    assert!(
        report.clean(),
        "{name} pass was not clean: {}/{} clients completed, {} dropped, {} protocol errors",
        report.completed_clients,
        report.clients,
        report.dropped_connections,
        report.protocol_errors
    );
    println!(
        "{name:5} pass: {} clients, executed={}, cache_hits={}, \
         ping p99 {}us, explore p99 {}us, wall {}ms",
        report.completed_clients,
        report.executed,
        report.cache_hits,
        report.ping.p99_us,
        report.explore.p99_us,
        report.wall_ms
    );
    report
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workers = arg_value(&args, "--workers").unwrap_or(2);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
    let endpoint: Endpoint = format!("tcp:{}", listener.local_addr().expect("local addr"))
        .parse()
        .expect("endpoint parses");

    let mut server_cfg = ServerConfig::new(EngineConfig {
        jobs: 2,
        cache_dir: None,
        no_cache: false,
    });
    server_cfg.workers = workers;
    let server = Server::with_config(server_cfg).expect("fleet server starts");

    let mut cfg = LoadtestConfig::new(endpoint.clone());
    cfg.clients = arg_value(&args, "--clients").unwrap_or(256);
    cfg.pings = arg_value(&args, "--pings").unwrap_or(4);
    cfg.explores = arg_value(&args, "--explores").unwrap_or(2);
    // A stampede of connects can outrun the accept loop; retrying is part
    // of the workload, a dropped connection is not.
    cfg.connect_retries = 20;

    println!("# fleet loadtest\n");
    println!(
        "{} workers, {} clients x ({} pings + {} quick DRR explores) against {endpoint}\n",
        server.worker_count(),
        cfg.clients,
        cfg.pings,
        cfg.explores
    );

    let mut passes = None;
    std::thread::scope(|scope| {
        let server = &server;
        scope.spawn(move || server.serve_tcp(&listener).expect("server serves"));
        let cold = pass("cold", &cfg);
        let warm = pass("warm", &cfg);
        passes = Some((cold, warm));
        let mut client = Client::connect(&endpoint).expect("shutdown client connects");
        client
            .send(&Request::new("bye", RequestBody::Shutdown))
            .expect("shutdown sent");
    });
    let (cold, warm) = passes.expect("both passes ran");

    assert!(
        cold.executed > 0,
        "cold pass executed nothing — workload misconfigured"
    );
    assert_eq!(
        warm.executed, 0,
        "warm pass re-executed work: fingerprint routing failed to pin \
         repeat requests to the worker holding the cached answer"
    );

    let mut report = BenchReport::new("serve fleet loadtest (multi-worker, cold + warm)");
    report.set_meta("units", "seconds");
    report.set_meta("workers", server.worker_count().to_string());
    report.set_meta("clients", cfg.clients.to_string());
    report.set_meta(
        "notes",
        "client-side nearest-rank percentiles; warm pass verified executed=0 via deterministic routing",
    );
    if let Ok(out) = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
    {
        if out.status.success() {
            report.set_meta("git_rev", String::from_utf8_lossy(&out.stdout).trim());
        }
    }
    for (pass_name, outcome) in [("cold", &cold), ("warm", &warm)] {
        for (kind, lat) in [
            ("ping", &outcome.ping),
            ("explore drr quick", &outcome.explore),
        ] {
            report.push(format!("{pass_name} {kind} p50"), lat.p50_us as f64 / 1e6);
            report.push(format!("{pass_name} {kind} p99"), lat.p99_us as f64 / 1e6);
        }
    }

    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    let json = report.to_json().expect("report serialises");
    std::fs::write(&path, format!("{json}\n")).expect("BENCH_serve.json is writable");
    println!(
        "\nwrote {} ({} samples, host parallelism {})",
        path.display(),
        report.samples.len(),
        report.host_parallelism
    );
}
