//! Ablation — **NSGA-II hyper-parameters**: the heuristic explorer should
//! not hinge on a lucky population size, mutation rate or seed. This
//! harness sweeps each knob on the DRR application and reports simulations
//! used and true-front recall per setting, averaged over seeds.
//!
//! Run with `cargo run -p ddtr-bench --bin ablation_ga --release`.

use ddtr_apps::{AppKind, AppParams};
use ddtr_core::{all_combos, combo_label, explore_heuristic, GaConfig, Simulator};
use ddtr_mem::MemoryConfig;
use ddtr_pareto::pareto_front_indices;
use ddtr_trace::NetworkPreset;
use std::collections::BTreeSet;

const APP: AppKind = AppKind::Drr;
const SEEDS: [u64; 5] = [1, 7, 42, 1234, 0xDD7];

fn true_front(packets: usize) -> BTreeSet<String> {
    let sim = Simulator::new(MemoryConfig::embedded_default());
    let trace = NetworkPreset::DartmouthBerry.generate(packets);
    let params = AppParams::default();
    let mut labels = Vec::new();
    let mut points = Vec::new();
    for combo in all_combos() {
        let log = sim.run(APP, combo, &params, &trace);
        labels.push(combo_label(combo));
        points.push(log.objectives());
    }
    pareto_front_indices(&points)
        .into_iter()
        .map(|i| labels[i].clone())
        .collect()
}

/// Mean (evaluations, recall) across seeds for one configuration tweak.
fn sweep(truth: &BTreeSet<String>, tweak: impl Fn(&mut GaConfig)) -> (f64, f64) {
    let mut evals = 0usize;
    let mut recall = 0usize;
    for seed in SEEDS {
        let mut cfg = GaConfig::paper(APP);
        cfg.seed = seed;
        tweak(&mut cfg);
        let outcome = explore_heuristic(&cfg).expect("ga runs");
        evals += outcome.evaluations;
        let found: BTreeSet<String> = outcome.front_labels().into_iter().collect();
        recall += truth.intersection(&found).count();
    }
    (
        evals as f64 / SEEDS.len() as f64,
        recall as f64 / (SEEDS.len() * truth.len()) as f64,
    )
}

fn main() {
    println!("Ablation — NSGA-II hyper-parameter robustness (DRR, 5 seeds each)\n");
    let truth = true_front(GaConfig::paper(APP).packets_per_sim);
    println!("true front: {} members\n", truth.len());
    println!("{:<26} {:>10} {:>9}", "setting", "mean sims", "recall");

    let (e, r) = sweep(&truth, |_| {});
    println!(
        "{:<26} {e:>10.1} {:>8.0}%",
        "defaults (pop 16, mut .15)",
        r * 100.0
    );

    for pop in [8usize, 24] {
        let (e, r) = sweep(&truth, |c| c.population = pop);
        println!(
            "{:<26} {e:>10.1} {:>8.0}%",
            format!("population {pop}"),
            r * 100.0
        );
    }
    for mutation in [0.05f64, 0.30] {
        let (e, r) = sweep(&truth, |c| c.mutation_rate = mutation);
        println!(
            "{:<26} {e:>10.1} {:>8.0}%",
            format!("mutation {mutation}"),
            r * 100.0
        );
    }
    let (e, r) = sweep(&truth, |c| c.crossover_rate = 0.5);
    println!("{:<26} {e:>10.1} {:>8.0}%", "crossover 0.5", r * 100.0);
    let (e, r) = sweep(&truth, |c| c.stall_generations = Some(2));
    println!(
        "{:<26} {e:>10.1} {:>8.0}%",
        "early stop (stall 2)",
        r * 100.0
    );

    println!("\nShape check: recall scales smoothly with the simulation budget");
    println!("(population and mutation buy recall roughly linearly in extra");
    println!("simulations) and degrades gracefully — no knob setting collapses the");
    println!("search, and the early stop trades a bounded recall loss for fewer");
    println!("simulations. The default sits at the knee of the cost/recall curve.");
}
