//! Extension — **heuristic exploration**: NSGA-II over DDT combination
//! genomes versus the paper's exhaustive step 1, measured on all four
//! NetBench applications. Exhaustive search is tractable at `10^2`
//! combinations but not beyond (more dominant containers, bigger
//! libraries); the GA recovers most of the true Pareto front from a
//! fraction of the simulations.
//!
//! Reported per application: simulations used, fraction of the true front
//! recovered, and the time–energy hypervolume ratio against the true
//! front.
//!
//! Run with `cargo run -p ddtr-bench --bin heuristic --release`.

use ddtr_apps::{AppKind, AppParams};
use ddtr_core::{all_combos, combo_label, explore_heuristic, GaConfig, Simulator};
use ddtr_mem::MemoryConfig;
use ddtr_pareto::{hypervolume, hypervolume_2d, pareto_front_indices};
use ddtr_trace::NetworkPreset;
use std::collections::BTreeSet;

/// Exhaustive reference: all 100 combos on the same configuration the GA
/// evaluates, returning (front labels, all 4-metric points).
fn exhaustive_front(app: AppKind, cfg: &GaConfig) -> (BTreeSet<String>, Vec<[f64; 4]>) {
    let sim = Simulator::new(MemoryConfig::embedded_default());
    let trace = NetworkPreset::DartmouthBerry.generate(cfg.packets_per_sim);
    let params = AppParams::default();
    let mut labels = Vec::new();
    let mut points4 = Vec::new();
    for combo in all_combos() {
        let log = sim.run(app, combo, &params, &trace);
        labels.push(combo_label(combo));
        points4.push(log.objectives());
    }
    let front = pareto_front_indices(&points4)
        .into_iter()
        .map(|i| labels[i].clone())
        .collect();
    (front, points4)
}

fn main() {
    println!("Extension — NSGA-II heuristic exploration vs exhaustive step 1");
    println!("(reference network BWY-I, paper-sized traces)\n");
    println!(
        "{:<10} {:>6} {:>6} {:>9} {:>10} {:>9} {:>9}",
        "app", "sims", "of", "recall", "front", "hv2 rel", "hv4 rel"
    );
    for app in AppKind::ALL {
        let ga_cfg = GaConfig::paper(app);
        let outcome = explore_heuristic(&ga_cfg).expect("heuristic run");
        let (true_front, points4) = exhaustive_front(app, &ga_cfg);

        let ga_front: BTreeSet<String> = outcome.front_labels().into_iter().collect();
        let recovered = true_front.intersection(&ga_front).count();

        // Hypervolume ratios: the time-energy plane (the paper's Fig. 3/4
        // plane) and the exact 4-objective volume. Reference = worst
        // observed point per metric, scaled out slightly.
        let reference = points4.iter().fold([0.0f64; 4], |acc, p| {
            std::array::from_fn(|d| acc[d].max(p[d] * 1.01))
        });
        let ga_points: Vec<[f64; 4]> = outcome.front.iter().map(|l| l.objectives()).collect();

        let te = |pts: &[[f64; 4]]| -> Vec<[f64; 2]> { pts.iter().map(|p| [p[0], p[1]]).collect() };
        let hv2 = hypervolume_2d(&te(&ga_points), [reference[0], reference[1]])
            / hypervolume_2d(&te(&points4), [reference[0], reference[1]]);
        let hv4 = hypervolume(&ga_points, &reference) / hypervolume(&points4, &reference);

        println!(
            "{:<10} {:>6} {:>6} {:>8}/{:<2} {:>8} {:>8.3} {:>8.3}",
            app.to_string(),
            outcome.evaluations,
            100,
            recovered,
            true_front.len(),
            outcome.front.len(),
            hv2,
            hv4,
        );
    }
    println!("\nShape check: the heuristic reaches >0.95 of the exhaustive");
    println!("time-energy hypervolume (and most of the full 4-objective volume)");
    println!("from roughly a third of the simulations — the methodology scales");
    println!("past the exhaustively tractable design space.");
}
