//! Regenerates **Table 2** of the paper: "Trade-offs achieved among
//! Pareto-optimal points".
//!
//! Run with `cargo run -p ddtr-bench --bin table2 --release`.

use ddtr_apps::AppKind;
use ddtr_bench::{paper_outcome, vs_paper, PAPER_TABLE2};
use ddtr_core::tradeoff_percentages;

fn main() {
    println!("Table 2 — Trade-offs among Pareto-optimal points (measured vs paper)\n");
    println!(
        "| {:14} | {:>16} | {:>16} | {:>16} | {:>16} |",
        "Application", "Energy", "Exec. Time", "Mem. Accesses", "Mem. Footprint"
    );
    println!(
        "|{}|{}|{}|{}|{}|",
        "-".repeat(16),
        "-".repeat(18),
        "-".repeat(18),
        "-".repeat(18),
        "-".repeat(18)
    );
    for (i, app) in AppKind::ALL.iter().enumerate() {
        let outcome = paper_outcome(*app).expect("paper exploration runs");
        let [e, t, a, f] = tradeoff_percentages(&outcome);
        let (_, pe, pt, pa, pf) = PAPER_TABLE2[i];
        println!(
            "| {:14} | {:>16} | {:>16} | {:>16} | {:>16} |",
            format!("{}. {app}", i + 1),
            vs_paper(format!("{e}%"), format!("{pe}%")),
            vs_paper(format!("{t}%"), format!("{pt}%")),
            vs_paper(format!("{a}%"), format!("{pa}%")),
            vs_paper(format!("{f}%"), format!("{pf}%")),
        );
    }
    println!("\nShape check: every metric offers a substantial (tens of percent)");
    println!("spread along the front, so the designer has real trade-offs to");
    println!("choose from in all four dimensions, as in the paper.");
}
