//! Regenerates **Figure 4** of the paper: Route Pareto charts —
//! (a) time–energy curves for radix size 128 across seven networks,
//! (b) the radix-256 curve on the Berry trace (`BWY I`) with the
//! highlighted balanced point, and (c) the accesses–footprint chart for
//! the same configuration, plus the §4 "factors versus non-Pareto points"
//! comparison.
//!
//! Run with `cargo run -p ddtr-bench --bin fig4 --release`.

use ddtr_apps::{AppKind, AppParams};
use ddtr_bench::paper_outcome;
use ddtr_core::{
    all_combos, explore_network_level, render_pareto_chart, ConfigKey, MethodologyConfig,
    ParetoChartPlane, SimLog,
};
use ddtr_pareto::curve_2d;
use ddtr_trace::NetworkPreset;

fn main() {
    let outcome = paper_outcome(AppKind::Route).expect("paper exploration runs");

    println!("Figure 4a — Route time-energy Pareto curves, radix 128, 7 networks\n");
    for front in &outcome.pareto.per_config {
        if front.config_key.params != "radix128" {
            continue;
        }
        println!("network {}:", front.config_key);
        let mut pts: Vec<(&str, f64, f64)> = front
            .front
            .iter()
            .map(|p| (p.combo.as_str(), p.report.cycles as f64, p.report.energy_nj))
            .collect();
        pts.sort_by(|a, b| a.1.total_cmp(&b.1));
        for (combo, t, e) in pts {
            println!("  {combo:20} time {t:>9.0} cycles   energy {e:>10.1} nJ");
        }
    }

    // Figures 4b/4c and the factor comparison span the FULL 100-combo
    // space on the Berry radix-256 configuration: the paper compares the
    // Pareto curve against the points off it, which step 1 pruned away.
    let bwy_key = ConfigKey::new("BWY-I", "radix256");
    let mut bwy_cfg = MethodologyConfig::paper(AppKind::Route);
    bwy_cfg.networks = vec![NetworkPreset::DartmouthBerry];
    bwy_cfg.param_variants = AppParams::variants_for(AppKind::Route)
        .into_iter()
        .filter(|p| p.route_table_size == 256)
        .collect();
    let full = explore_network_level(&bwy_cfg, &all_combos()).expect("full sweep runs");
    let logs: Vec<&SimLog> = full.logs_for(&bwy_key);
    println!("\nFigure 4b — time-energy space, radix 256, Berry trace ({bwy_key})\n");
    print!(
        "{}",
        render_pareto_chart(&logs, ParetoChartPlane::TimeEnergy)
    );

    // The paper highlights a balanced Pareto point (AR + DLL in their run):
    // pick the front point minimising the normalised energy+time sum.
    let points: Vec<[f64; 4]> = logs.iter().map(|l| l.objectives()).collect();
    let te: Vec<[f64; 2]> = points.iter().map(|p| [p[1], p[0]]).collect();
    let front = curve_2d(&te, 0, 1);
    let (max_t, max_e) = te
        .iter()
        .fold((f64::MIN, f64::MIN), |(t, e), p| (t.max(p[0]), e.max(p[1])));
    let balanced = front
        .iter()
        .copied()
        .min_by(|&a, &b| {
            let score = |i: usize| te[i][0] / max_t + te[i][1] / max_e;
            score(a).total_cmp(&score(b))
        })
        .expect("front is non-empty");
    println!("\nhighlighted balanced Pareto point (paper run: AR+DLL):");
    println!("  {:20} {}", logs[balanced].combo, logs[balanced].report);

    println!("\nFigure 4c — accesses vs footprint, radix 256, Berry trace\n");
    print!(
        "{}",
        render_pareto_chart(&logs, ParetoChartPlane::AccessesFootprint)
    );

    // §4: "a reduction in memory accesses up to a factor of 8, for memory
    // footprint up to a factor of 12, for dissipated energy up to a factor
    // of 11 and for execution time up to a factor of 2" versus points off
    // the Pareto-optimal curve.
    let front4 = ddtr_pareto::pareto_front_indices(&points);
    let metric_factor = |dim: usize| -> f64 {
        let best_front = front4
            .iter()
            .map(|&i| points[i][dim])
            .fold(f64::INFINITY, f64::min);
        let worst_any = points.iter().map(|p| p[dim]).fold(f64::MIN, f64::max);
        worst_any / best_front
    };
    println!("\nfactors: worst non-Pareto point vs best Pareto point ({bwy_key})");
    println!(
        "  energy    x{:>5.1}   (paper: up to x11)",
        metric_factor(0)
    );
    println!("  time      x{:>5.1}   (paper: up to x2)", metric_factor(1));
    println!("  accesses  x{:>5.1}   (paper: up to x8)", metric_factor(2));
    println!(
        "  footprint x{:>5.1}   (paper: up to x12)",
        metric_factor(3)
    );
}
