//! Ablation — **traffic burstiness**: real campus traces deliver packets
//! in same-flow trains, not smooth Poisson streams. Packet trains repeat
//! lookups of one key, which is precisely what the roving-pointer DDTs
//! (`SLL(O)`, `DLL(O)`, …) are built for — so the optimal DDT choice should
//! *change* with the traffic shape. This is the paper's core argument for
//! step 2 (network-level exploration), demonstrated on the burst axis.
//!
//! Run with `cargo run -p ddtr-bench --bin ablation_burst --release`.

use ddtr_apps::{AppKind, AppParams};
use ddtr_core::{all_combos, combo_label, Simulator};
use ddtr_mem::MemoryConfig;
use ddtr_pareto::pareto_front_indices;
use ddtr_trace::{BurstProfile, TraceGenerator, TraceSpec};
use std::collections::BTreeSet;

fn spec(burst: Option<BurstProfile>) -> TraceSpec {
    let mut s = TraceSpec::builder("burst-sweep")
        .nodes(64)
        .flows(96)
        .flow_skew(0.9)
        .seed(0xB0057)
        .build();
    s.burstiness = burst;
    s
}

/// Front labels and mean roving-pointer benefit for one traffic shape.
fn sweep(burst: Option<BurstProfile>) -> (BTreeSet<String>, f64) {
    let sim = Simulator::new(MemoryConfig::embedded_default());
    let trace = TraceGenerator::new(spec(burst)).generate(400);
    let params = AppParams::default();
    let mut labels = Vec::new();
    let mut points = Vec::new();
    for combo in all_combos() {
        let log = sim.run(AppKind::Url, combo, &params, &trace);
        labels.push(combo_label(combo));
        points.push(log.objectives());
    }
    let front: BTreeSet<String> = pareto_front_indices(&points)
        .into_iter()
        .map(|i| labels[i].clone())
        .collect();
    // Mean access advantage of SLL(O)+SLL(O) over SLL+SLL: the roving
    // pointer pays off exactly when lookups repeat.
    let accesses = |label: &str| {
        labels
            .iter()
            .position(|l| l == label)
            .map(|i| points[i][2])
            .expect("combo simulated")
    };
    let roving_gain = 1.0 - accesses("SLL(O)+SLL(O)") / accesses("SLL+SLL");
    (front, roving_gain)
}

fn main() {
    println!("Ablation — DDT choice vs traffic burstiness (URL, 100 combos each)\n");
    let (smooth_front, smooth_gain) = sweep(None);
    println!(
        "smooth poisson    front {:2} points, roving-pointer access gain {:+.1}%",
        smooth_front.len(),
        smooth_gain * 100.0
    );
    for trains in [4.0, 8.0, 16.0] {
        let (front, gain) = sweep(Some(BurstProfile {
            mean_burst_pkts: trains,
            off_gap_factor: 20.0,
            locality: 0.9,
        }));
        let stable = smooth_front.intersection(&front).count();
        println!(
            "trains of ~{trains:>4.0}    front {:2} points, roving-pointer access gain {:+.1}%, {stable}/{} of smooth front retained",
            front.len(),
            gain * 100.0,
            smooth_front.len(),
        );
    }
    println!("\nShape check: the roving-pointer benefit grows with train length and");
    println!("the Pareto membership shifts with the traffic shape — the reason the");
    println!("methodology explores per network configuration (step 2).");
}
