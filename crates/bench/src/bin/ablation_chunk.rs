//! Ablation — **chunk capacity**: sweep the records-per-chunk capacity of
//! the chunked (unrolled) list DDTs and report the traversal-cost versus
//! slack-footprint trade-off (`DESIGN.md` §5.6).
//!
//! Run with `cargo run -p ddtr-bench --bin ablation_chunk --release`.

use ddtr_ddt::{ChunkedDdt, Ddt, TestRecord};
use ddtr_mem::{MemoryConfig, MemorySystem};

type Rec = TestRecord<48>;

fn main() {
    println!("Ablation — chunk capacity sweep (SLL(AR), 200 records)\n");
    println!(
        "{:>9} | {:>14} | {:>14} | {:>14} | {:>12}",
        "capacity", "seq accesses", "rand accesses", "search acc.", "footprint B"
    );
    for capacity in [2usize, 4, 8, 16, 32, 64] {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut list = ChunkedDdt::<Rec>::with_chunk_capacity(&mut mem, false, false, capacity);
        for i in 0..200 {
            list.insert(Rec { id: i, tag: i }, &mut mem);
        }
        let cost = |mem: &mut MemorySystem, f: &mut dyn FnMut(&mut MemorySystem)| {
            let before = mem.stats().accesses();
            f(mem);
            mem.stats().accesses() - before
        };
        let seq = cost(&mut mem, &mut |m| {
            for i in 0..200 {
                list.get_nth(i, m);
            }
        });
        let rand = cost(&mut mem, &mut |m| {
            let mut idx = 7usize;
            for _ in 0..200 {
                idx = (idx * 73 + 11) % 200;
                list.get_nth(idx, m);
            }
        });
        let search = cost(&mut mem, &mut |m| {
            for i in 0..200 {
                list.get((i * 37) % 200, m);
            }
        });
        println!(
            "{capacity:>9} | {seq:>14} | {rand:>14} | {search:>14} | {:>12}",
            list.footprint_bytes()
        );
    }
    println!("\nShape check: larger chunks cut positional-walk accesses (fewer");
    println!("header hops) and amortise per-chunk headers, but key searches");
    println!("barely improve (probes dominate) and the last chunk's slack slots");
    println!("grow with capacity; the library default of 8 keeps the walk cheap");
    println!("without committing kilobytes of slack per container.");
}
