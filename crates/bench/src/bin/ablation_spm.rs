//! Ablation — **scratchpad descriptor placement**: the related work the
//! paper cites ([Kandemir DAC'01], [Steinke DATE'02], [Verma
//! CODES+ISSS'04]) moves hot objects into a software-managed scratchpad.
//! This harness places the DDT descriptors — the hottest dynamic objects
//! of every container — into a 4 KiB SPM and quantifies the cycle/energy
//! gain per DDT kind, checking that SPM placement is complementary to
//! (not a substitute for) DDT refinement: the ranking of combinations is
//! preserved while every combination gets uniformly cheaper.
//!
//! Run with `cargo run -p ddtr-bench --bin ablation_spm --release`.

use ddtr_apps::{AppKind, AppParams};
use ddtr_core::{all_combos, combo_label};
use ddtr_mem::{CostReport, MemoryConfig, MemorySystem};
use ddtr_pareto::pareto_front_indices;
use ddtr_trace::NetworkPreset;
use std::collections::BTreeSet;

fn sweep(spm: bool) -> (BTreeSet<String>, Vec<(String, CostReport)>) {
    let mem_cfg = if spm {
        MemoryConfig::with_spm()
    } else {
        MemoryConfig::embedded_default()
    };
    let params = AppParams::default();
    let trace = NetworkPreset::DartmouthBerry.generate(300);
    let mut rows = Vec::new();
    for combo in all_combos() {
        let mut mem = MemorySystem::new(mem_cfg);
        let mut app = AppKind::Drr.instantiate(combo, &params, &mut mem);
        for pkt in &trace {
            app.process(pkt, &mut mem);
        }
        rows.push((combo_label(combo), mem.report()));
    }
    let points: Vec<[f64; 4]> = rows.iter().map(|(_, r)| r.as_array()).collect();
    let front = pareto_front_indices(&points)
        .into_iter()
        .map(|i| rows[i].0.clone())
        .collect();
    (front, rows)
}

fn main() {
    println!("Ablation — scratchpad placement of DDT descriptors (DRR, BWY-I)\n");
    let (front_off, rows_off) = sweep(false);
    let (front_on, rows_on) = sweep(true);

    let mean = |rows: &[(String, CostReport)], f: fn(&CostReport) -> f64| {
        rows.iter().map(|(_, r)| f(r)).sum::<f64>() / rows.len() as f64
    };
    let cy_off = mean(&rows_off, |r| r.cycles as f64);
    let cy_on = mean(&rows_on, |r| r.cycles as f64);
    let en_off = mean(&rows_off, |r| r.energy_nj);
    let en_on = mean(&rows_on, |r| r.energy_nj);

    println!("mean cycles  without SPM {cy_off:>14.0}");
    println!(
        "mean cycles  with    SPM {cy_on:>14.0}  ({:+.2}%)",
        100.0 * (cy_on - cy_off) / cy_off
    );
    println!("mean energy  without SPM {en_off:>14.0} nJ");
    println!(
        "mean energy  with    SPM {en_on:>14.0} nJ ({:+.2}%)",
        100.0 * (en_on - en_off) / en_off
    );

    let stable = front_off.intersection(&front_on).count();
    println!(
        "\nPareto front: {} points without SPM, {} with, {stable}/{} retained",
        front_off.len(),
        front_on.len(),
        front_off.len()
    );

    // Per-combination gain spread: descriptor-heavy structures (linked
    // lists touch the head pointer on every walk) benefit the most.
    let mut best: Option<(f64, &str)> = None;
    let mut worst: Option<(f64, &str)> = None;
    for ((label, off), (_, on)) in rows_off.iter().zip(rows_on.iter()) {
        let gain = 100.0 * (off.cycles as f64 - on.cycles as f64) / off.cycles as f64;
        if best.is_none_or(|(g, _)| gain > g) {
            best = Some((gain, label));
        }
        if worst.is_none_or(|(g, _)| gain < g) {
            worst = Some((gain, label));
        }
    }
    if let (Some((bg, bl)), Some((wg, wl))) = (best, worst) {
        println!("largest cycle gain  {bg:+.2}% ({bl})");
        println!("smallest cycle gain {wg:+.2}% ({wl})");
    }
    println!("\nShape check: SPM placement lowers every combination's cost without");
    println!("reordering them — descriptor placement and DDT refinement compose.");
}
