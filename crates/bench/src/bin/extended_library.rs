//! Extension — **12-kind candidate library**: re-runs the application-level
//! exploration with the extension DDTs (`HSH`, `AVL`) added to the paper's
//! ten, and reports whether the new candidates enter each application's
//! Pareto front. Key-search-heavy applications should adopt the hash/tree
//! candidates; scan-heavy ones should not.
//!
//! Run with `cargo run -p ddtr-bench --bin extended_library --release`.

use ddtr_apps::{AppKind, AppParams};
use ddtr_core::{combo_label, combos_from, Simulator};
use ddtr_ddt::DdtKind;
use ddtr_mem::MemoryConfig;
use ddtr_pareto::pareto_front_indices;
use ddtr_trace::NetworkPreset;

fn main() {
    println!("Extension — exploring the 12-kind extended DDT library");
    println!("(reference network BWY-I, paper-sized traces)\n");
    let sim = Simulator::new(MemoryConfig::embedded_default());
    let trace = NetworkPreset::DartmouthBerry.generate(400);
    let params = AppParams::default();

    for app in AppKind::ALL {
        let mut labels = Vec::new();
        let mut points = Vec::new();
        for combo in combos_from(&DdtKind::EXTENDED) {
            let log = sim.run(app, combo, &params, &trace);
            labels.push((combo_label(combo), combo));
            points.push(log.objectives());
        }
        let front = pareto_front_indices(&points);
        let with_ext: Vec<&str> = front
            .iter()
            .filter(|&&i| labels[i].1.iter().any(|k| k.is_extension()))
            .map(|&i| labels[i].0.as_str())
            .collect();
        println!(
            "{:<10} front {:2}/144 points, {:2} use an extension DDT{}{}",
            app.to_string(),
            front.len(),
            with_ext.len(),
            if with_ext.is_empty() { "" } else { ": " },
            with_ext.join(", "),
        );
    }
    println!("\nShape check: the extensions earn front membership only where the");
    println!("application's access mix rewards cheap key search — exactly the");
    println!("application-specific behaviour the methodology is built to expose.");
}
