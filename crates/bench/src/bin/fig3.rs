//! Regenerates **Figure 3** of the paper: (a) the performance–energy
//! exploration space of URL (all 100 DDT combinations on one
//! configuration) and (b) its Pareto-optimal points.
//!
//! Run with `cargo run -p ddtr-bench --bin fig3 --release`.

use ddtr_apps::AppKind;
use ddtr_core::{explore_application_level, MethodologyConfig};
use ddtr_pareto::{pareto_front_indices, ScatterChart};

fn main() {
    let cfg = MethodologyConfig::paper(AppKind::Url);
    // Figure 3 shows the full application-level space: all 100 combos on
    // the reference configuration (step 1's measurements).
    let step1 = explore_application_level(&cfg).expect("step 1 runs");
    let points: Vec<[f64; 2]> = step1
        .measurements
        .iter()
        .map(|l| [l.report.cycles as f64, l.report.energy_nj])
        .collect();
    println!(
        "Figure 3a — Performance vs Energy Pareto space of URL ({} combos, {} net)\n",
        points.len(),
        cfg.reference_network
    );
    let chart = ScatterChart::new("execution time [cycles]", "energy [nJ]");
    print!("{}", chart.render(&points));

    // The paper's step-3 tool prunes over all four metrics and then plots
    // the surviving points in the time-energy plane; points optimal on
    // accesses or footprint appear slightly off the 2-D hull.
    let points4: Vec<[f64; 4]> = step1.measurements.iter().map(|l| l.objectives()).collect();
    let front4 = pareto_front_indices(&points4);
    println!(
        "\nFigure 3b — Pareto-optimal points over the four metrics ({}):\n",
        front4.len()
    );
    println!(
        "{:20} {:>14} {:>14} {:>12} {:>12}",
        "combo", "time [cycles]", "energy [nJ]", "accesses", "footprint B"
    );
    let mut rows: Vec<_> = front4
        .iter()
        .map(|&i| (&step1.measurements[i].combo, points4[i]))
        .collect();
    rows.sort_by(|a, b| a.1[1].total_cmp(&b.1[1]));
    for (combo, p) in rows {
        println!(
            "{combo:20} {:>14.0} {:>14.1} {:>12.0} {:>12.0}",
            p[1], p[0], p[2], p[3]
        );
    }
    println!("\nCSV (label,time,energy,pareto):");
    let labels: Vec<String> = step1.measurements.iter().map(|l| l.combo.clone()).collect();
    print!("{}", chart.to_csv(&labels, &points));
}
