//! Reproduces the paper's §4 measurement-stability claim: "All the results
//! presented here are average values after a set of 10 simulations for
//! each application, where all the final values were very similar
//! (variations of less than 2%)."
//!
//! Our simulator is deterministic for a fixed trace, so the analogue of
//! the authors' run-to-run noise is *trace-to-trace* variation: ten
//! different seeds of the same network configuration. For each application
//! we report the coefficient of variation of every metric for the original
//! (SLL+SLL) implementation, and check that combination *rankings* are
//! stable across seeds.
//!
//! Run with `cargo run -p ddtr-bench --bin variance --release`.

use ddtr_apps::{AppKind, AppParams};
use ddtr_core::Simulator;
use ddtr_ddt::DdtKind;
use ddtr_mem::MemoryConfig;
use ddtr_trace::{NetworkPreset, TraceGenerator};

const SEEDS: u64 = 10;

fn cv(values: &[f64]) -> f64 {
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
    if mean == 0.0 {
        0.0
    } else {
        var.sqrt() / mean
    }
}

fn main() {
    println!("Measurement stability over {SEEDS} trace seeds");
    println!("(paper: <2% variation across 10 runs of the same input)\n");
    let sim = Simulator::new(MemoryConfig::embedded_default());
    let params = AppParams::default();
    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>9}   ranking stable?",
        "app", "energy", "time", "accesses", "footprint"
    );
    for app in AppKind::ALL {
        let mut metrics: [Vec<f64>; 4] = Default::default();
        // Ranking witness: does AR+SLL(AR) beat SLL+SLL on cycles under
        // every seed?
        let mut ranking_stable = true;
        for seed in 0..SEEDS {
            let mut spec = NetworkPreset::DartmouthBerry.spec();
            spec.seed = spec.seed.wrapping_add(seed * 7919);
            let trace = TraceGenerator::new(spec).generate(400);
            let orig = sim.run(app, [DdtKind::Sll, DdtKind::Sll], &params, &trace);
            let refined = sim.run(app, [DdtKind::Array, DdtKind::SllChunk], &params, &trace);
            let o = orig.objectives();
            for (d, series) in metrics.iter_mut().enumerate() {
                series.push(o[d]);
            }
            if refined.report.cycles >= orig.report.cycles {
                ranking_stable = false;
            }
        }
        println!(
            "{:<10} {:>8.2}% {:>8.2}% {:>8.2}% {:>8.2}%   {}",
            app.to_string(),
            cv(&metrics[0]) * 100.0,
            cv(&metrics[1]) * 100.0,
            cv(&metrics[2]) * 100.0,
            cv(&metrics[3]) * 100.0,
            if ranking_stable { "yes" } else { "NO" },
        );
    }
    println!("\nShape check: the paper's <2% figure measured run-to-run *timing*");
    println!("noise on identical inputs; our simulator is noise-free there (0% by");
    println!("construction, see the determinism tests). Varying the *input trace*");
    println!("itself moves the metrics by 3-14% — yet the refined-vs-original");
    println!("ranking never flips, which is the property the paper's averaging");
    println!("was protecting.");
}
