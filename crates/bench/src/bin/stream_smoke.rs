//! Large-trace streaming smoke check: one streamed DRR simulation at an
//! argument-selected packet count, reporting wall time and peak resident
//! memory so CI can assert that memory stays independent of trace length.
//!
//! ```text
//! cargo run -p ddtr_bench --bin stream_smoke --release -- 1000000
//! ```
//!
//! Output is one machine-parseable line:
//!
//! ```text
//! stream_smoke packets=1000000 seconds=3.214 accesses=... peak_rss_kb=34816
//! ```
//!
//! `peak_rss_kb` is read from `/proc/self/status` (`VmHWM`); on platforms
//! without procfs it reports 0 and the CI comparison is skipped.

use ddtr_apps::{AppKind, AppParams};
use ddtr_core::Simulator;
use ddtr_ddt::DdtKind;
use ddtr_mem::MemoryConfig;
use ddtr_trace::{NetworkPreset, StreamSpec};
use std::time::Instant;

/// Peak resident set size in kilobytes, if the platform exposes it.
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

fn main() {
    let packets: usize = std::env::args()
        .nth(1)
        .map_or(Ok(1_000_000), |v| v.parse())
        .expect("packet count must be a number");
    let spec = StreamSpec::single(NetworkPreset::DartmouthDorm.spec(), packets)
        .expect("preset specs are valid");
    let sim = Simulator::new(MemoryConfig::embedded_default());
    let params = AppParams::default();
    let start = Instant::now();
    let log = sim.run_spec(AppKind::Drr, [DdtKind::Sll, DdtKind::Dll], &params, &spec);
    let seconds = start.elapsed().as_secs_f64();
    assert!(log.report.accesses > 0, "simulation must do work");
    println!(
        "stream_smoke packets={packets} seconds={seconds:.3} accesses={} peak_rss_kb={}",
        log.report.accesses,
        peak_rss_kb()
    );
}
