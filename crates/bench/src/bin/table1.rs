//! Regenerates **Table 1** of the paper: "Reduction of total simulations
//! needed to explore the design space".
//!
//! Run with `cargo run -p ddtr-bench --bin table1 --release`.

use ddtr_apps::AppKind;
use ddtr_bench::{paper_outcome, vs_paper, PAPER_TABLE1};

fn main() {
    println!("Table 1 — Reduction of total simulations (measured vs paper)\n");
    println!(
        "| {:20} | {:>24} | {:>24} | {:>16} | {:>10} |",
        "Network application",
        "Exhaustive simulations",
        "Reduced simulations",
        "Pareto optimal",
        "Reduction"
    );
    println!(
        "|{}|{}|{}|{}|{}|",
        "-".repeat(22),
        "-".repeat(26),
        "-".repeat(26),
        "-".repeat(18),
        "-".repeat(12)
    );
    for (i, app) in AppKind::ALL.iter().enumerate() {
        let outcome = paper_outcome(*app).expect("paper exploration runs");
        let (_, p_exh, p_red, p_par) = PAPER_TABLE1[i];
        println!(
            "| {:20} | {:>24} | {:>24} | {:>16} | {:>9.0}% |",
            format!("{}. {app}", i + 1),
            vs_paper(outcome.counts.exhaustive, p_exh),
            vs_paper(outcome.counts.reduced, p_red),
            vs_paper(outcome.counts.pareto_optimal, p_par),
            outcome.counts.reduction() * 100.0,
        );
    }
    println!("\nShape check: exhaustive counts match the paper exactly;");
    println!("reduced counts land in the same ~70-80% reduction band;");
    println!("Pareto sets stay small (single digits).");
}
