//! Ablation — **pruning fidelity**: does step 1's 80 % pruning ever drop a
//! combination that exhaustive exploration would have placed on the final
//! Pareto front? (`DESIGN.md` §5.6.)
//!
//! Run with `cargo run -p ddtr-bench --bin ablation_pruning --release`.

use ddtr_apps::AppKind;
use ddtr_core::{
    all_combos, explore_network_level, explore_pareto_level, Methodology, MethodologyConfig,
};
use std::collections::BTreeSet;

fn main() {
    println!("Ablation — step-1 pruning fidelity (methodology vs exhaustive)\n");
    for app in [
        AppKind::Url,
        AppKind::Drr,
        AppKind::Route,
        AppKind::Ipchains,
    ] {
        let cfg = MethodologyConfig::paper(app);
        // Methodology flow (pruned).
        let outcome = Methodology::new(cfg.clone()).run().expect("pipeline runs");
        let pruned_front: BTreeSet<String> = outcome
            .pareto
            .global_front
            .iter()
            .map(|p| p.combo.clone())
            .collect();
        // Exhaustive flow: all 100 combos through steps 2-3.
        let step2 = explore_network_level(&cfg, &all_combos()).expect("exhaustive step 2");
        let pareto = explore_pareto_level(&step2).expect("exhaustive step 3");
        let full_front: BTreeSet<String> = pareto
            .global_front
            .iter()
            .map(|p| p.combo.clone())
            .collect();
        let missed: Vec<&String> = full_front.difference(&pruned_front).collect();
        let spurious: Vec<&String> = pruned_front.difference(&full_front).collect();
        println!("{app}:");
        println!(
            "  exhaustive front {:2} points | methodology front {:2} points | missed {} | spurious {}",
            full_front.len(),
            pruned_front.len(),
            missed.len(),
            spurious.len(),
        );
        if !missed.is_empty() {
            println!("  missed combos: {missed:?}");
        }
        println!(
            "  simulations: exhaustive {} vs methodology {}",
            100 * cfg.configurations() + 100,
            outcome.counts.reduced
        );
    }
    println!("\nShape check: the methodology's front should recover all (or nearly");
    println!("all) of the exhaustive front at a fraction of the simulations —");
    println!("the paper's premise that step-1 pruning is effectively loss-free.");
}
