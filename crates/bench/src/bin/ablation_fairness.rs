//! Ablation — **level of fairness**: the paper names the DRR quantum as an
//! application-specific network parameter ("the Level of Fairness used in
//! the Deficit Round Robin scheduling application"). Sweep it and show how
//! the best DDT combination and the cost metrics react.
//!
//! Run with `cargo run -p ddtr-bench --bin ablation_fairness --release`.

use ddtr_apps::{AppKind, AppParams};
use ddtr_core::{all_combos, combo_label, Simulator};
use ddtr_mem::MemoryConfig;
use ddtr_trace::NetworkPreset;

fn main() {
    let trace = NetworkPreset::DartmouthDorm.generate(400);
    let sim = Simulator::new(MemoryConfig::embedded_default());
    println!(
        "Ablation — DRR quantum (level of fairness) sweep, {} trace\n",
        trace.network
    );
    println!(
        "{:>8} | {:>20} | {:>12} | {:>12} | {:>14}",
        "quantum", "best-energy combo", "energy nJ", "cycles", "sched. accesses"
    );
    for quantum in [300u32, 600, 1500, 3000] {
        let params = AppParams {
            drr_quantum: quantum,
            ..AppParams::default()
        };
        let mut best: Option<(String, f64, u64, u64)> = None;
        for combo in all_combos() {
            let log = sim.run(AppKind::Drr, combo, &params, &trace);
            let better = best
                .as_ref()
                .is_none_or(|(_, e, _, _)| log.report.energy_nj < *e);
            if better {
                best = Some((
                    combo_label(combo),
                    log.report.energy_nj,
                    log.report.cycles,
                    log.report.accesses,
                ));
            }
        }
        let (combo, energy, cycles, accesses) = best.expect("combos were simulated");
        println!("{quantum:>8} | {combo:>20} | {energy:>12.1} | {cycles:>12} | {accesses:>14}");
    }
    println!("\nShape check: a finer level of fairness (smaller quantum) costs");
    println!("more scheduler rounds — more flow-table and queue traffic — so the");
    println!("metrics rise as the quantum shrinks, and the winning combination");
    println!("can shift: exactly why step 2 treats the quantum as an explored");
    println!("network parameter.");
}
