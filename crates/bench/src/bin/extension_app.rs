//! Extension — **new application, same methodology**: the NAT gateway is
//! not one of the paper's four case studies; it exists to demonstrate the
//! paper's generality claim ("the systematic refinement of dynamic data
//! types for *new* network applications"). The full three-step pipeline
//! runs on it unchanged and prints the Table-1/Table-2-style rows the
//! paper would have reported.
//!
//! Run with `cargo run -p ddtr-bench --bin extension_app --release`.

use ddtr_apps::AppKind;
use ddtr_core::{headline_comparison, Methodology, MethodologyConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Extension — three-step DDT refinement of a NAT gateway");
    println!("(5 networks x 2 pool sizes, paper-sized traces)\n");

    let cfg = MethodologyConfig::paper(AppKind::Nat);
    let outcome = Methodology::new(cfg.clone()).run()?;

    // The Table-1 row the paper would print for NAT.
    println!(
        "table-1 row : NAT  exhaustive {}  reduced {}  pareto {}",
        outcome.counts.exhaustive,
        outcome.counts.reduced,
        outcome.pareto.global_front.len()
    );
    println!(
        "step 1      : {} combinations simulated, {} survive ({:.0}% pruned)",
        outcome.step1.measurements.len(),
        outcome.step1.survivors.len(),
        outcome.step1.pruned_fraction() * 100.0
    );
    println!(
        "step 2      : {} simulations over {} configurations",
        outcome.step2.simulations(),
        cfg.configurations()
    );

    // The Table-2 row: trade-off spreads along the global front.
    let spreads = ddtr_core::tradeoff_percentages(&outcome);
    println!(
        "table-2 row : NAT  energy {}%  time {}%  accesses {}%  footprint {}%",
        spreads[0], spreads[1], spreads[2], spreads[3]
    );

    println!("\nPareto-optimal DDT choices for the gateway:");
    for p in &outcome.pareto.global_front {
        println!("  {:20} {}", p.combo, p.report);
    }

    let headline = headline_comparison(&cfg, &outcome)?;
    println!(
        "\nversus the all-SLL baseline implementation: {:.0}% energy saving, {:.0}% faster",
        headline.energy_saving() * 100.0,
        headline.time_improvement() * 100.0
    );
    println!("\nShape check: the pipeline needed zero changes for a fifth");
    println!("application — pruning rate, Pareto-set size and baseline dominance");
    println!("all land in the bands the paper reports for its four case studies.");
    Ok(())
}
