//! CI gate for the pile store's scale contracts, merging its
//! measurements into `BENCH_explore.json`:
//!
//! * builds 10k- and 100k-entry stores and times `PileStore::open` —
//!   warm open of the 100k store must finish under 50ms and within 2x
//!   the 10k time (opening reads segment headers, never the records),
//! * runs a quick DRR explore cold then warm over one store directory
//!   and asserts the warm run executes zero simulations.
//!
//! Run with `cargo run -p ddtr_bench --bin cache_scale --release`.
//! A violated gate panics, so the process exits non-zero under CI.

use ddtr_apps::AppKind;
use ddtr_core::{EngineConfig, ExploreEngine, Methodology, MethodologyConfig};
use ddtr_engine::timing::{time_secs, BenchReport};
use ddtr_engine::PileStore;
use std::path::Path;

/// Warm open of the 100k-entry store must beat this outright.
const WARM_OPEN_CEILING_SECS: f64 = 0.050;

/// Below this, open times are timer noise — the 2x ratio gate only
/// applies above the floor.
const RATIO_FLOOR_SECS: f64 = 0.005;

/// Fills `dir` with `n` synthetic records shaped like real cache lines.
fn build_store(dir: &Path, n: usize) {
    let mut store = PileStore::open(dir).expect("store opens");
    let payload = vec![b'x'; 160];
    for i in 0..n {
        store
            .append(format!("bench-key-{i:06}").as_bytes(), &payload)
            .expect("append");
    }
    store.flush().expect("flush");
}

/// Seconds to open the store (headers only — no index, no records).
fn open_secs(dir: &Path) -> f64 {
    time_secs(|| drop(PileStore::open(dir).expect("open"))).1
}

fn main() {
    let mut samples: Vec<(String, f64)> = Vec::new();
    let mut warm_opens: Vec<f64> = Vec::new();
    println!("# pile store scale gates\n");
    for (n, tag) in [(10_000usize, "10k"), (100_000usize, "100k")] {
        let dir =
            std::env::temp_dir().join(format!("ddtr-cache-scale-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (_, build) = time_secs(|| build_store(&dir, n));
        let cold = open_secs(&dir);
        let warm = (0..5)
            .map(|_| open_secs(&dir))
            .fold(f64::INFINITY, f64::min);
        println!(
            "{n:>7} entries   built {build:7.3}s   cold open {:8.1}us   warm open {:8.1}us",
            cold * 1e6,
            warm * 1e6
        );
        samples.push((format!("store cold open {tag}"), cold));
        samples.push((format!("store warm open {tag}"), warm));
        warm_opens.push(warm);
        let _ = std::fs::remove_dir_all(&dir);
    }
    let (warm_10k, warm_100k) = (warm_opens[0], warm_opens[1]);
    assert!(
        warm_100k < WARM_OPEN_CEILING_SECS,
        "warm open of the 100k store took {warm_100k:.4}s, over the {WARM_OPEN_CEILING_SECS}s \
         ceiling — open is no longer O(segments)"
    );
    let bound = (2.0 * warm_10k).max(RATIO_FLOOR_SECS);
    assert!(
        warm_100k <= bound,
        "warm open grew with store size: 100k {warm_100k:.6}s > max(2x 10k, floor) {bound:.6}s"
    );
    println!(
        "\nwarm open 100k/10k ratio {:.2} (gate: <= 2x above a {RATIO_FLOOR_SECS}s floor)",
        warm_100k / warm_10k
    );

    // Warm replay through the full engine: a second engine over the same
    // store directory must execute nothing.
    println!("\n## quick DRR explore over one store directory\n");
    let dir = std::env::temp_dir().join(format!("ddtr-cache-scale-explore-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let engine_cfg = EngineConfig {
        jobs: 0,
        cache_dir: Some(dir.clone()),
        no_cache: false,
    };
    let cfg = MethodologyConfig::quick(AppKind::Drr);
    let mut cold_engine = ExploreEngine::new(engine_cfg.clone()).expect("cold engine");
    let (_, cold) = time_secs(|| {
        Methodology::new(cfg.clone())
            .run_with(&mut cold_engine)
            .expect("cold explore")
    });
    let mut warm_engine = ExploreEngine::new(engine_cfg).expect("warm engine");
    let (outcome, warm) = time_secs(|| {
        Methodology::new(cfg)
            .run_with(&mut warm_engine)
            .expect("warm explore")
    });
    assert_eq!(
        outcome.engine.executed, 0,
        "warm explore over the shared store must execute nothing"
    );
    println!("cold {cold:8.3}s   warm {warm:8.3}s   executed=0 warm");
    let _ = std::fs::remove_dir_all(&dir);

    // Merge the open-time samples into BENCH_explore.json so the CI
    // artifact carries them even when perf_baseline did not run.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_explore.json");
    let mut report = std::fs::read_to_string(&path)
        .ok()
        .and_then(|s| serde_json::from_str::<BenchReport>(&s).ok())
        .unwrap_or_else(|| BenchReport::new("explore wall-clock (engine)"));
    report.samples.retain(|s| !s.label.starts_with("store "));
    for (label, secs) in samples {
        report.push(label, secs);
    }
    let json = report.to_json().expect("report serialises");
    std::fs::write(&path, format!("{json}\n")).expect("BENCH_explore.json is writable");
    println!("\nmerged store samples into {}", path.display());
}
