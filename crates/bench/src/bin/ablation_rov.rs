//! Ablation — **roving pointers**: quantify when the `(O)` variants pay
//! off, sweeping the access pattern from fully sequential to fully random
//! (`DESIGN.md` §5.6).
//!
//! Run with `cargo run -p ddtr-bench --bin ablation_rov --release`.

use ddtr_ddt::{DdtKind, TestRecord};
use ddtr_mem::{MemoryConfig, MemorySystem};

type Rec = TestRecord<32>;

const N: usize = 128;
const OPS: usize = 512;

/// Deterministic access-position stream mixing sequential steps with
/// random jumps at the given percentage.
fn positions(random_pct: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(OPS);
    let mut pos = 0usize;
    let mut noise = 13usize;
    for i in 0..OPS {
        noise = noise
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let _ = i;
        if noise % 100 < random_pct {
            pos = noise / 7 % N;
        } else {
            pos = (pos + 1) % N;
        }
        out.push(pos);
    }
    out
}

fn run(kind: DdtKind, random_pct: usize) -> u64 {
    let mut mem = MemorySystem::new(MemoryConfig::default());
    let mut ddt = kind.instantiate::<Rec>(&mut mem);
    for i in 0..N as u64 {
        ddt.insert(Rec { id: i, tag: 0 }, &mut mem);
    }
    let before = mem.stats().accesses();
    for pos in positions(random_pct) {
        ddt.get_nth(pos, &mut mem);
    }
    mem.stats().accesses() - before
}

fn main() {
    println!("Ablation — roving-pointer benefit vs access randomness ({N} records, {OPS} positional reads)\n");
    println!(
        "{:>8} | {:>10} {:>10} {:>8} | {:>10} {:>10} {:>8}",
        "random%", "SLL", "SLL(O)", "gain", "SLL(AR)", "SLL(ARO)", "gain"
    );
    for random_pct in [0usize, 10, 25, 50, 75, 100] {
        let sll = run(DdtKind::Sll, random_pct);
        let sll_o = run(DdtKind::SllRov, random_pct);
        let chunk = run(DdtKind::SllChunk, random_pct);
        let chunk_o = run(DdtKind::SllChunkRov, random_pct);
        let gain = |a: u64, b: u64| format!("{:.1}x", a as f64 / b as f64);
        println!(
            "{random_pct:>8} | {sll:>10} {sll_o:>10} {:>8} | {chunk:>10} {chunk_o:>8} {:>8}",
            gain(sll, sll_o),
            gain(chunk, chunk_o),
        );
    }
    println!("\nShape check: the roving gain is largest for sequential access and");
    println!("decays toward 1x as the pattern randomises; chunked variants start");
    println!("from a far lower base cost, so their roving gain is smaller.");
}
