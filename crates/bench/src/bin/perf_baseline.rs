//! Times the exploration hot path and records the numbers the perf
//! trajectory tracks, writing `BENCH_explore.json` at the repository root:
//!
//! * quick explores of all five applications, cold cache versus warm cache
//!   (the engine's persist/replay path end to end),
//! * a full (paper-sized) DRR explore at `--jobs 1` versus `--jobs 4`,
//!   asserting the Pareto front is byte-identical across worker counts, and
//! * streamed single DRR simulations at 100k and 1M packets — the
//!   constant-memory scaling path (packets generated on the fly, never
//!   materialized), and
//! * pile-store open latency at 10k and 100k entries — the O(1)
//!   warm-open contract (opening reads segment headers, never records).
//!
//! Run with `cargo run -p ddtr_bench --bin perf_baseline --release`.

use ddtr_apps::{AppKind, AppParams};
use ddtr_core::{
    EngineConfig, ExploreEngine, Methodology, MethodologyConfig, MethodologyOutcome, Simulator,
};
use ddtr_ddt::DdtKind;
use ddtr_engine::timing::{time_secs, BenchReport};
use ddtr_engine::PileStore;
use ddtr_mem::MemoryConfig;
use ddtr_trace::{NetworkPreset, StreamSpec};
use std::path::Path;

fn explore(engine: &mut ExploreEngine, cfg: &MethodologyConfig) -> MethodologyOutcome {
    Methodology::new(cfg.clone())
        .run_with(engine)
        .expect("exploration runs")
}

/// Fills `dir` with `n` synthetic records shaped like real cache lines.
fn build_store(dir: &Path, n: usize) {
    let mut store = PileStore::open(dir).expect("store opens");
    let payload = vec![b'x'; 160];
    for i in 0..n {
        store
            .append(format!("bench-key-{i:06}").as_bytes(), &payload)
            .expect("append");
    }
    store.flush().expect("flush");
}

/// Seconds to open the store (headers only — no index, no records).
fn open_secs(dir: &Path) -> f64 {
    time_secs(|| drop(PileStore::open(dir).expect("open"))).1
}

fn main() {
    let mut report = BenchReport::new("explore wall-clock (engine)");
    report.set_meta("units", "seconds");
    report.set_meta(
        "notes",
        "cold/warm cache, worker scaling and streamed packet-count scaling",
    );
    if let Ok(out) = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
    {
        if out.status.success() {
            report.set_meta("git_rev", String::from_utf8_lossy(&out.stdout).trim());
        }
    }
    println!("# exploration timing baseline\n");

    // Cold versus warm persistent cache, quick explores, all five apps.
    println!("## quick explores, cold vs warm cache\n");
    for app in AppKind::EXTENDED_ALL {
        let dir = std::env::temp_dir().join(format!("ddtr-perf-{app}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let engine_cfg = EngineConfig {
            jobs: 0,
            cache_dir: Some(dir.clone()),
            no_cache: false,
        };
        let cfg = MethodologyConfig::quick(app);
        let mut cold_engine = ExploreEngine::new(engine_cfg.clone()).expect("cold engine");
        let (_, cold) = time_secs(|| explore(&mut cold_engine, &cfg));
        // A fresh engine over the same directory exercises the on-disk
        // replay, not just the in-memory map.
        let mut warm_engine = ExploreEngine::new(engine_cfg).expect("warm engine");
        let (warm_outcome, warm) = time_secs(|| explore(&mut warm_engine, &cfg));
        assert_eq!(
            warm_outcome.engine.executed, 0,
            "warm explore must answer from the cache"
        );
        println!(
            "{app:10} cold {cold:8.3}s   warm {warm:8.3}s   speedup {:6.1}x",
            cold / warm
        );
        report.push(format!("{app} quick cold"), cold);
        report.push(format!("{app} quick warm"), warm);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Worker scaling on a full paper-sized explore (no cache, so both
    // runs execute every simulation).
    println!("\n## full DRR explore, worker scaling\n");
    let cfg = MethodologyConfig::paper(AppKind::Drr);
    let mut fronts: Vec<String> = Vec::new();
    let mut seconds: Vec<f64> = Vec::new();
    for jobs in [1usize, 4] {
        let mut engine = ExploreEngine::with_jobs(jobs);
        let (outcome, secs) = time_secs(|| explore(&mut engine, &cfg));
        fronts.push(serde_json::to_string(&outcome.pareto.global_front).expect("front serialises"));
        seconds.push(secs);
        println!("jobs={jobs}   {secs:8.3}s");
        report.push(format!("drr paper jobs={jobs}"), secs);
    }
    assert_eq!(
        fronts[0], fronts[1],
        "Pareto front must be byte-identical at any worker count"
    );
    println!(
        "jobs=4 speedup over jobs=1: {:.2}x (byte-identical Pareto front)",
        seconds[0] / seconds[1]
    );

    // Streamed packet-count scaling: one DRR simulation per size, packets
    // generated on the fly — memory stays O(flows) at any length.
    println!("\n## streamed DRR simulation, packet-count scaling\n");
    let sim = Simulator::new(MemoryConfig::embedded_default());
    let params = AppParams::default();
    for packets in [100_000usize, 1_000_000] {
        let spec = StreamSpec::single(NetworkPreset::DartmouthDorm.spec(), packets)
            .expect("preset specs are valid");
        let (log, secs) =
            time_secs(|| sim.run_spec(AppKind::Drr, [DdtKind::Sll, DdtKind::Dll], &params, &spec));
        println!(
            "{packets:>9} packets   {secs:8.3}s   {:.0} pkts/s",
            packets as f64 / secs
        );
        assert!(log.report.accesses > 0);
        report.push(format!("drr streamed {packets} packets"), secs);
    }

    // Pile-store open latency: opening reads one header page per segment
    // and nothing else, so the time must stay flat as the store grows
    // 10x. Cold is the first open after the writer dropped; warm is the
    // best of five repeats.
    println!("\n## pile store open latency\n");
    for (n, tag) in [(10_000usize, "10k"), (100_000usize, "100k")] {
        let dir =
            std::env::temp_dir().join(format!("ddtr-perf-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (_, build) = time_secs(|| build_store(&dir, n));
        let cold = open_secs(&dir);
        let warm = (0..5)
            .map(|_| open_secs(&dir))
            .fold(f64::INFINITY, f64::min);
        println!(
            "{n:>7} entries   built {build:7.3}s   cold open {:8.1}us   warm open {:8.1}us",
            cold * 1e6,
            warm * 1e6
        );
        report.push(format!("store cold open {tag}"), cold);
        report.push(format!("store warm open {tag}"), warm);
        let _ = std::fs::remove_dir_all(&dir);
    }

    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_explore.json");
    let json = report.to_json().expect("report serialises");
    std::fs::write(&path, format!("{json}\n")).expect("BENCH_explore.json is writable");
    println!(
        "\nwrote {} ({} samples, host parallelism {})",
        path.display(),
        report.samples.len(),
        report.host_parallelism
    );
}
