//! Regenerates the paper's **§4 headline numbers**: gains of the refined
//! DDT implementations versus the original NetBench implementation (both
//! dominant DDTs as singly linked lists) — "the execution time is reduced
//! by 20% and energy by 80%" for URL, and "energy savings 80% and increase
//! in performance 22% (in average)" over all benchmarks.
//!
//! Run with `cargo run -p ddtr-bench --bin headline --release`.

use ddtr_apps::AppKind;
use ddtr_core::{headline_comparison, Methodology, MethodologyConfig};

fn main() {
    println!("Headline — refined DDTs vs original SLL+SLL implementation\n");
    let mut energy_savings = Vec::new();
    let mut time_improvements = Vec::new();
    for app in AppKind::ALL {
        let cfg = MethodologyConfig::paper(app);
        let outcome = Methodology::new(cfg.clone()).run().expect("pipeline runs");
        let h = headline_comparison(&cfg, &outcome).expect("headline computes");
        println!("{app}:");
        println!(
            "  best-energy point {:20} energy saving {:>5.1}%  access cut {:>5.1}%  footprint cut {:>6.1}%",
            h.best_energy_combo,
            h.energy_saving() * 100.0,
            h.access_reduction() * 100.0,
            h.footprint_reduction() * 100.0,
        );
        println!(
            "  best-time   point {:20} time improvement {:>5.1}%",
            h.best_time_combo,
            h.time_improvement() * 100.0,
        );
        energy_savings.push(h.energy_saving());
        time_improvements.push(h.time_improvement());
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64 * 100.0;
    println!("\naverage over the four benchmarks:");
    println!(
        "  energy saving    {:>5.1}%   (paper: 80% on average)",
        avg(&energy_savings)
    );
    println!(
        "  time improvement {:>5.1}%   (paper: 22% on average)",
        avg(&time_improvements)
    );
    println!("\nShape check: the original SLL implementation is beaten on energy");
    println!("and time for every application, with savings up to ~70% — the same");
    println!("direction and magnitude class as the paper's 'up to 80%/22%'.");
}
