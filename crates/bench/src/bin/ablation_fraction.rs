//! Ablation — **survivor fraction**: sweep the step-1 pruning aggressiveness
//! and measure (a) total simulations and (b) how much of the exhaustive
//! Pareto front the methodology still recovers. This quantifies the paper's
//! choice of keeping ~20 % of the combinations.
//!
//! Run with `cargo run -p ddtr-bench --bin ablation_fraction --release`.

use ddtr_apps::AppKind;
use ddtr_core::{
    all_combos, explore_application_level, explore_network_level, explore_pareto_level,
    MethodologyConfig,
};
use std::collections::BTreeSet;

fn main() {
    let app = AppKind::Drr;
    let base = MethodologyConfig::paper(app);
    // Reference: the exhaustive front.
    let full_step2 = explore_network_level(&base, &all_combos()).expect("exhaustive runs");
    let full_front: BTreeSet<String> = explore_pareto_level(&full_step2)
        .expect("exhaustive step 3")
        .global_front
        .iter()
        .map(|p| p.combo.clone())
        .collect();
    println!(
        "Ablation — survivor-fraction sweep ({app}, exhaustive front = {} points, {} sims)\n",
        full_front.len(),
        100 * base.configurations()
    );
    println!(
        "{:>9} | {:>10} | {:>11} | {:>9} | {:>9}",
        "fraction", "survivors", "simulations", "recovered", "recall"
    );
    for fraction in [0.05, 0.10, 0.15, 0.20, 0.30, 0.50] {
        let mut cfg = base.clone();
        cfg.survivor_fraction = fraction;
        let step1 = explore_application_level(&cfg).expect("step 1 runs");
        let step2 = explore_network_level(&cfg, &step1.survivor_combos()).expect("step 2 runs");
        let front: BTreeSet<String> = explore_pareto_level(&step2)
            .expect("step 3 runs")
            .global_front
            .iter()
            .map(|p| p.combo.clone())
            .collect();
        let recovered = full_front.intersection(&front).count();
        println!(
            "{:>8.0}% | {:>10} | {:>11} | {:>6}/{:<2} | {:>8.0}%",
            fraction * 100.0,
            step1.survivors.len(),
            100 + step2.simulations(),
            recovered,
            full_front.len(),
            recovered as f64 / full_front.len() as f64 * 100.0
        );
    }
    println!("\nShape check: recall saturates well before 50%, so the paper's");
    println!("~20% survivor rate buys near-exhaustive fidelity at a fraction of");
    println!("the simulation cost.");
}
