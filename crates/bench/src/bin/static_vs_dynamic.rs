//! Reproduces the paper's §1 motivation: "a static memory allocation at
//! compile time is not efficient at all, because the worst case situation
//! has to be assumed … great memory footprint size gains in comparison to a
//! statically allocated compile-time memory solution can be achieved."
//!
//! For each application we compare the measured peak dynamic footprint
//! against the worst-case static allocation a compile-time design would
//! reserve (every table at its configured maximum simultaneously).
//!
//! Run with `cargo run -p ddtr-bench --bin static_vs_dynamic --release`.

use ddtr_apps::{AppKind, AppParams};
use ddtr_ddt::DdtKind;
use ddtr_mem::{MemoryConfig, MemorySystem};
use ddtr_trace::NetworkPreset;

/// Worst-case static reservation per application: every record slot of
/// every table at its maximum, using the modelled record sizes.
fn static_worst_case(app: AppKind, params: &AppParams) -> u64 {
    // Modelled record sizes match the `Record::SIZE` constants of the
    // application crates.
    match app {
        AppKind::Route => {
            // Radix nodes (2n-1 for n prefixes) + rtentry table, both at
            // the larger 256-entry configuration a static design must
            // assume.
            let n = 256u64;
            (2 * n - 1) * 32 + n * 56
        }
        AppKind::Url => {
            // Pattern table at max + a session slot for every possible
            // concurrent flow (the worst case a designer must reserve).
            params.url_patterns as u64 * 48 + 512 * 48
        }
        AppKind::Ipchains => {
            // Rule chain at the 64-rule maximum + one conntrack entry per
            // possible flow.
            64 * 64 + 512 * 40
        }
        AppKind::Drr => {
            // A flow-state slot per possible flow + a full-depth queue.
            512 * 40 + 256 * 24
        }
        AppKind::Nat => {
            // A binding slot per possible concurrent flow + the full pool.
            512 * 32 + params.nat_ports as u64 * 16
        }
    }
}

fn main() {
    println!("Static worst-case reservation vs measured dynamic peak footprint\n");
    println!(
        "{:10} | {:>14} | {:>16} | {:>8}",
        "app", "static B", "dynamic peak B", "saving"
    );
    let params = AppParams::default();
    for app in AppKind::ALL {
        // Measure the peak across all of the app's networks — the dynamic
        // allocation must be judged on its worst observed case too.
        let mut dynamic_peak = 0u64;
        for &net in app.networks() {
            let trace = NetworkPreset::generate(net, 400);
            let mut mem = MemorySystem::new(MemoryConfig::default());
            let mut instance = app.instantiate([DdtKind::Sll, DdtKind::Sll], &params, &mut mem);
            for pkt in &trace {
                instance.process(pkt, &mut mem);
            }
            dynamic_peak = dynamic_peak.max(mem.report().peak_footprint_bytes);
        }
        let static_bytes = static_worst_case(app, &params);
        let saving = 1.0 - dynamic_peak as f64 / static_bytes as f64;
        println!(
            "{:10} | {:>14} | {:>16} | {:>7.0}%",
            app.to_string(),
            static_bytes,
            dynamic_peak,
            saving * 100.0
        );
    }
    println!("\nShape check: dynamic allocation undercuts the compile-time worst");
    println!("case wherever tables are demand-driven (URL/IPchains/DRR); Route's");
    println!("table is resident by design, so its gain is smallest.");
}
