//! Ablation — **energy-model sensitivity**: the paper's conclusions rest
//! on the *ordering* of DDT combinations, not on absolute CACTI joules.
//! This harness perturbs the per-access energies and checks that the
//! global Pareto front's membership is stable (`DESIGN.md` §5.6).
//!
//! Run with `cargo run -p ddtr-bench --bin ablation_energy --release`.

use ddtr_apps::{AppKind, AppParams};
use ddtr_core::{all_combos, combo_label};
use ddtr_ddt::DdtKind;
use ddtr_mem::{CostReport, EnergyModel, MemoryConfig, MemorySystem};
use ddtr_pareto::pareto_front_indices;
use ddtr_trace::NetworkPreset;
use std::collections::BTreeSet;

/// Simulates every combination on one configuration under an energy model
/// whose L1 and backing-store energies are scaled *independently* (a
/// uniform scale cannot reorder a single metric; a ratio change can) and
/// returns the front's combo labels.
fn front_under(l1_scale: f64, dram_scale: f64) -> BTreeSet<String> {
    let mem_cfg = MemoryConfig::embedded_default();
    let base = EnergyModel::from_configs(&mem_cfg.l1, &mem_cfg.dram);
    let mut energy = base;
    energy.l1_access_nj *= l1_scale;
    energy.dram_access_nj *= dram_scale;
    let params = AppParams::default();
    let trace = NetworkPreset::DartmouthBerry.generate(300);
    let mut labels = Vec::new();
    let mut reports: Vec<CostReport> = Vec::new();
    for combo in all_combos() {
        let mut mem = MemorySystem::with_energy_model(mem_cfg, energy);
        let mut app = AppKind::Drr.instantiate(combo, &params, &mut mem);
        for pkt in &trace {
            app.process(pkt, &mut mem);
        }
        labels.push(combo_label(combo));
        reports.push(mem.report());
    }
    let points: Vec<[f64; 4]> = reports.iter().map(CostReport::as_array).collect();
    pareto_front_indices(&points)
        .into_iter()
        .map(|i| labels[i].clone())
        .collect()
}

fn main() {
    println!("Ablation — Pareto-front stability under perturbed CACTI constants (DRR, BWY-I)\n");
    let nominal = front_under(1.0, 1.0);
    println!("nominal front ({} points): {:?}\n", nominal.len(), nominal);
    for (l1, dram) in [(0.25, 1.0), (4.0, 1.0), (1.0, 0.25), (1.0, 4.0), (0.5, 2.0)] {
        let perturbed = front_under(l1, dram);
        let stable = nominal.intersection(&perturbed).count();
        println!(
            "L1 x{l1:<4} backing x{dram:<4}: {:2} points, {stable}/{} of nominal retained, jaccard {:.2}",
            perturbed.len(),
            nominal.len(),
            stable as f64 / nominal.union(&perturbed).count() as f64
        );
    }
    println!("\nShape check: even 16x shifts in the L1-to-backing energy ratio");
    println!("leave the front membership largely intact — the conclusions do not");
    println!("hinge on the exact CACTI constants (DESIGN.md substitution table).");
    let _ = DdtKind::ALL; // the ten kinds under test
}
