//! Drives N concurrent query clients against a live in-process server
//! and records end-to-end request latency percentiles, writing
//! `BENCH_serve.json` at the repository root:
//!
//! * per-client `Ping` round trips — protocol floor (parse, dispatch,
//!   emit, no simulation),
//! * per-client quick DRR explores — a real exploration answered by the
//!   resident engine session (later requests hit its in-memory cache),
//! * one `Metrics` fetch at the end, printing the server's own view of
//!   the same latencies (Prometheus-style exposition).
//!
//! The workload itself is the shared [`ddtr_serve::loadtest`] harness —
//! the same code behind `ddtr loadtest` and the `loadtest` fleet bench —
//! so all three stay in agreement about what "one client" does.
//! Percentiles are nearest-rank over the raw samples, so
//! `BENCH_serve.json` is exact, not bucketed.
//!
//! Run with `cargo run -p ddtr_bench --bin serve_baseline --release`;
//! `--clients N`, `--pings N` and `--explores N` override the default
//! 4 x (50 pings + 4 explores) workload.

use ddtr_core::EngineConfig;
use ddtr_engine::timing::BenchReport;
use ddtr_serve::loadtest::{run as run_loadtest, LoadtestConfig, LoadtestReport};
use ddtr_serve::{Client, Endpoint, Event, Request, RequestBody, Server};
use std::net::TcpListener;
use std::path::Path;

/// Parses `--flag N` from the bin's argument list.
fn arg_value(args: &[String], flag: &str) -> Option<usize> {
    let pos = args.iter().position(|a| a == flag)?;
    let raw = args
        .get(pos + 1)
        .unwrap_or_else(|| panic!("{flag} needs a value"));
    Some(
        raw.parse()
            .unwrap_or_else(|e| panic!("bad {flag} value `{raw}`: {e}")),
    )
}

/// Runs the shared workload against `endpoint` and panics unless the run
/// was clean — a baseline recorded over dropped connections is noise.
fn drive(cfg: &LoadtestConfig) -> LoadtestReport {
    let report = run_loadtest(cfg);
    assert!(
        report.clean(),
        "baseline run was not clean: {} dropped, {} protocol errors",
        report.dropped_connections,
        report.protocol_errors
    );
    report
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
    let endpoint: Endpoint = format!("tcp:{}", listener.local_addr().expect("local addr"))
        .parse()
        .expect("endpoint parses");
    let server = Server::new(EngineConfig {
        jobs: 2,
        cache_dir: None,
        no_cache: true,
    })
    .expect("server starts");

    let mut cfg = LoadtestConfig::new(endpoint.clone());
    if let Some(v) = arg_value(&args, "--clients") {
        cfg.clients = v;
    }
    if let Some(v) = arg_value(&args, "--pings") {
        cfg.pings = v;
    }
    if let Some(v) = arg_value(&args, "--explores") {
        cfg.explores = v;
    }

    println!("# serve request-latency baseline\n");
    println!(
        "{} clients x ({} pings + {} quick DRR explores) against {endpoint}\n",
        cfg.clients, cfg.pings, cfg.explores
    );

    let mut exposition = String::new();
    let mut report_opt = None;
    std::thread::scope(|scope| {
        let server = &server;
        scope.spawn(move || server.serve_tcp(&listener).expect("server serves"));
        report_opt = Some(drive(&cfg));
        // The server's own view of the same workload, for the record.
        let mut client = Client::connect(&endpoint).expect("metrics client connects");
        if let Event::Metrics { text, .. } = client
            .call(&Request::new("m1", RequestBody::Metrics), |_| {})
            .expect("metrics answered")
        {
            exposition = text;
        }
        client
            .send(&Request::new("bye", RequestBody::Shutdown))
            .expect("shutdown sent");
    });
    let outcome = report_opt.expect("loadtest ran");

    let mut report = BenchReport::new("serve request latency (end to end, concurrent clients)");
    report.set_meta("units", "seconds");
    report.set_meta("clients", cfg.clients.to_string());
    report.set_meta("workers", server.worker_count().to_string());
    report.set_meta(
        "notes",
        "client-side nearest-rank percentiles over ping and quick-DRR-explore round trips",
    );
    if let Ok(out) = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
    {
        if out.status.success() {
            report.set_meta("git_rev", String::from_utf8_lossy(&out.stdout).trim());
        }
    }
    for (name, lat) in [
        ("ping", &outcome.ping),
        ("explore drr quick", &outcome.explore),
    ] {
        let p50 = lat.p50_us as f64 / 1e6;
        let p99 = lat.p99_us as f64 / 1e6;
        println!(
            "{name:20} n={:3}  p50 {:>10.6}s  p99 {:>10.6}s",
            lat.count, p50, p99
        );
        report.push(format!("{name} p50"), p50);
        report.push(format!("{name} p99"), p99);
    }

    println!("\n## server-side exposition (excerpt)\n");
    for line in exposition.lines().filter(|l| {
        l.contains("serve_request_latency") || l.contains("request_") && l.ends_with("_total")
    }) {
        println!("{line}");
    }

    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    let json = report.to_json().expect("report serialises");
    std::fs::write(&path, format!("{json}\n")).expect("BENCH_serve.json is writable");
    println!(
        "\nwrote {} ({} samples, host parallelism {})",
        path.display(),
        report.samples.len(),
        report.host_parallelism
    );
}
