//! Drives N concurrent query clients against a live in-process server
//! and records end-to-end request latency percentiles, writing
//! `BENCH_serve.json` at the repository root:
//!
//! * per-client `Ping` round trips — protocol floor (parse, dispatch,
//!   emit, no simulation),
//! * per-client quick DRR explores — a real exploration answered by the
//!   shared engine session (later requests hit its in-memory cache), and
//! * one `Metrics` fetch at the end, printing the server's own view of
//!   the same latencies (Prometheus-style exposition).
//!
//! Percentiles are computed client-side from the raw sorted samples
//! (nearest-rank), so `BENCH_serve.json` is exact, not bucketed.
//!
//! Run with `cargo run -p ddtr_bench --bin serve_baseline --release`.

use ddtr_core::EngineConfig;
use ddtr_engine::timing::BenchReport;
use ddtr_serve::{Client, Endpoint, Event, JobSpec, Request, RequestBody, Server};
use std::net::TcpListener;
use std::path::Path;
use std::time::Instant;

/// Concurrent query clients.
const CLIENTS: usize = 4;

/// Ping round trips per client.
const PINGS_PER_CLIENT: usize = 50;

/// Quick explores per client.
const EXPLORES_PER_CLIENT: usize = 4;

/// Nearest-rank percentile of an ascending-sorted sample set.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// One client's workload: pings then quick explores, timed end to end.
fn drive_client(endpoint: &Endpoint, client_idx: usize) -> (Vec<f64>, Vec<f64>) {
    let mut client = Client::connect(endpoint).expect("client connects");
    let mut pings = Vec::with_capacity(PINGS_PER_CLIENT);
    for i in 0..PINGS_PER_CLIENT {
        let started = Instant::now();
        let reply = client
            .call(
                &Request::new(format!("p{client_idx}-{i}"), RequestBody::Ping),
                |_| {},
            )
            .expect("ping answered");
        assert!(matches!(reply, Event::Pong { .. }), "ping yields pong");
        pings.push(started.elapsed().as_secs_f64());
    }
    let mut explores = Vec::with_capacity(EXPLORES_PER_CLIENT);
    for i in 0..EXPLORES_PER_CLIENT {
        let spec = JobSpec {
            mode: Some("explore".to_string()),
            app: Some("drr".to_string()),
            quick: true,
            ..JobSpec::default()
        };
        let started = Instant::now();
        let reply = client
            .call(&Request::run(format!("e{client_idx}-{i}"), spec), |_| {})
            .expect("explore answered");
        assert!(
            matches!(reply, Event::Result { .. }),
            "explore yields a result"
        );
        explores.push(started.elapsed().as_secs_f64());
    }
    (pings, explores)
}

fn main() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
    let endpoint: Endpoint = format!("tcp:{}", listener.local_addr().expect("local addr"))
        .parse()
        .expect("endpoint parses");
    let server = Server::new(EngineConfig {
        jobs: 2,
        cache_dir: None,
        no_cache: true,
    })
    .expect("server starts");

    println!("# serve request-latency baseline\n");
    println!(
        "{CLIENTS} clients x ({PINGS_PER_CLIENT} pings + {EXPLORES_PER_CLIENT} quick DRR explores) against {endpoint}\n"
    );

    let mut pings: Vec<f64> = Vec::new();
    let mut explores: Vec<f64> = Vec::new();
    let mut exposition = String::new();
    std::thread::scope(|scope| {
        let server = &server;
        scope.spawn(move || server.serve_tcp(&listener).expect("server serves"));
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let endpoint = endpoint.clone();
                scope.spawn(move || drive_client(&endpoint, c))
            })
            .collect();
        for handle in handles {
            let (p, e) = handle.join().expect("client thread joins");
            pings.extend(p);
            explores.extend(e);
        }
        // The server's own view of the same workload, for the record.
        let mut client = Client::connect(&endpoint).expect("metrics client connects");
        if let Event::Metrics { text, .. } = client
            .call(&Request::new("m1", RequestBody::Metrics), |_| {})
            .expect("metrics answered")
        {
            exposition = text;
        }
        client
            .send(&Request::new("bye", RequestBody::Shutdown))
            .expect("shutdown sent");
    });

    pings.sort_by(f64::total_cmp);
    explores.sort_by(f64::total_cmp);
    let mut report = BenchReport::new("serve request latency (end to end, concurrent clients)");
    report.set_meta("units", "seconds");
    report.set_meta("clients", CLIENTS.to_string());
    report.set_meta(
        "notes",
        "client-side nearest-rank percentiles over ping and quick-DRR-explore round trips",
    );
    if let Ok(out) = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
    {
        if out.status.success() {
            report.set_meta("git_rev", String::from_utf8_lossy(&out.stdout).trim());
        }
    }
    for (name, samples) in [("ping", &pings), ("explore drr quick", &explores)] {
        let p50 = percentile(samples, 0.50);
        let p99 = percentile(samples, 0.99);
        println!(
            "{name:20} n={:3}  p50 {:>10.6}s  p99 {:>10.6}s",
            samples.len(),
            p50,
            p99
        );
        report.push(format!("{name} p50"), p50);
        report.push(format!("{name} p99"), p99);
    }

    println!("\n## server-side exposition (excerpt)\n");
    for line in exposition.lines().filter(|l| {
        l.contains("serve_request_latency") || l.contains("request_") && l.ends_with("_total")
    }) {
        println!("{line}");
    }

    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    let json = report.to_json().expect("report serialises");
    std::fs::write(&path, format!("{json}\n")).expect("BENCH_serve.json is writable");
    println!(
        "\nwrote {} ({} samples, host parallelism {})",
        path.display(),
        report.samples.len(),
        report.host_parallelism
    );
}
