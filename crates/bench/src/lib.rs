//! Shared helpers for the table/figure harness binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see `EXPERIMENTS.md` at the workspace root for the mapping and
//! the recorded paper-vs-measured comparison):
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1` | Table 1 — simulation-count reduction |
//! | `table2` | Table 2 — trade-offs among Pareto-optimal points |
//! | `fig3` | Figure 3 — URL time–energy exploration space + Pareto points |
//! | `fig4` | Figure 4 — Route Pareto charts (both planes, per network) |
//! | `headline` | §4 headline — gains versus the original SLL implementation |
//! | `static_vs_dynamic` | §1 motivation — dynamic vs compile-time worst-case footprint |
//! | `variance` | §4 stability — metric variation across input traces |
//! | `ablation_pruning` | pruning-fidelity ablation (step 1 vs exhaustive) |
//! | `ablation_fraction` | survivor-fraction sweep (pruning rate vs front recall) |
//! | `ablation_chunk` | chunk-capacity sweep for the chunked DDTs |
//! | `ablation_rov` | roving-pointer benefit under access-pattern sweeps |
//! | `ablation_energy` | Pareto-front stability under a perturbed energy model |
//! | `ablation_fairness` | DRR quantum (level of fairness) sweep |
//! | `ablation_burst` | DDT choice vs traffic burstiness (packet trains) |
//! | `ablation_alloc` | exploration robustness vs heap fit policy |
//! | `ablation_replacement` | exploration robustness vs L1 replacement policy |
//! | `ablation_spm` | scratchpad placement of DDT descriptors |
//! | `ablation_ga` | NSGA-II hyper-parameter robustness sweep |
//! | `heuristic` | NSGA-II heuristic exploration vs exhaustive step 1 |
//! | `extended_library` | 12-kind extended candidate set vs the paper's 10 |
//! | `extension_app` | full pipeline on the NAT gateway (fifth application) |

use ddtr_apps::AppKind;
use ddtr_core::{ExploreError, Methodology, MethodologyConfig, MethodologyOutcome};

/// Paper-reported rows of Table 1: (app, exhaustive, reduced, pareto).
pub const PAPER_TABLE1: [(&str, usize, usize, usize); 4] = [
    ("Route", 1400, 271, 7),
    ("URL", 500, 110, 4),
    ("IPchains", 2100, 546, 6),
    ("DRR", 500, 60, 3),
];

/// Paper-reported rows of Table 2: (app, energy%, time%, accesses%,
/// footprint%).
pub const PAPER_TABLE2: [(&str, u32, u32, u32, u32); 4] = [
    ("Route", 90, 20, 88, 30),
    ("URL", 52, 13, 70, 82),
    ("IPchains", 38, 3, 87, 63),
    ("DRR", 93, 48, 53, 80),
];

/// Runs the paper-sized methodology for one application.
///
/// # Errors
///
/// Propagates [`ExploreError`] from the pipeline.
pub fn paper_outcome(app: AppKind) -> Result<MethodologyOutcome, ExploreError> {
    Methodology::new(MethodologyConfig::paper(app)).run()
}

/// Formats a measured-vs-paper comparison cell.
#[must_use]
pub fn vs_paper(measured: impl std::fmt::Display, paper: impl std::fmt::Display) -> String {
    format!("{measured} (paper: {paper})")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_cover_all_apps() {
        assert_eq!(PAPER_TABLE1.len(), 4);
        assert_eq!(PAPER_TABLE2.len(), 4);
        for app in AppKind::ALL {
            assert!(PAPER_TABLE1.iter().any(|r| r.0 == app.to_string()));
            assert!(PAPER_TABLE2.iter().any(|r| r.0 == app.to_string()));
        }
    }

    #[test]
    fn vs_paper_formats() {
        assert_eq!(vs_paper(5, 7), "5 (paper: 7)");
    }
}
