//! Failure injection: behaviour of the DDT layer when the simulated heap
//! runs out — the embedded failure mode the footprint metric guards
//! against.

use ddtr_ddt::{DdtKind, TestRecord};
use ddtr_mem::{AllocError, CacheConfig, DramConfig, MemoryConfig, MemorySystem};

type Rec = TestRecord<64>;

/// A platform with a deliberately minuscule heap arena.
fn starved(arena_bytes: u64) -> MemorySystem {
    MemorySystem::new(MemoryConfig {
        l1: CacheConfig {
            capacity_bytes: 1024,
            line_bytes: 32,
            ways: 1,
            hit_cycles: 1,
            ..CacheConfig::default()
        },
        l2: None,
        dram: DramConfig {
            access_cycles: 50,
            capacity_bytes: arena_bytes,
        },
        ..MemoryConfig::tiny_for_tests()
    })
}

#[test]
fn allocator_reports_out_of_memory() {
    let mut mem = starved(256);
    let first = mem.alloc(128).expect("first allocation fits");
    let err = mem.alloc(512).expect_err("arena exhausted");
    assert!(matches!(err, AllocError::OutOfMemory { requested: 512 }));
    assert!(!first.is_null());
    assert_eq!(mem.alloc_stats().failed_allocs, 1);
}

#[test]
fn failed_allocations_do_not_corrupt_the_heap() {
    let mut mem = starved(1024);
    let a = mem.alloc(400).expect("fits");
    assert!(mem.alloc(800).is_err());
    // The heap remains fully usable after the failure.
    let b = mem.alloc(400).expect("remaining space still allocatable");
    assert_ne!(a, b);
    mem.free(a).expect("free");
    mem.free(b).expect("free");
    assert_eq!(mem.alloc_stats().live_gross_bytes, 0);
}

#[test]
fn every_ddt_panics_cleanly_on_heap_exhaustion() {
    for kind in DdtKind::EXTENDED {
        let result = std::panic::catch_unwind(|| {
            let mut mem = starved(2048);
            let mut ddt = kind.instantiate::<Rec>(&mut mem);
            for i in 0..1000 {
                ddt.insert(Rec { id: i, tag: 0 }, &mut mem);
            }
        });
        let err = result.expect_err(&format!("{kind} must hit the arena limit"));
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_default();
        assert!(
            msg.contains("simulated heap exhausted"),
            "{kind}: unexpected panic message `{msg}`"
        );
    }
}

#[test]
fn containers_fit_exactly_while_the_arena_allows() {
    // Fill an SLL until just before exhaustion, verifying footprint
    // accounting agrees with the arena occupancy at every step.
    let mut mem = starved(4096);
    let mut ddt = DdtKind::Sll.instantiate::<Rec>(&mut mem);
    let mut inserted = 0u64;
    loop {
        let live = mem.alloc_stats().live_gross_bytes;
        if live + 128 > 4096 {
            break;
        }
        ddt.insert(
            Rec {
                id: inserted,
                tag: 0,
            },
            &mut mem,
        );
        inserted += 1;
        assert_eq!(ddt.footprint_bytes(), mem.alloc_stats().live_gross_bytes);
    }
    assert!(inserted > 10, "a 4 KiB arena holds dozens of 64 B records");
    // Clearing returns everything.
    ddt.clear(&mut mem);
    let only_descriptor = mem.alloc_stats().live_gross_bytes;
    assert!(only_descriptor <= 40, "left {only_descriptor} live bytes");
}

#[test]
fn fragmented_arena_still_serves_small_requests() {
    let mut mem = starved(4096);
    // Fill the arena completely, then free every other block, creating
    // holes of one block each with live blocks between them.
    let mut blocks = Vec::new();
    while let Ok(addr) = mem.alloc(128) {
        blocks.push(addr);
    }
    assert!(blocks.len() >= 16, "arena should hold many blocks");
    for (i, b) in blocks.iter().enumerate() {
        if i % 2 == 0 {
            mem.free(*b).expect("free");
        }
    }
    // A large request no hole can serve fails...
    assert!(mem.alloc(1024).is_err());
    // ...but hole-sized requests succeed (first fit reuses the gaps).
    for _ in 0..8 {
        mem.alloc(120).expect("hole-sized allocation fits");
    }
}
