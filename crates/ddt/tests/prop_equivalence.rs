//! Model-based property tests: every DDT implementation (the paper's ten
//! plus the two extensions) must behave exactly like a reference `Vec`
//! model under arbitrary operation sequences, and must never leak or
//! double-free simulated heap blocks.

use ddtr_ddt::{Ddt, DdtKind, TestRecord};
use ddtr_mem::{MemoryConfig, MemorySystem, SimAllocator};
use proptest::prelude::*;

type Rec = TestRecord<24>;

/// The operations of the common DDT interface, with small key/index spaces
/// so that hits and misses both occur.
#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Get(u64),
    GetNth(usize),
    Update(u64, u64),
    Remove(u64),
    RemoveNth(usize),
    Scan,
    Clear,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            4 => (0u64..24, any::<u64>()).prop_map(|(k, t)| Op::Insert(k, t)),
            3 => (0u64..24).prop_map(Op::Get),
            3 => (0usize..32).prop_map(Op::GetNth),
            2 => (0u64..24, any::<u64>()).prop_map(|(k, t)| Op::Update(k, t)),
            2 => (0u64..24).prop_map(Op::Remove),
            2 => (0usize..32).prop_map(Op::RemoveNth),
            1 => Just(Op::Scan),
            1 => Just(Op::Clear),
        ],
        1..120,
    )
}

/// Reference model: a plain vector with first-match key semantics.
#[derive(Default)]
struct VecModel {
    items: Vec<Rec>,
}

impl VecModel {
    fn apply(&mut self, op: &Op) -> ModelOut {
        match op {
            Op::Insert(k, t) => {
                self.items.push(Rec { id: *k, tag: *t });
                ModelOut::Unit
            }
            Op::Get(k) => ModelOut::Rec(self.items.iter().find(|r| r.id == *k).copied()),
            Op::GetNth(i) => ModelOut::Rec(self.items.get(*i).copied()),
            Op::Update(k, t) => {
                if let Some(r) = self.items.iter_mut().find(|r| r.id == *k) {
                    *r = Rec { id: *k, tag: *t };
                    ModelOut::Bool(true)
                } else {
                    ModelOut::Bool(false)
                }
            }
            Op::Remove(k) => {
                if let Some(pos) = self.items.iter().position(|r| r.id == *k) {
                    ModelOut::Rec(Some(self.items.remove(pos)))
                } else {
                    ModelOut::Rec(None)
                }
            }
            Op::RemoveNth(i) => {
                if *i < self.items.len() {
                    ModelOut::Rec(Some(self.items.remove(*i)))
                } else {
                    ModelOut::Rec(None)
                }
            }
            Op::Scan => ModelOut::Seq(self.items.clone()),
            Op::Clear => {
                self.items.clear();
                ModelOut::Unit
            }
        }
    }
}

#[derive(Debug, PartialEq)]
enum ModelOut {
    Unit,
    Bool(bool),
    Rec(Option<Rec>),
    Seq(Vec<Rec>),
}

fn apply_ddt(ddt: &mut dyn Ddt<Rec>, op: &Op, mem: &mut MemorySystem) -> ModelOut {
    match op {
        Op::Insert(k, t) => {
            ddt.insert(Rec { id: *k, tag: *t }, mem);
            ModelOut::Unit
        }
        Op::Get(k) => ModelOut::Rec(ddt.get(*k, mem)),
        Op::GetNth(i) => ModelOut::Rec(ddt.get_nth(*i, mem)),
        Op::Update(k, t) => ModelOut::Bool(ddt.update(*k, Rec { id: *k, tag: *t }, mem)),
        Op::Remove(k) => ModelOut::Rec(ddt.remove(*k, mem)),
        Op::RemoveNth(i) => ModelOut::Rec(ddt.remove_nth(*i, mem)),
        Op::Scan => {
            let mut seq = Vec::new();
            ddt.scan(mem, &mut |r| {
                seq.push(*r);
                true
            });
            ModelOut::Seq(seq)
        }
        Op::Clear => {
            ddt.clear(mem);
            ModelOut::Unit
        }
    }
}

fn check_kind(kind: DdtKind, ops: &[Op]) -> Result<(), TestCaseError> {
    let mut mem = MemorySystem::new(MemoryConfig::default());
    let mut ddt = kind.instantiate::<Rec>(&mut mem);
    let mut model = VecModel::default();
    for (step, op) in ops.iter().enumerate() {
        // The container contract expects unique keys for key-based
        // operations; skip inserts that would duplicate a live key.
        if let Op::Insert(k, _) = op {
            if model.items.iter().any(|r| r.id == *k) {
                continue;
            }
        }
        let expected = model.apply(op);
        let actual = apply_ddt(ddt.as_mut(), op, &mut mem);
        prop_assert_eq!(
            &actual,
            &expected,
            "kind {} diverged at step {} on {:?}",
            kind,
            step,
            op
        );
        prop_assert_eq!(ddt.len(), model.items.len());
    }
    // Heap hygiene: clearing the container leaves only its descriptor (and
    // for the hash kind, the initial bucket array) live, and the container
    // knows exactly what it still holds.
    ddt.clear(&mut mem);
    let live = mem.alloc_stats().live_gross_bytes;
    prop_assert_eq!(
        live,
        ddt.footprint_bytes(),
        "kind {} footprint drifted from live heap after clear",
        kind
    );
    prop_assert!(
        live <= SimAllocator::gross_size(40) + SimAllocator::gross_size(64),
        "kind {} leaked {} live bytes after clear",
        kind,
        live
    );
    Ok(())
}

macro_rules! equivalence_test {
    ($name:ident, $kind:expr) => {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn $name(ops in ops()) {
                check_kind($kind, &ops)?;
            }
        }
    };
}

equivalence_test!(array_matches_model, DdtKind::Array);
equivalence_test!(array_ptr_matches_model, DdtKind::ArrayPtr);
equivalence_test!(sll_matches_model, DdtKind::Sll);
equivalence_test!(dll_matches_model, DdtKind::Dll);
equivalence_test!(sll_rov_matches_model, DdtKind::SllRov);
equivalence_test!(dll_rov_matches_model, DdtKind::DllRov);
equivalence_test!(sll_chunk_matches_model, DdtKind::SllChunk);
equivalence_test!(dll_chunk_matches_model, DdtKind::DllChunk);
equivalence_test!(sll_chunk_rov_matches_model, DdtKind::SllChunkRov);
equivalence_test!(dll_chunk_rov_matches_model, DdtKind::DllChunkRov);
equivalence_test!(hash_matches_model, DdtKind::Hash);
equivalence_test!(avl_matches_model, DdtKind::Avl);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Footprint reported by the container always matches live heap bytes
    /// attributable to it (its descriptor plus its blocks).
    #[test]
    fn footprint_matches_live_heap(ops in ops(), kind_idx in 0usize..12) {
        let kind = DdtKind::EXTENDED[kind_idx];
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut ddt = kind.instantiate::<Rec>(&mut mem);
        for op in &ops {
            apply_ddt(ddt.as_mut(), op, &mut mem);
            prop_assert_eq!(
                ddt.footprint_bytes(),
                mem.alloc_stats().live_gross_bytes,
                "kind {} footprint drifted from allocator", kind
            );
        }
    }

    /// All twelve kinds (paper library + extensions) agree with each other
    /// operation-by-operation.
    #[test]
    fn all_kinds_agree(ops in ops()) {
        let mut systems: Vec<(MemorySystem, Box<dyn Ddt<Rec>>)> = DdtKind::EXTENDED
            .iter()
            .map(|k| {
                let mut mem = MemorySystem::new(MemoryConfig::default());
                let ddt = k.instantiate::<Rec>(&mut mem);
                (mem, ddt)
            })
            .collect();
        let mut live_keys = std::collections::BTreeSet::new();
        for op in &ops {
            // Keep keys unique (the container contract for key-based ops).
            match op {
                Op::Insert(k, _)
                    if !live_keys.insert(*k) => {
                        continue;
                    }
                Op::Remove(k) => {
                    live_keys.remove(k);
                }
                Op::RemoveNth(_) | Op::Clear => {
                    // Recompute below from the first container's scan.
                }
                _ => {}
            }
            let mut outputs = Vec::new();
            for (mem, ddt) in &mut systems {
                outputs.push(apply_ddt(ddt.as_mut(), op, mem));
            }
            for w in outputs.windows(2) {
                prop_assert_eq!(&w[0], &w[1], "kinds disagree on {:?}", op);
            }
            match op {
                Op::RemoveNth(_) => {
                    if let ModelOut::Rec(Some(r)) = &outputs[0] {
                        live_keys.remove(&r.id);
                    }
                }
                Op::Clear => live_keys.clear(),
                _ => {}
            }
        }
    }
}
