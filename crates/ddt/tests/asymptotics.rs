//! Asymptotic cost characterisation: the access-count growth of every
//! implementation must match its theoretical complexity class. These are
//! the facts the whole exploration methodology trades on, so they get
//! their own test suite.

use ddtr_ddt::{Ddt, DdtKind, TestRecord, CHUNK_CAPACITY};
use ddtr_mem::{MemoryConfig, MemorySystem};

type Rec = TestRecord<32>;

fn filled(kind: DdtKind, n: u64) -> (MemorySystem, Box<dyn Ddt<Rec>>) {
    let mut mem = MemorySystem::new(MemoryConfig::default());
    let mut ddt = kind.instantiate::<Rec>(&mut mem);
    for i in 0..n {
        ddt.insert(Rec { id: i, tag: 0 }, &mut mem);
    }
    (mem, ddt)
}

/// Accesses consumed by `f`.
fn cost(mem: &mut MemorySystem, f: impl FnOnce(&mut MemorySystem)) -> u64 {
    let before = mem.stats().accesses();
    f(mem);
    mem.stats().accesses() - before
}

/// Cost of `get_nth(n-1)` on a container of n records.
fn tail_read_cost(kind: DdtKind, n: u64) -> u64 {
    let (mut mem, mut ddt) = filled(kind, n);
    cost(&mut mem, |m| {
        ddt.get_nth(n as usize - 1, m);
    })
}

#[test]
fn array_positional_access_is_constant() {
    assert_eq!(
        tail_read_cost(DdtKind::Array, 32),
        tail_read_cost(DdtKind::Array, 256)
    );
    assert_eq!(
        tail_read_cost(DdtKind::ArrayPtr, 32),
        tail_read_cost(DdtKind::ArrayPtr, 256)
    );
}

#[test]
fn sll_positional_access_is_linear() {
    let small = tail_read_cost(DdtKind::Sll, 64);
    let large = tail_read_cost(DdtKind::Sll, 256);
    let ratio = large as f64 / small as f64;
    assert!((3.0..5.0).contains(&ratio), "expected ~4x, got {ratio:.2}x");
}

#[test]
fn dll_positional_access_from_tail_is_constant() {
    // The DLL walks from the nearest end: the last element is one hop from
    // the tail pointer regardless of n.
    assert_eq!(
        tail_read_cost(DdtKind::Dll, 32),
        tail_read_cost(DdtKind::Dll, 256)
    );
}

#[test]
fn chunked_positional_access_divides_by_chunk_capacity() {
    let sll = tail_read_cost(DdtKind::Sll, 256);
    let chunked = tail_read_cost(DdtKind::SllChunk, 256);
    let ratio = sll as f64 / chunked as f64;
    // One header read per CHUNK_CAPACITY records instead of one pointer
    // per record; allow generous slack for fixed costs.
    assert!(
        ratio > CHUNK_CAPACITY as f64 / 2.0,
        "chunking should cut the walk by ~{CHUNK_CAPACITY}x, got {ratio:.2}x"
    );
}

#[test]
fn mid_element_search_is_linear_for_lists_and_arrays() {
    for kind in [
        DdtKind::Array,
        DdtKind::ArrayPtr,
        DdtKind::Sll,
        DdtKind::Dll,
    ] {
        let probe = |n: u64| {
            let (mut mem, mut ddt) = filled(kind, n);
            cost(&mut mem, |m| {
                ddt.get(n / 2, m);
            })
        };
        let small = probe(64);
        let large = probe(256);
        let ratio = large as f64 / small as f64;
        assert!(
            (2.5..6.0).contains(&ratio),
            "{kind}: expected ~4x, got {ratio:.2}x"
        );
    }
}

#[test]
fn repeated_key_lookup_is_constant_with_roving_pointer() {
    for kind in [DdtKind::SllRov, DdtKind::DllRov] {
        let (mut mem, mut ddt) = filled(kind, 256);
        ddt.get(200, &mut mem); // position the roving pointer
        let repeat = cost(&mut mem, |m| {
            ddt.get(200, m);
        });
        assert!(
            repeat <= 5,
            "{kind}: roving repeat lookup should be O(1), cost {repeat}"
        );
    }
}

#[test]
fn array_removal_cost_is_linear_in_suffix_length() {
    let (mut mem, mut ddt) = filled(DdtKind::Array, 128);
    let front = cost(&mut mem, |m| {
        ddt.remove_nth(0, m);
    });
    let back = cost(&mut mem, |m| {
        ddt.remove_nth(ddt.len() - 1, m);
    });
    assert!(
        front > back * 10,
        "removing the head must shift the whole suffix: {front} vs {back}"
    );
}

#[test]
fn list_tail_removal_is_cheap_for_dll_only() {
    let n = 128;
    let (mut mem, mut sll) = filled(DdtKind::Sll, n);
    let sll_cost = cost(&mut mem, |m| {
        sll.remove_nth(n as usize - 1, m);
    });
    let (mut mem2, mut dll) = filled(DdtKind::Dll, n);
    let dll_cost = cost(&mut mem2, |m| {
        dll.remove_nth(n as usize - 1, m);
    });
    assert!(
        sll_cost > dll_cost * 5,
        "SLL must rescan for the predecessor: {sll_cost} vs {dll_cost}"
    );
}

#[test]
fn hash_key_search_is_constant_at_scale() {
    // Chains stay O(1) expected as the table grows with the population.
    let probe = |n: u64| {
        let (mut mem, mut ddt) = filled(DdtKind::Hash, n);
        cost(&mut mem, |m| {
            ddt.get(n - 1, m);
        })
    };
    let small = probe(64);
    let large = probe(1024);
    assert!(
        large <= small * 2,
        "hash probe must not grow with n ({small} -> {large})"
    );
}

#[test]
fn avl_key_search_grows_logarithmically() {
    let probe = |n: u64| {
        let (mut mem, mut ddt) = filled(DdtKind::Avl, n);
        // Probe a mid-population key so the descent reaches a typical depth.
        cost(&mut mem, |m| {
            ddt.get(n / 2, m);
        })
    };
    let small = probe(64); // depth ~6
    let large = probe(4096); // depth ~12
    assert!(
        large <= small * 3,
        "tree descent must grow ~log n, not linearly ({small} -> {large})"
    );
    // And it must beat the linear probe of the plain list decisively.
    let (mut mem, mut sll) = filled(DdtKind::Sll, 4096);
    let linear = cost(&mut mem, |m| {
        sll.get(2048, m);
    });
    assert!(linear > large * 20, "log vs linear: {large} vs {linear}");
}

#[test]
fn insert_is_constant_amortised_for_all_kinds() {
    for kind in DdtKind::EXTENDED {
        let insert_avg = |n: u64| {
            let mut mem = MemorySystem::new(MemoryConfig::default());
            let mut ddt = kind.instantiate::<Rec>(&mut mem);
            let c = cost(&mut mem, |m| {
                for i in 0..n {
                    ddt.insert(Rec { id: i, tag: 0 }, m);
                }
            });
            c as f64 / n as f64
        };
        let small = insert_avg(64);
        let large = insert_avg(512);
        assert!(
            large < small * 2.0,
            "{kind}: amortised insert must not grow with n ({small:.1} -> {large:.1})"
        );
    }
}

#[test]
fn footprint_ranks_match_structure_overheads() {
    // For equal content, per-record overhead orders the footprints:
    // DLL nodes (2 pointers) > SLL nodes (1 pointer); chunked lists
    // amortise headers below plain lists at full chunks.
    let n = 128;
    let fp = |kind: DdtKind| filled(kind, n).1.footprint_bytes();
    assert!(fp(DdtKind::Dll) > fp(DdtKind::Sll));
    assert!(fp(DdtKind::DllChunk) >= fp(DdtKind::SllChunk));
    assert!(fp(DdtKind::Sll) > fp(DdtKind::SllChunk));
}
