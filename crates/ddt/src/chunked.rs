//! `SLL(AR)`, `DLL(AR)`, `SLL(ARO)`, `DLL(ARO)` — linked lists of array
//! chunks (unrolled linked lists), optionally with a roving chunk pointer.

use crate::ddt::Ddt;
use crate::kind::DdtKind;
use crate::layout::{CHUNK_CAPACITY, DESCRIPTOR_BYTES, KEY_BYTES, PTR_BYTES};
use crate::record::Record;
use ddtr_mem::{MemorySystem, SimAllocator, VirtAddr};

#[derive(Debug)]
struct Chunk<R> {
    addr: VirtAddr,
    recs: Vec<R>,
}

/// An unrolled linked list: a (singly or doubly) linked chain of
/// fixed-capacity array chunks, optionally with a roving chunk pointer.
///
/// This single type implements four of the ten library DDTs (`SLL(AR)`,
/// `DLL(AR)`, `SLL(ARO)`, `DLL(ARO)`). Chunking amortises link-following
/// over [`CHUNK_CAPACITY`] records — traversal reads one header per chunk
/// instead of one pointer per record — at the price of slack slots in
/// partially filled chunks.
///
/// # Panics
///
/// All mutating operations panic if the simulated heap is exhausted.
///
/// # Example
///
/// ```
/// use ddtr_ddt::{ChunkedDdt, Ddt, Record};
/// use ddtr_mem::{MemoryConfig, MemorySystem};
///
/// # #[derive(Clone)] struct R(u64);
/// # impl Record for R { const SIZE: u64 = 16; fn key(&self) -> u64 { self.0 } }
/// let mut mem = MemorySystem::new(MemoryConfig::default());
/// let mut list = ChunkedDdt::new(&mut mem, false, false); // SLL(AR)
/// for i in 0..20 { list.insert(R(i), &mut mem); }
/// assert_eq!(list.get_nth(19, &mut mem).map(|r| r.0), Some(19));
/// ```
#[derive(Debug)]
pub struct ChunkedDdt<R: Record> {
    desc: VirtAddr,
    desc_bytes: u64,
    doubly: bool,
    roving: bool,
    rov_chunk: Option<usize>,
    chunks: Vec<Chunk<R>>,
    len: usize,
    chunk_capacity: usize,
}

impl<R: Record> ChunkedDdt<R> {
    /// Creates a chunked list with the library-default
    /// [`CHUNK_CAPACITY`].
    ///
    /// # Panics
    ///
    /// Panics if the simulated heap cannot hold the descriptor.
    #[must_use]
    pub fn new(mem: &mut MemorySystem, doubly: bool, roving: bool) -> Self {
        Self::with_chunk_capacity(mem, doubly, roving, CHUNK_CAPACITY)
    }

    /// Creates a chunked list with an explicit records-per-chunk capacity
    /// (used by the chunk-size ablation bench).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_capacity` is zero or the heap is exhausted.
    #[must_use]
    pub fn with_chunk_capacity(
        mem: &mut MemorySystem,
        doubly: bool,
        roving: bool,
        chunk_capacity: usize,
    ) -> Self {
        assert!(chunk_capacity > 0, "chunk capacity must be non-zero");
        let desc_bytes = if roving {
            DESCRIPTOR_BYTES + PTR_BYTES
        } else {
            DESCRIPTOR_BYTES
        };
        let desc = mem
            .alloc_hot(desc_bytes)
            .expect("simulated heap exhausted allocating chunked-list descriptor");
        mem.write(desc, desc_bytes);
        ChunkedDdt {
            desc,
            desc_bytes,
            doubly,
            roving,
            rov_chunk: None,
            chunks: Vec::new(),
            len: 0,
            chunk_capacity,
        }
    }

    fn header_bytes(&self) -> u64 {
        // next + count, plus prev when doubly linked
        if self.doubly {
            3 * PTR_BYTES
        } else {
            2 * PTR_BYTES
        }
    }

    fn chunk_bytes(&self) -> u64 {
        self.header_bytes() + self.chunk_capacity as u64 * R::SIZE
    }

    fn slot(&self, chunk: usize, idx: usize) -> VirtAddr {
        self.chunks[chunk]
            .addr
            .offset(self.header_bytes() + idx as u64 * R::SIZE)
    }

    fn rov_field(&self) -> VirtAddr {
        self.desc.offset(DESCRIPTOR_BYTES)
    }

    /// Charges header reads for hopping `hops` chunks starting at `from`.
    fn charge_chunk_walk(&self, from: usize, hops: usize, dir: isize, mem: &mut MemorySystem) {
        let mut i = from as isize;
        for _ in 0..hops {
            mem.read(self.chunks[i as usize].addr, self.header_bytes());
            mem.touch_cpu(1);
            i += dir;
        }
    }

    /// Logical index of the first record in `chunk`.
    fn chunk_base(&self, chunk: usize) -> usize {
        self.chunks[..chunk].iter().map(|c| c.recs.len()).sum()
    }

    /// Key probe. Returns (chunk, slot).
    ///
    /// Roving variants first probe the roving chunk (the "last hit" chunk);
    /// packet-burst lookups of the same or a neighbouring key then avoid
    /// the chain walk. On a roving miss the search falls back to a head
    /// scan, so first-match semantics hold whenever keys are unique (which
    /// the container contract expects for key-based operations).
    fn find(&mut self, key: u64, mem: &mut MemorySystem) -> Option<(usize, usize)> {
        let n_chunks = self.chunks.len();
        if self.roving {
            mem.read(self.rov_field(), PTR_BYTES);
            if let Some(c) = self.rov_chunk.filter(|&c| c < n_chunks) {
                mem.read(self.chunks[c].addr, self.header_bytes());
                for (s, r) in self.chunks[c].recs.iter().enumerate() {
                    mem.read(self.slot(c, s), KEY_BYTES);
                    mem.touch_cpu(1);
                    if r.key() == key {
                        return Some((c, s));
                    }
                }
            }
        }
        mem.read(self.desc, PTR_BYTES); // head
        let mut hit = None;
        'outer: for (c, chunk) in self.chunks.iter().enumerate() {
            mem.read(chunk.addr, self.header_bytes()); // count + links
            for (s, r) in chunk.recs.iter().enumerate() {
                mem.read(self.slot(c, s), KEY_BYTES);
                mem.touch_cpu(1);
                if r.key() == key {
                    hit = Some((c, s));
                    break 'outer;
                }
            }
        }
        if let Some((c, _)) = hit {
            if self.roving {
                self.rov_chunk = Some(c);
                mem.write(self.rov_field(), PTR_BYTES);
            }
        }
        hit
    }

    /// Positional locate: translate logical `idx` into (chunk, slot) and
    /// charge the chunk hops from the cheapest entry point.
    fn locate(&mut self, idx: usize, mem: &mut MemorySystem) -> (usize, usize) {
        debug_assert!(idx < self.len);
        let mut target = 0;
        let mut base = 0;
        for (c, chunk) in self.chunks.iter().enumerate() {
            if idx < base + chunk.recs.len() {
                target = c;
                break;
            }
            base += chunk.recs.len();
        }
        let slot = idx - self.chunk_base(target);
        let n_chunks = self.chunks.len();
        // Entry points: head, tail (doubly), roving chunk.
        let mut best = (target, 0usize, 1isize, false);
        if self.doubly {
            let from_tail = n_chunks - 1 - target;
            if from_tail < best.0 {
                best = (from_tail, n_chunks - 1, -1, false);
            }
        }
        if self.roving {
            if let Some(r) = self.rov_chunk.filter(|&r| r < n_chunks) {
                if target >= r && target - r < best.0 {
                    best = (target - r, r, 1, true);
                }
                if self.doubly && r > target && r - target < best.0 {
                    best = (r - target, r, -1, true);
                }
            }
        }
        let (hops, start, dir, via_rov) = best;
        if via_rov {
            mem.read(self.rov_field(), PTR_BYTES);
        } else {
            mem.read(self.desc, PTR_BYTES);
        }
        self.charge_chunk_walk(start, hops, dir, mem);
        mem.read(self.chunks[target].addr, self.header_bytes()); // target header
        if self.roving {
            self.rov_chunk = Some(target);
            mem.write(self.rov_field(), PTR_BYTES);
        }
        (target, slot)
    }

    /// Removes the record at (chunk, slot): intra-chunk shift, chunk unlink
    /// when emptied.
    fn remove_at(&mut self, chunk: usize, slot: usize, mem: &mut MemorySystem) -> R {
        mem.read(self.slot(chunk, slot), R::SIZE);
        let chunk_len = self.chunks[chunk].recs.len();
        for s in slot + 1..chunk_len {
            mem.read(self.slot(chunk, s), R::SIZE);
            mem.write(self.slot(chunk, s - 1), R::SIZE);
        }
        mem.write(self.chunks[chunk].addr, PTR_BYTES); // chunk count
        mem.write(self.desc.offset(2 * PTR_BYTES), PTR_BYTES); // total count
        let rec = self.chunks[chunk].recs.remove(slot);
        self.len -= 1;
        if self.chunks[chunk].recs.is_empty() {
            // Unlink and free the emptied chunk.
            if chunk == 0 {
                mem.write(self.desc, PTR_BYTES); // head
            } else {
                mem.write(self.chunks[chunk - 1].addr, PTR_BYTES); // prev.next
            }
            if self.doubly {
                if chunk + 1 < self.chunks.len() {
                    mem.write(self.chunks[chunk + 1].addr, PTR_BYTES); // next.prev
                } else {
                    mem.write(self.desc.offset(PTR_BYTES), PTR_BYTES); // tail
                }
            } else if chunk + 1 == self.chunks.len() {
                mem.write(self.desc.offset(PTR_BYTES), PTR_BYTES); // tail
            }
            let dead = self.chunks.remove(chunk);
            mem.free(dead.addr).expect("chunk is live");
            self.rov_chunk = match self.rov_chunk {
                Some(r) if r == chunk => None,
                Some(r) if r > chunk => Some(r - 1),
                other => other,
            };
        }
        rec
    }
}

impl<R: Record> Ddt<R> for ChunkedDdt<R> {
    fn kind(&self) -> DdtKind {
        match (self.doubly, self.roving) {
            (false, false) => DdtKind::SllChunk,
            (true, false) => DdtKind::DllChunk,
            (false, true) => DdtKind::SllChunkRov,
            (true, true) => DdtKind::DllChunkRov,
        }
    }

    fn insert(&mut self, rec: R, mem: &mut MemorySystem) {
        mem.read(self.desc.offset(PTR_BYTES), PTR_BYTES); // tail
        let need_chunk = self
            .chunks
            .last()
            .is_none_or(|c| c.recs.len() == self.chunk_capacity);
        if need_chunk {
            let addr = mem
                .alloc(self.chunk_bytes())
                .expect("simulated heap exhausted allocating chunk");
            mem.write(addr, self.header_bytes()); // initialise links + count
            if let Some(last) = self.chunks.last() {
                mem.write(last.addr, PTR_BYTES); // old tail .next
            } else {
                mem.write(self.desc, PTR_BYTES); // head
            }
            mem.write(self.desc.offset(PTR_BYTES), PTR_BYTES); // tail
            self.chunks.push(Chunk {
                addr,
                recs: Vec::with_capacity(self.chunk_capacity),
            });
        } else {
            mem.read(
                self.chunks.last().expect("non-empty").addr,
                self.header_bytes(),
            );
        }
        let c = self.chunks.len() - 1;
        let s = self.chunks[c].recs.len();
        mem.write(self.slot(c, s), R::SIZE);
        mem.write(self.chunks[c].addr, PTR_BYTES); // chunk count
        mem.write(self.desc.offset(2 * PTR_BYTES), PTR_BYTES); // total count
        self.chunks[c].recs.push(rec);
        self.len += 1;
    }

    fn get(&mut self, key: u64, mem: &mut MemorySystem) -> Option<R> {
        let (c, s) = self.find(key, mem)?;
        mem.read(self.slot(c, s), R::SIZE);
        Some(self.chunks[c].recs[s].clone())
    }

    fn get_nth(&mut self, idx: usize, mem: &mut MemorySystem) -> Option<R> {
        if idx >= self.len {
            return None;
        }
        let (c, s) = self.locate(idx, mem);
        mem.read(self.slot(c, s), R::SIZE);
        Some(self.chunks[c].recs[s].clone())
    }

    fn update(&mut self, key: u64, rec: R, mem: &mut MemorySystem) -> bool {
        let Some((c, s)) = self.find(key, mem) else {
            return false;
        };
        mem.write(self.slot(c, s), R::SIZE);
        self.chunks[c].recs[s] = rec;
        true
    }

    fn remove(&mut self, key: u64, mem: &mut MemorySystem) -> Option<R> {
        let (c, s) = if self.doubly {
            self.find(key, mem)?
        } else {
            // SLL chunk chain: rescan from the head so the predecessor
            // chunk is known if the victim chunk empties.
            mem.read(self.desc, PTR_BYTES);
            let mut hit = None;
            'outer: for (c, chunk) in self.chunks.iter().enumerate() {
                mem.read(chunk.addr, self.header_bytes());
                for (s, r) in chunk.recs.iter().enumerate() {
                    mem.read(self.slot(c, s), KEY_BYTES);
                    mem.touch_cpu(1);
                    if r.key() == key {
                        hit = Some((c, s));
                        break 'outer;
                    }
                }
            }
            hit?
        };
        Some(self.remove_at(c, s, mem))
    }

    fn remove_nth(&mut self, idx: usize, mem: &mut MemorySystem) -> Option<R> {
        if idx >= self.len {
            return None;
        }
        let (c, s) = if self.doubly {
            self.locate(idx, mem)
        } else {
            // Walk from the head (predecessor needed for unlink).
            mem.read(self.desc, PTR_BYTES);
            let mut base = 0;
            let mut target = 0;
            for (ci, chunk) in self.chunks.iter().enumerate() {
                mem.read(chunk.addr, self.header_bytes());
                mem.touch_cpu(1);
                if idx < base + chunk.recs.len() {
                    target = ci;
                    break;
                }
                base += chunk.recs.len();
            }
            (target, idx - base)
        };
        Some(self.remove_at(c, s, mem))
    }

    fn scan(&mut self, mem: &mut MemorySystem, visit: &mut dyn FnMut(&R) -> bool) {
        mem.read(self.desc, PTR_BYTES);
        for c in 0..self.chunks.len() {
            mem.read(self.chunks[c].addr, self.header_bytes());
            for s in 0..self.chunks[c].recs.len() {
                mem.read(self.slot(c, s), R::SIZE);
                mem.touch_cpu(1);
                if !visit(&self.chunks[c].recs[s]) {
                    return;
                }
            }
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn clear(&mut self, mem: &mut MemorySystem) {
        for chunk in self.chunks.drain(..) {
            mem.free(chunk.addr).expect("chunk is live");
        }
        self.len = 0;
        self.rov_chunk = None;
        mem.write(self.desc, self.desc_bytes);
    }

    fn footprint_bytes(&self) -> u64 {
        SimAllocator::gross_size(self.desc_bytes)
            + self.chunks.len() as u64 * SimAllocator::gross_size(self.chunk_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TestRecord;
    use ddtr_mem::MemoryConfig;

    type Rec = TestRecord<32>;

    fn rec(id: u64) -> Rec {
        Rec { id, tag: id + 7 }
    }

    fn mem() -> MemorySystem {
        MemorySystem::new(MemoryConfig::default())
    }

    fn fill(list: &mut ChunkedDdt<Rec>, mem: &mut MemorySystem, n: u64) {
        for i in 0..n {
            list.insert(rec(i), mem);
        }
    }

    fn access_cost<F: FnOnce(&mut MemorySystem)>(mem: &mut MemorySystem, f: F) -> u64 {
        let before = mem.stats().accesses();
        f(mem);
        mem.stats().accesses() - before
    }

    #[test]
    fn four_kinds_report_correctly() {
        let mut m = mem();
        assert_eq!(
            ChunkedDdt::<Rec>::new(&mut m, false, false).kind(),
            DdtKind::SllChunk
        );
        assert_eq!(
            ChunkedDdt::<Rec>::new(&mut m, true, false).kind(),
            DdtKind::DllChunk
        );
        assert_eq!(
            ChunkedDdt::<Rec>::new(&mut m, false, true).kind(),
            DdtKind::SllChunkRov
        );
        assert_eq!(
            ChunkedDdt::<Rec>::new(&mut m, true, true).kind(),
            DdtKind::DllChunkRov
        );
    }

    #[test]
    fn insert_get_round_trip_all_variants() {
        for (doubly, roving) in [(false, false), (true, false), (false, true), (true, true)] {
            let mut m = mem();
            let mut list = ChunkedDdt::new(&mut m, doubly, roving);
            fill(&mut list, &mut m, 30);
            for i in 0..30 {
                assert_eq!(
                    list.get(i, &mut m),
                    Some(rec(i)),
                    "doubly={doubly} roving={roving}"
                );
                assert_eq!(list.get_nth(i as usize, &mut m), Some(rec(i)));
            }
            assert_eq!(list.get(1000, &mut m), None);
            assert_eq!(list.get_nth(30, &mut m), None);
        }
    }

    #[test]
    fn chunks_allocated_on_demand() {
        let mut m = mem();
        let mut list = ChunkedDdt::new(&mut m, false, false);
        fill(&mut list, &mut m, CHUNK_CAPACITY as u64);
        assert_eq!(list.chunks.len(), 1);
        list.insert(rec(99), &mut m);
        assert_eq!(list.chunks.len(), 2);
    }

    #[test]
    fn positional_walk_cheaper_than_plain_list() {
        // The whole point of chunking: reaching record 63 hops 8 chunk
        // headers instead of 63 node pointers.
        let mut m = mem();
        let mut chunked = ChunkedDdt::new(&mut m, false, false);
        fill(&mut chunked, &mut m, 64);
        let cost = access_cost(&mut m, |m| {
            chunked.get_nth(63, m);
        });
        assert!(
            cost < 20,
            "chunk walk should be ~n/8 header reads, got {cost}"
        );
    }

    #[test]
    fn roving_chunk_pointer_helps_sequential_access() {
        let mut m = mem();
        let mut plain = ChunkedDdt::new(&mut m, false, false);
        let mut rov = ChunkedDdt::new(&mut m, false, true);
        fill(&mut plain, &mut m, 128);
        fill(&mut rov, &mut m, 128);
        let plain_cost = access_cost(&mut m, |m| {
            for i in 0..128 {
                plain.get_nth(i, m);
            }
        });
        let rov_cost = access_cost(&mut m, |m| {
            for i in 0..128 {
                rov.get_nth(i, m);
            }
        });
        assert!(
            rov_cost < plain_cost,
            "roving {rov_cost} vs plain {plain_cost}"
        );
    }

    #[test]
    fn remove_shifts_within_chunk_only() {
        let mut m = mem();
        let mut list = ChunkedDdt::new(&mut m, false, false);
        fill(&mut list, &mut m, 24); // 3 chunks of 8
        assert_eq!(list.remove(4, &mut m), Some(rec(4)));
        assert_eq!(list.len(), 23);
        // order preserved
        let order: Vec<u64> = (0..23)
            .map(|i| list.get_nth(i, &mut m).unwrap().id)
            .collect();
        let expected: Vec<u64> = (0..24).filter(|&i| i != 4).collect();
        assert_eq!(order, expected);
        // chunk sizes: first chunk lost one record, others untouched
        assert_eq!(list.chunks[0].recs.len(), 7);
        assert_eq!(list.chunks[1].recs.len(), 8);
    }

    #[test]
    fn emptied_chunk_is_unlinked_and_freed() {
        for doubly in [false, true] {
            let mut m = mem();
            let mut list = ChunkedDdt::new(&mut m, doubly, false);
            fill(&mut list, &mut m, 9); // chunks: 8 + 1
            let live = m.alloc_stats().live_gross_bytes;
            list.remove(8, &mut m); // empties the second chunk
            assert_eq!(list.chunks.len(), 1);
            assert!(m.alloc_stats().live_gross_bytes < live);
            assert_eq!(list.len(), 8);
        }
    }

    #[test]
    fn remove_head_chunk_updates_head() {
        let mut m = mem();
        let mut list = ChunkedDdt::with_chunk_capacity(&mut m, false, false, 2);
        fill(&mut list, &mut m, 6);
        list.remove(0, &mut m);
        list.remove(1, &mut m); // first chunk now empty and unlinked
        assert_eq!(list.get_nth(0, &mut m), Some(rec(2)));
        assert_eq!(list.chunks.len(), 2);
    }

    #[test]
    fn footprint_counts_slack_slots() {
        let mut m = mem();
        let mut list = ChunkedDdt::new(&mut m, false, false);
        fill(&mut list, &mut m, 1); // one chunk, 7 slack slots
        let expected = SimAllocator::gross_size(DESCRIPTOR_BYTES)
            + SimAllocator::gross_size(2 * PTR_BYTES + CHUNK_CAPACITY as u64 * Rec::SIZE);
        assert_eq!(list.footprint_bytes(), expected);
    }

    #[test]
    fn custom_chunk_capacity_respected() {
        let mut m = mem();
        let mut list = ChunkedDdt::with_chunk_capacity(&mut m, true, false, 3);
        fill(&mut list, &mut m, 10);
        assert_eq!(list.chunks.len(), 4); // 3+3+3+1
    }

    #[test]
    #[should_panic(expected = "chunk capacity")]
    fn zero_chunk_capacity_rejected() {
        let mut m = mem();
        let _ = ChunkedDdt::<Rec>::with_chunk_capacity(&mut m, false, false, 0);
    }

    #[test]
    fn update_scan_clear() {
        let mut m = mem();
        let mut list = ChunkedDdt::new(&mut m, true, true);
        fill(&mut list, &mut m, 12);
        assert!(list.update(3, Rec { id: 3, tag: 999 }, &mut m));
        let mut seen = Vec::new();
        list.scan(&mut m, &mut |r| {
            seen.push(r.tag);
            true
        });
        assert_eq!(seen[3], 999);
        assert_eq!(seen.len(), 12);
        list.clear(&mut m);
        assert!(list.is_empty());
        assert_eq!(
            m.alloc_stats().live_gross_bytes,
            SimAllocator::gross_size(DESCRIPTOR_BYTES + PTR_BYTES)
        );
    }

    #[test]
    fn remove_nth_across_chunks() {
        let mut m = mem();
        let mut list = ChunkedDdt::new(&mut m, true, false);
        fill(&mut list, &mut m, 20);
        assert_eq!(list.remove_nth(10, &mut m), Some(rec(10)));
        assert_eq!(list.remove_nth(0, &mut m), Some(rec(0)));
        assert_eq!(list.remove_nth(17, &mut m), Some(rec(19)));
        assert_eq!(list.len(), 17);
        assert_eq!(list.remove_nth(17, &mut m), None);
    }
}
