//! `SLL`, `DLL`, `SLL(O)`, `DLL(O)` — linked lists of records, optionally
//! with a roving pointer.

use crate::ddt::Ddt;
use crate::kind::DdtKind;
use crate::layout::{DESCRIPTOR_BYTES, KEY_BYTES, PTR_BYTES};
use crate::record::Record;
use ddtr_mem::{MemorySystem, SimAllocator, VirtAddr};

/// A (singly or doubly) linked list of individually allocated record nodes,
/// optionally maintaining a *roving pointer* — a cursor remembering the last
/// accessed position so that nearby subsequent accesses walk fewer links.
///
/// This single type implements four of the ten library DDTs (`SLL`, `DLL`,
/// `SLL(O)`, `DLL(O)`); use [`DdtKind::instantiate`] or the named
/// constructors.
///
/// Modelled node layout: the record, followed by a `next` pointer, followed
/// (in the doubly linked variants) by a `prev` pointer. Every link followed
/// during traversal is one pointer-sized memory read.
///
/// # Panics
///
/// All mutating operations panic if the simulated heap is exhausted.
///
/// # Example
///
/// ```
/// use ddtr_ddt::{Ddt, LinkedDdt, Record};
/// use ddtr_mem::{MemoryConfig, MemorySystem};
///
/// # #[derive(Clone)] struct R(u64);
/// # impl Record for R { const SIZE: u64 = 16; fn key(&self) -> u64 { self.0 } }
/// let mut mem = MemorySystem::new(MemoryConfig::default());
/// let mut list = LinkedDdt::dll(&mut mem);
/// list.insert(R(1), &mut mem);
/// list.insert(R(2), &mut mem);
/// assert_eq!(list.remove(1, &mut mem).map(|r| r.0), Some(1));
/// assert_eq!(list.len(), 1);
/// ```
#[derive(Debug)]
pub struct LinkedDdt<R: Record> {
    desc: VirtAddr,
    desc_bytes: u64,
    doubly: bool,
    roving: bool,
    /// Logical index of the roving pointer, when valid.
    rov: Option<usize>,
    nodes: Vec<(VirtAddr, R)>,
}

impl<R: Record> LinkedDdt<R> {
    /// Creates a list container.
    ///
    /// `doubly` selects two link fields per node; `roving` adds a roving
    /// pointer to the descriptor. Prefer the named constructors or
    /// [`DdtKind::instantiate`] in application code.
    ///
    /// # Panics
    ///
    /// Panics if the simulated heap cannot hold the descriptor.
    #[must_use]
    pub fn new(mem: &mut MemorySystem, doubly: bool, roving: bool) -> Self {
        let desc_bytes = if roving {
            DESCRIPTOR_BYTES + PTR_BYTES
        } else {
            DESCRIPTOR_BYTES
        };
        let desc = mem
            .alloc_hot(desc_bytes)
            .expect("simulated heap exhausted allocating list descriptor");
        mem.write(desc, desc_bytes);
        LinkedDdt {
            desc,
            desc_bytes,
            doubly,
            roving,
            rov: None,
            nodes: Vec::new(),
        }
    }

    /// A plain singly linked list (`SLL`).
    #[must_use]
    pub fn sll(mem: &mut MemorySystem) -> Self {
        Self::new(mem, false, false)
    }

    /// A plain doubly linked list (`DLL`).
    #[must_use]
    pub fn dll(mem: &mut MemorySystem) -> Self {
        Self::new(mem, true, false)
    }

    /// A singly linked list with a roving pointer (`SLL(O)`).
    #[must_use]
    pub fn sll_rov(mem: &mut MemorySystem) -> Self {
        Self::new(mem, false, true)
    }

    /// A doubly linked list with a roving pointer (`DLL(O)`).
    #[must_use]
    pub fn dll_rov(mem: &mut MemorySystem) -> Self {
        Self::new(mem, true, true)
    }

    fn node_bytes() -> u64 {
        R::SIZE + PTR_BYTES
    }

    fn node_bytes_doubly() -> u64 {
        R::SIZE + 2 * PTR_BYTES
    }

    fn this_node_bytes(&self) -> u64 {
        if self.doubly {
            Self::node_bytes_doubly()
        } else {
            Self::node_bytes()
        }
    }

    fn next_field(&self, node: VirtAddr) -> VirtAddr {
        node.offset(R::SIZE)
    }

    fn prev_field(&self, node: VirtAddr) -> VirtAddr {
        node.offset(R::SIZE + PTR_BYTES)
    }

    fn rov_field(&self) -> VirtAddr {
        self.desc.offset(DESCRIPTOR_BYTES)
    }

    /// Charges the pointer reads of walking `hops` links starting at
    /// logical index `from`, forward (`dir = +1`) or backward (`dir = -1`).
    fn charge_walk(&self, from: usize, hops: usize, dir: isize, mem: &mut MemorySystem) {
        let mut i = from as isize;
        for _ in 0..hops {
            let addr = self.nodes[i as usize].0;
            let field = if dir >= 0 {
                self.next_field(addr)
            } else {
                self.prev_field(addr)
            };
            mem.read(field, PTR_BYTES);
            mem.touch_cpu(1);
            i += dir;
        }
    }

    /// Key search charging one key read per probed node and one link read
    /// per advance.
    ///
    /// Roving variants first probe the record at the roving pointer (the
    /// "last hit" cache, one key read); repeated lookups of the same key —
    /// the common packet-burst pattern in network applications — then cost
    /// O(1). On a roving miss the search falls back to a head scan, so
    /// first-match semantics hold whenever keys are unique (which the
    /// container contract expects for key-based operations).
    fn find(&mut self, key: u64, mem: &mut MemorySystem) -> Option<usize> {
        let n = self.nodes.len();
        if self.roving {
            mem.read(self.rov_field(), PTR_BYTES);
            if let Some(r) = self.rov.filter(|&r| r < n) {
                mem.read(self.nodes[r].0, KEY_BYTES);
                mem.touch_cpu(1);
                if self.nodes[r].1.key() == key {
                    return Some(r);
                }
            }
        }
        mem.read(self.desc, PTR_BYTES); // head
        let mut found = None;
        for i in 0..n {
            mem.read(self.nodes[i].0, KEY_BYTES);
            mem.touch_cpu(1);
            if self.nodes[i].1.key() == key {
                found = Some(i);
                break;
            }
            mem.read(self.next_field(self.nodes[i].0), PTR_BYTES);
        }
        if let Some(i) = found {
            if self.roving {
                self.rov = Some(i);
                mem.write(self.rov_field(), PTR_BYTES);
            }
        }
        found
    }

    /// Positional search from the cheapest entry point (head, tail if
    /// doubly, roving pointer if enabled). Charges entry-point and link
    /// reads; returns nothing extra — callers read the record themselves.
    fn seek(&mut self, idx: usize, mem: &mut MemorySystem) {
        let n = self.nodes.len();
        debug_assert!(idx < n);
        // (hops, start, dir, reads_rov)
        let mut best = (idx, 0usize, 1isize, false); // from head
        if self.doubly {
            let from_tail = n - 1 - idx;
            if from_tail < best.0 {
                best = (from_tail, n - 1, -1, false);
            }
        }
        if self.roving {
            if let Some(r) = self.rov.filter(|&r| r < n) {
                if idx >= r && idx - r < best.0 {
                    best = (idx - r, r, 1, true);
                }
                if self.doubly && r > idx && r - idx < best.0 {
                    best = (r - idx, r, -1, true);
                }
            }
        }
        let (hops, start, dir, via_rov) = best;
        if via_rov {
            mem.read(self.rov_field(), PTR_BYTES);
        } else {
            // head or tail pointer in the descriptor
            mem.read(self.desc, PTR_BYTES);
        }
        self.charge_walk(start, hops, dir, mem);
        if self.roving {
            self.rov = Some(idx);
            mem.write(self.rov_field(), PTR_BYTES);
        }
    }

    /// Unlinks the node at `idx`, charging pointer fix-ups, and frees it.
    /// For singly linked variants the caller must have walked from the head
    /// so the predecessor is known (this is why SLL removals rescan).
    fn unlink(&mut self, idx: usize, mem: &mut MemorySystem) -> R {
        let (addr, _) = self.nodes[idx];
        // Read the victim's link fields to splice around it.
        let link_bytes = if self.doubly {
            2 * PTR_BYTES
        } else {
            PTR_BYTES
        };
        mem.read(self.next_field(addr), link_bytes);
        if idx == 0 {
            mem.write(self.desc, PTR_BYTES); // head
        } else {
            mem.write(self.next_field(self.nodes[idx - 1].0), PTR_BYTES);
        }
        if self.doubly {
            if idx + 1 < self.nodes.len() {
                mem.write(self.prev_field(self.nodes[idx + 1].0), PTR_BYTES);
            } else {
                mem.write(self.desc.offset(PTR_BYTES), PTR_BYTES); // tail
            }
        } else if idx + 1 == self.nodes.len() {
            mem.write(self.desc.offset(PTR_BYTES), PTR_BYTES); // tail
        }
        mem.write(self.desc.offset(2 * PTR_BYTES), PTR_BYTES); // count
        mem.free(addr).expect("list node is live");
        let (_, rec) = self.nodes.remove(idx);
        // Keep the roving pointer consistent with logical indices.
        self.rov = match self.rov {
            Some(r) if r == idx => None,
            Some(r) if r > idx => Some(r - 1),
            other => other,
        };
        rec
    }
}

impl<R: Record> Ddt<R> for LinkedDdt<R> {
    fn kind(&self) -> DdtKind {
        match (self.doubly, self.roving) {
            (false, false) => DdtKind::Sll,
            (true, false) => DdtKind::Dll,
            (false, true) => DdtKind::SllRov,
            (true, true) => DdtKind::DllRov,
        }
    }

    fn insert(&mut self, rec: R, mem: &mut MemorySystem) {
        let addr = mem
            .alloc(self.this_node_bytes())
            .expect("simulated heap exhausted allocating list node");
        mem.write(addr, R::SIZE); // record payload
        mem.write(self.next_field(addr), PTR_BYTES); // next = null
        if self.doubly {
            mem.write(self.prev_field(addr), PTR_BYTES); // prev = old tail
        }
        mem.read(self.desc.offset(PTR_BYTES), PTR_BYTES); // tail
        if let Some(&(tail_addr, _)) = self.nodes.last() {
            mem.write(self.next_field(tail_addr), PTR_BYTES);
        } else {
            mem.write(self.desc, PTR_BYTES); // head
        }
        mem.write(self.desc.offset(PTR_BYTES), 2 * PTR_BYTES); // tail + count
        self.nodes.push((addr, rec));
    }

    fn get(&mut self, key: u64, mem: &mut MemorySystem) -> Option<R> {
        let idx = self.find(key, mem)?;
        mem.read(self.nodes[idx].0, R::SIZE);
        Some(self.nodes[idx].1.clone())
    }

    fn get_nth(&mut self, idx: usize, mem: &mut MemorySystem) -> Option<R> {
        if idx >= self.nodes.len() {
            return None;
        }
        self.seek(idx, mem);
        mem.read(self.nodes[idx].0, R::SIZE);
        Some(self.nodes[idx].1.clone())
    }

    fn update(&mut self, key: u64, rec: R, mem: &mut MemorySystem) -> bool {
        let Some(idx) = self.find(key, mem) else {
            return false;
        };
        mem.write(self.nodes[idx].0, R::SIZE);
        self.nodes[idx].1 = rec;
        true
    }

    fn remove(&mut self, key: u64, mem: &mut MemorySystem) -> Option<R> {
        let idx = if self.doubly {
            // DLL can splice anywhere: find with the roving-aware probe.
            self.find(key, mem)?
        } else {
            // SLL needs the predecessor: rescan from the head.
            mem.read(self.desc, PTR_BYTES);
            let mut found = None;
            for (i, (addr, rec)) in self.nodes.iter().enumerate() {
                mem.read(*addr, KEY_BYTES);
                mem.touch_cpu(1);
                if rec.key() == key {
                    found = Some(i);
                    break;
                }
                mem.read(self.next_field(*addr), PTR_BYTES);
            }
            found?
        };
        mem.read(self.nodes[idx].0, R::SIZE);
        Some(self.unlink(idx, mem))
    }

    fn remove_nth(&mut self, idx: usize, mem: &mut MemorySystem) -> Option<R> {
        if idx >= self.nodes.len() {
            return None;
        }
        if self.doubly {
            self.seek(idx, mem);
        } else {
            // Walk from the head to learn the predecessor.
            mem.read(self.desc, PTR_BYTES);
            self.charge_walk(0, idx, 1, mem);
        }
        mem.read(self.nodes[idx].0, R::SIZE);
        Some(self.unlink(idx, mem))
    }

    fn scan(&mut self, mem: &mut MemorySystem, visit: &mut dyn FnMut(&R) -> bool) {
        mem.read(self.desc, PTR_BYTES);
        for i in 0..self.nodes.len() {
            mem.read(self.nodes[i].0, R::SIZE);
            mem.read(self.next_field(self.nodes[i].0), PTR_BYTES);
            mem.touch_cpu(1);
            if !visit(&self.nodes[i].1) {
                return;
            }
        }
    }

    fn len(&self) -> usize {
        self.nodes.len()
    }

    fn clear(&mut self, mem: &mut MemorySystem) {
        for (addr, _) in self.nodes.drain(..) {
            mem.free(addr).expect("list node is live");
        }
        self.rov = None;
        mem.write(self.desc, self.desc_bytes);
    }

    fn footprint_bytes(&self) -> u64 {
        SimAllocator::gross_size(self.desc_bytes)
            + self.nodes.len() as u64 * SimAllocator::gross_size(self.this_node_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TestRecord;
    use ddtr_mem::MemoryConfig;

    type Rec = TestRecord<32>;

    fn rec(id: u64) -> Rec {
        Rec { id, tag: id * 3 }
    }

    fn mem() -> MemorySystem {
        MemorySystem::new(MemoryConfig::default())
    }

    fn fill(list: &mut LinkedDdt<Rec>, mem: &mut MemorySystem, n: u64) {
        for i in 0..n {
            list.insert(rec(i), mem);
        }
    }

    fn access_cost<F: FnOnce(&mut MemorySystem)>(mem: &mut MemorySystem, f: F) -> u64 {
        let before = mem.stats().accesses();
        f(mem);
        mem.stats().accesses() - before
    }

    #[test]
    fn all_four_kinds_report_correctly() {
        let mut m = mem();
        assert_eq!(LinkedDdt::<Rec>::sll(&mut m).kind(), DdtKind::Sll);
        assert_eq!(LinkedDdt::<Rec>::dll(&mut m).kind(), DdtKind::Dll);
        assert_eq!(LinkedDdt::<Rec>::sll_rov(&mut m).kind(), DdtKind::SllRov);
        assert_eq!(LinkedDdt::<Rec>::dll_rov(&mut m).kind(), DdtKind::DllRov);
    }

    #[test]
    fn insert_get_round_trip_all_variants() {
        for (doubly, roving) in [(false, false), (true, false), (false, true), (true, true)] {
            let mut m = mem();
            let mut list = LinkedDdt::new(&mut m, doubly, roving);
            fill(&mut list, &mut m, 20);
            assert_eq!(list.len(), 20);
            for i in 0..20 {
                assert_eq!(
                    list.get(i, &mut m),
                    Some(rec(i)),
                    "doubly={doubly} roving={roving}"
                );
            }
            assert_eq!(list.get(99, &mut m), None);
        }
    }

    #[test]
    fn sll_get_nth_cost_is_linear_in_position() {
        let mut m = mem();
        let mut list = LinkedDdt::sll(&mut m);
        fill(&mut list, &mut m, 64);
        let c0 = access_cost(&mut m, |m| {
            list.get_nth(0, m);
        });
        let c63 = access_cost(&mut m, |m| {
            list.get_nth(63, m);
        });
        assert!(
            c63 > c0 + 50,
            "walking 63 links must cost more: {c0} vs {c63}"
        );
    }

    #[test]
    fn dll_get_nth_walks_from_nearest_end() {
        let mut m = mem();
        let mut list = LinkedDdt::dll(&mut m);
        fill(&mut list, &mut m, 64);
        let back = access_cost(&mut m, |m| {
            list.get_nth(63, m);
        });
        let front = access_cost(&mut m, |m| {
            list.get_nth(0, m);
        });
        assert!(back <= front + 2, "tail entry point: {back} vs {front}");
    }

    #[test]
    fn roving_pointer_makes_sequential_access_cheap() {
        let mut m = mem();
        let mut plain = LinkedDdt::sll(&mut m);
        let mut rov = LinkedDdt::sll_rov(&mut m);
        fill(&mut plain, &mut m, 64);
        fill(&mut rov, &mut m, 64);
        let plain_cost = access_cost(&mut m, |m| {
            for i in 0..64 {
                plain.get_nth(i, m);
            }
        });
        let rov_cost = access_cost(&mut m, |m| {
            for i in 0..64 {
                rov.get_nth(i, m);
            }
        });
        assert!(
            rov_cost * 3 < plain_cost,
            "roving sequential walk {rov_cost} vs plain {plain_cost}"
        );
    }

    #[test]
    fn roving_pointer_survives_unrelated_inserts() {
        let mut m = mem();
        let mut list = LinkedDdt::sll_rov(&mut m);
        fill(&mut list, &mut m, 10);
        list.get_nth(5, &mut m);
        list.insert(rec(100), &mut m); // append: indices unchanged
        let cheap = access_cost(&mut m, |m| {
            list.get_nth(6, m);
        });
        assert!(cheap <= 6, "one hop from the roving pointer, got {cheap}");
    }

    #[test]
    fn remove_preserves_order_and_frees_node() {
        for (doubly, roving) in [(false, false), (true, false), (false, true), (true, true)] {
            let mut m = mem();
            let mut list = LinkedDdt::new(&mut m, doubly, roving);
            fill(&mut list, &mut m, 6);
            let live = m.alloc_stats().live_gross_bytes;
            assert_eq!(list.remove(3, &mut m), Some(rec(3)));
            assert!(m.alloc_stats().live_gross_bytes < live);
            let order: Vec<u64> = (0..5)
                .map(|i| list.get_nth(i, &mut m).unwrap().id)
                .collect();
            assert_eq!(order, vec![0, 1, 2, 4, 5]);
        }
    }

    #[test]
    fn remove_head_and_tail_edges() {
        let mut m = mem();
        let mut list = LinkedDdt::dll(&mut m);
        fill(&mut list, &mut m, 3);
        assert_eq!(list.remove_nth(0, &mut m), Some(rec(0)));
        assert_eq!(list.remove_nth(1, &mut m), Some(rec(2)));
        assert_eq!(list.len(), 1);
        assert_eq!(list.get_nth(0, &mut m), Some(rec(1)));
        assert_eq!(list.remove_nth(0, &mut m), Some(rec(1)));
        assert!(list.is_empty());
        // insertion into the emptied list still works
        list.insert(rec(9), &mut m);
        assert_eq!(list.get(9, &mut m), Some(rec(9)));
    }

    #[test]
    fn rov_adjusts_after_removal_before_it() {
        let mut m = mem();
        let mut list = LinkedDdt::sll_rov(&mut m);
        fill(&mut list, &mut m, 10);
        list.get_nth(7, &mut m); // rov = 7
        list.remove_nth(2, &mut m); // rov shifts to 6
        assert_eq!(list.get_nth(6, &mut m), Some(rec(7)));
        let cheap = access_cost(&mut m, |m| {
            list.get_nth(6, m);
        });
        assert!(cheap <= 4, "rov should sit exactly there, got {cheap}");
    }

    #[test]
    fn dll_node_footprint_larger_than_sll() {
        let mut m = mem();
        let mut sll = LinkedDdt::sll(&mut m);
        let mut dll = LinkedDdt::dll(&mut m);
        fill(&mut sll, &mut m, 16);
        fill(&mut dll, &mut m, 16);
        assert!(dll.footprint_bytes() > sll.footprint_bytes());
    }

    #[test]
    fn update_and_scan_work() {
        let mut m = mem();
        let mut list = LinkedDdt::dll_rov(&mut m);
        fill(&mut list, &mut m, 4);
        assert!(list.update(2, Rec { id: 2, tag: 555 }, &mut m));
        let mut tags = Vec::new();
        list.scan(&mut m, &mut |r| {
            tags.push(r.tag);
            true
        });
        assert_eq!(tags, vec![0, 3, 555, 9]);
    }

    #[test]
    fn clear_frees_everything_but_descriptor() {
        let mut m = mem();
        let mut list = LinkedDdt::dll_rov(&mut m);
        fill(&mut list, &mut m, 8);
        list.clear(&mut m);
        assert!(list.is_empty());
        assert_eq!(
            m.alloc_stats().live_gross_bytes,
            SimAllocator::gross_size(DESCRIPTOR_BYTES + PTR_BYTES)
        );
    }

    #[test]
    fn duplicate_keys_first_match_semantics() {
        let mut m = mem();
        let mut list = LinkedDdt::sll(&mut m);
        list.insert(Rec { id: 4, tag: 1 }, &mut m);
        list.insert(Rec { id: 4, tag: 2 }, &mut m);
        assert_eq!(list.get(4, &mut m).unwrap().tag, 1);
        assert_eq!(list.remove(4, &mut m).unwrap().tag, 1);
        assert_eq!(list.get(4, &mut m).unwrap().tag, 2);
    }
}
