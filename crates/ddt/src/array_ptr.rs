//! `AR(P)` — growable array of pointers to individually allocated records.

use crate::ddt::Ddt;
use crate::kind::DdtKind;
use crate::layout::{DESCRIPTOR_BYTES, KEY_BYTES, PTR_BYTES};
use crate::record::Record;
use ddtr_mem::{MemorySystem, SimAllocator, VirtAddr};

const INITIAL_CAPACITY: usize = 4;

/// The `AR(P)` dynamic data type: a contiguous pointer table whose entries
/// point at individually heap-allocated records.
///
/// Compared to [`crate::ArrayDdt`], growth and removal move only 8-byte
/// pointers instead of whole records, at the price of one extra
/// dereference on every access and per-record allocator overhead in the
/// footprint.
///
/// # Panics
///
/// All mutating operations panic if the simulated heap is exhausted.
///
/// # Example
///
/// ```
/// use ddtr_ddt::{ArrayPtrDdt, Ddt, Record};
/// use ddtr_mem::{MemoryConfig, MemorySystem};
///
/// # #[derive(Clone)] struct R(u64);
/// # impl Record for R { const SIZE: u64 = 16; fn key(&self) -> u64 { self.0 } }
/// let mut mem = MemorySystem::new(MemoryConfig::default());
/// let mut arr = ArrayPtrDdt::new(&mut mem);
/// arr.insert(R(4), &mut mem);
/// assert_eq!(arr.get(4, &mut mem).map(|r| r.0), Some(4));
/// ```
#[derive(Debug)]
pub struct ArrayPtrDdt<R: Record> {
    desc: VirtAddr,
    buf: VirtAddr,
    capacity: usize,
    items: Vec<(VirtAddr, R)>,
}

impl<R: Record> ArrayPtrDdt<R> {
    /// Creates an empty pointer-array container.
    ///
    /// # Panics
    ///
    /// Panics if the simulated heap cannot hold the descriptor.
    #[must_use]
    pub fn new(mem: &mut MemorySystem) -> Self {
        let desc = mem
            .alloc_hot(DESCRIPTOR_BYTES)
            .expect("simulated heap exhausted allocating array descriptor");
        mem.write(desc, DESCRIPTOR_BYTES);
        ArrayPtrDdt {
            desc,
            buf: VirtAddr::NULL,
            capacity: 0,
            items: Vec::new(),
        }
    }

    fn ptr_slot(&self, idx: usize) -> VirtAddr {
        self.buf.offset(idx as u64 * PTR_BYTES)
    }

    fn grow(&mut self, mem: &mut MemorySystem) {
        let new_cap = if self.capacity == 0 {
            INITIAL_CAPACITY
        } else {
            self.capacity * 2
        };
        let new_buf = mem
            .alloc(new_cap as u64 * PTR_BYTES)
            .expect("simulated heap exhausted growing pointer table");
        for i in 0..self.items.len() {
            mem.read(self.ptr_slot(i), PTR_BYTES);
            mem.write(new_buf.offset(i as u64 * PTR_BYTES), PTR_BYTES);
        }
        if !self.buf.is_null() {
            mem.free(self.buf).expect("pointer table is live");
        }
        self.buf = new_buf;
        self.capacity = new_cap;
        mem.write(self.desc, 16);
    }

    /// Probe: read pointer slot, dereference, read key.
    fn find(&self, key: u64, mem: &mut MemorySystem) -> Option<usize> {
        mem.read(self.desc, 16);
        for (i, (addr, item)) in self.items.iter().enumerate() {
            mem.read(self.ptr_slot(i), PTR_BYTES);
            mem.read(*addr, KEY_BYTES);
            mem.touch_cpu(1);
            if item.key() == key {
                return Some(i);
            }
        }
        None
    }

    fn shift_left(&mut self, idx: usize, mem: &mut MemorySystem) {
        for j in idx + 1..self.items.len() {
            mem.read(self.ptr_slot(j), PTR_BYTES);
            mem.write(self.ptr_slot(j - 1), PTR_BYTES);
        }
    }
}

impl<R: Record> Ddt<R> for ArrayPtrDdt<R> {
    fn kind(&self) -> DdtKind {
        DdtKind::ArrayPtr
    }

    fn insert(&mut self, rec: R, mem: &mut MemorySystem) {
        mem.read(self.desc, 16);
        if self.items.len() == self.capacity {
            self.grow(mem);
        }
        let addr = mem
            .alloc(R::SIZE)
            .expect("simulated heap exhausted allocating record");
        mem.write(addr, R::SIZE);
        mem.write(self.ptr_slot(self.items.len()), PTR_BYTES);
        mem.write(self.desc.offset(16), 8);
        self.items.push((addr, rec));
    }

    fn get(&mut self, key: u64, mem: &mut MemorySystem) -> Option<R> {
        let idx = self.find(key, mem)?;
        mem.read(self.items[idx].0, R::SIZE);
        Some(self.items[idx].1.clone())
    }

    fn get_nth(&mut self, idx: usize, mem: &mut MemorySystem) -> Option<R> {
        if idx >= self.items.len() {
            return None;
        }
        mem.read(self.desc, 16);
        mem.read(self.ptr_slot(idx), PTR_BYTES);
        mem.read(self.items[idx].0, R::SIZE);
        Some(self.items[idx].1.clone())
    }

    fn update(&mut self, key: u64, rec: R, mem: &mut MemorySystem) -> bool {
        let Some(idx) = self.find(key, mem) else {
            return false;
        };
        mem.write(self.items[idx].0, R::SIZE);
        self.items[idx].1 = rec;
        true
    }

    fn remove(&mut self, key: u64, mem: &mut MemorySystem) -> Option<R> {
        let idx = self.find(key, mem)?;
        self.remove_nth(idx, mem)
    }

    fn remove_nth(&mut self, idx: usize, mem: &mut MemorySystem) -> Option<R> {
        if idx >= self.items.len() {
            return None;
        }
        let (addr, _) = self.items[idx];
        mem.read(addr, R::SIZE);
        mem.free(addr).expect("record block is live");
        self.shift_left(idx, mem);
        mem.write(self.desc.offset(16), 8);
        Some(self.items.remove(idx).1)
    }

    fn scan(&mut self, mem: &mut MemorySystem, visit: &mut dyn FnMut(&R) -> bool) {
        mem.read(self.desc, 16);
        for i in 0..self.items.len() {
            mem.read(self.ptr_slot(i), PTR_BYTES);
            mem.read(self.items[i].0, R::SIZE);
            mem.touch_cpu(1);
            if !visit(&self.items[i].1) {
                return;
            }
        }
    }

    fn len(&self) -> usize {
        self.items.len()
    }

    fn clear(&mut self, mem: &mut MemorySystem) {
        for (addr, _) in self.items.drain(..) {
            mem.free(addr).expect("record block is live");
        }
        if !self.buf.is_null() {
            mem.free(self.buf).expect("pointer table is live");
            self.buf = VirtAddr::NULL;
        }
        self.capacity = 0;
        mem.write(self.desc, DESCRIPTOR_BYTES);
    }

    fn footprint_bytes(&self) -> u64 {
        let mut total = SimAllocator::gross_size(DESCRIPTOR_BYTES);
        if self.capacity > 0 {
            total += SimAllocator::gross_size(self.capacity as u64 * PTR_BYTES);
        }
        total + self.items.len() as u64 * SimAllocator::gross_size(R::SIZE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TestRecord;
    use ddtr_mem::MemoryConfig;

    type Rec = TestRecord<32>;

    fn rec(id: u64) -> Rec {
        Rec { id, tag: id + 1000 }
    }

    fn setup() -> (MemorySystem, ArrayPtrDdt<Rec>) {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let arr = ArrayPtrDdt::new(&mut mem);
        (mem, arr)
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let (mut mem, mut arr) = setup();
        for i in 0..12 {
            arr.insert(rec(i), &mut mem);
        }
        assert_eq!(arr.get(11, &mut mem), Some(rec(11)));
        assert_eq!(arr.remove(0, &mut mem), Some(rec(0)));
        assert_eq!(arr.len(), 11);
        assert_eq!(arr.get_nth(0, &mut mem), Some(rec(1)));
    }

    #[test]
    fn records_are_individually_allocated() {
        let (mut mem, mut arr) = setup();
        let allocs_before = mem.stats().allocs;
        for i in 0..4 {
            arr.insert(rec(i), &mut mem);
        }
        // one pointer-table alloc + four record allocs
        assert_eq!(mem.stats().allocs - allocs_before, 5);
    }

    #[test]
    fn remove_frees_the_record_block() {
        let (mut mem, mut arr) = setup();
        arr.insert(rec(1), &mut mem);
        let live = mem.alloc_stats().live_gross_bytes;
        arr.remove(1, &mut mem);
        assert!(mem.alloc_stats().live_gross_bytes < live);
    }

    #[test]
    fn growth_moves_pointers_not_records() {
        let (mut mem, mut arr) = setup();
        for i in 0..4 {
            arr.insert(rec(i), &mut mem);
        }
        let wb_before = mem.stats().write_bytes;
        arr.insert(rec(4), &mut mem); // triggers growth: 4 ptr copies + record
        let grew = mem.stats().write_bytes - wb_before;
        // 4 pointer writes (32B) + record (32B) + ptr slot + count: well under
        // a whole-record copy of the array variant (4*32 = 128B of records).
        assert!(grew < 128 + Rec::SIZE, "pointer growth wrote {grew} bytes");
    }

    #[test]
    fn footprint_counts_records_and_table() {
        let (mut mem, mut arr) = setup();
        for i in 0..5 {
            arr.insert(rec(i), &mut mem);
        }
        let expected = SimAllocator::gross_size(DESCRIPTOR_BYTES)
            + SimAllocator::gross_size(8 * PTR_BYTES)
            + 5 * SimAllocator::gross_size(Rec::SIZE);
        assert_eq!(arr.footprint_bytes(), expected);
    }

    #[test]
    fn clear_returns_all_blocks() {
        let (mut mem, mut arr) = setup();
        for i in 0..9 {
            arr.insert(rec(i), &mut mem);
        }
        arr.clear(&mut mem);
        assert!(arr.is_empty());
        // only the descriptor remains live
        assert_eq!(
            mem.alloc_stats().live_gross_bytes,
            SimAllocator::gross_size(DESCRIPTOR_BYTES)
        );
    }

    #[test]
    fn update_and_scan() {
        let (mut mem, mut arr) = setup();
        for i in 0..3 {
            arr.insert(rec(i), &mut mem);
        }
        assert!(arr.update(1, Rec { id: 1, tag: 42 }, &mut mem));
        let mut tags = Vec::new();
        arr.scan(&mut mem, &mut |r| {
            tags.push(r.tag);
            true
        });
        assert_eq!(tags, vec![1000, 42, 1002]);
    }
}
