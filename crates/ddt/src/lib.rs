//! The dynamic-data-type (DDT) library of the `ddtr` workspace.
//!
//! This crate is the Rust counterpart of the ten-implementation C++ DDT
//! library the DATE 2006 paper instruments its applications with
//! (Mamagkakis et al., WWIC 2004). A *dynamic data type* is a container
//! whose records are allocated and freed at run time; the choice of its
//! internal organisation (array vs. linked list vs. chunked list, with or
//! without a roving pointer) trades the four cost metrics of the
//! methodology against each other.
//!
//! Every operation of every implementation issues the memory traffic the
//! modelled structure would issue on the embedded platform — pointer
//! dereferences, key compares, record moves, allocator calls — against a
//! [`ddtr_mem::MemorySystem`], so that the exploration layer can measure
//! accesses, cycles, energy and footprint per candidate implementation.
//!
//! # The ten implementations
//!
//! | [`DdtKind`] | Organisation |
//! |---|---|
//! | `Array` | contiguous growable array of records (AR) |
//! | `ArrayPtr` | growable array of pointers to heap records (AR(P)) |
//! | `Sll` | singly linked list |
//! | `Dll` | doubly linked list |
//! | `SllRov` | SLL with a roving pointer (SLL(O)) |
//! | `DllRov` | DLL with a roving pointer (DLL(O)) |
//! | `SllChunk` | singly linked list of array chunks (SLL(AR)) |
//! | `DllChunk` | doubly linked list of array chunks (DLL(AR)) |
//! | `SllChunkRov` | chunked SLL with a roving pointer (SLL(ARO)) |
//! | `DllChunkRov` | chunked DLL with a roving pointer (DLL(ARO)) |
//!
//! Two *extension* implementations beyond the paper's library —
//! [`DdtKind::Hash`] (HSH, an insertion-order-preserving chained hash
//! table) and [`DdtKind::Avl`] (AVL, a balanced search tree with order
//! threading) — are available through [`DdtKind::EXTENDED`] and show how
//! the exploration absorbs new candidates without changing the
//! instrumentation.
//!
//! # Example
//!
//! ```
//! use ddtr_ddt::{Ddt, DdtKind, Record};
//! use ddtr_mem::{MemoryConfig, MemorySystem};
//!
//! #[derive(Clone, Debug, PartialEq)]
//! struct Entry { id: u64, payload: [u8; 24] }
//! impl Record for Entry {
//!     const SIZE: u64 = 32;
//!     fn key(&self) -> u64 { self.id }
//! }
//!
//! let mut mem = MemorySystem::new(MemoryConfig::default());
//! let mut ddt = DdtKind::Dll.instantiate::<Entry>(&mut mem);
//! ddt.insert(Entry { id: 7, payload: [0; 24] }, &mut mem);
//! assert_eq!(ddt.get(7, &mut mem).map(|e| e.id), Some(7));
//! assert!(mem.report().accesses > 0);
//! ```

mod array;
mod array_ptr;
mod chunked;
mod ddt;
mod hash;
mod kind;
mod layout;
mod linked;
mod probe;
mod record;
mod tree;

pub use array::ArrayDdt;
pub use array_ptr::ArrayPtrDdt;
pub use chunked::ChunkedDdt;
pub use ddt::Ddt;
pub use hash::HashDdt;
pub use kind::{DdtKind, ParseDdtKindError};
pub use layout::{CHUNK_CAPACITY, DESCRIPTOR_BYTES, KEY_BYTES, PTR_BYTES};
pub use linked::LinkedDdt;
pub use probe::{OpCounts, ProfiledDdt};
pub use record::{Record, TestRecord};
pub use tree::TreeDdt;
