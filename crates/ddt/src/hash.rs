//! `HSH` — insertion-order-preserving chained hash table (extension DDT).

use crate::ddt::Ddt;
use crate::kind::DdtKind;
use crate::layout::{DESCRIPTOR_BYTES, KEY_BYTES, PTR_BYTES};
use crate::record::Record;
use ddtr_mem::{MemorySystem, SimAllocator, VirtAddr};

/// Buckets allocated when the table is created (and after `clear`).
const INITIAL_BUCKETS: usize = 8;

/// Descriptor layout: bucket-array pointer, bucket count, record count,
/// order-list head, order-list tail.
const HASH_DESCRIPTOR_BYTES: u64 = DESCRIPTOR_BYTES + 2 * PTR_BYTES;

/// The `HSH` extension dynamic data type: a separate-chaining hash table
/// whose nodes are additionally threaded on a doubly linked insertion-order
/// list.
///
/// This is not one of the paper's ten library DDTs; it belongs to the
/// *extended* candidate set ([`DdtKind::EXTENDED`]) that demonstrates how
/// the exploration methodology absorbs new implementations without any
/// change to the instrumentation.
///
/// Characteristics the exploration measures: near-O(1) key operations at
/// the price of a bucket array in the footprint, rehash traffic on growth,
/// and three link words per node. Positional operations walk the
/// insertion-order thread, so logical order matches every other DDT.
///
/// Modelled node layout: the record, a hash-chain `next` pointer, and
/// `order-next`/`order-prev` pointers. Chains append at the tail so that
/// key searches return the *first* inserted match, like the list DDTs.
///
/// # Panics
///
/// All mutating operations panic if the simulated heap is exhausted.
///
/// # Example
///
/// ```
/// use ddtr_ddt::{Ddt, HashDdt, Record};
/// use ddtr_mem::{MemoryConfig, MemorySystem};
///
/// # #[derive(Clone)] struct R(u64);
/// # impl Record for R { const SIZE: u64 = 16; fn key(&self) -> u64 { self.0 } }
/// let mut mem = MemorySystem::new(MemoryConfig::default());
/// let mut table = HashDdt::new(&mut mem);
/// for k in 0..100 {
///     table.insert(R(k), &mut mem);
/// }
/// assert_eq!(table.get(42, &mut mem).map(|r| r.0), Some(42));
/// assert_eq!(table.get_nth(0, &mut mem).map(|r| r.0), Some(0)); // insertion order
/// ```
#[derive(Debug)]
pub struct HashDdt<R: Record> {
    desc: VirtAddr,
    buckets_addr: VirtAddr,
    n_buckets: usize,
    /// Host mirror of the insertion-order thread.
    nodes: Vec<(VirtAddr, R)>,
    /// Host mirror of the chains: per bucket, `(key, node address)` in
    /// chain (i.e. insertion) order.
    chains: Vec<Vec<(u64, VirtAddr)>>,
}

impl<R: Record> HashDdt<R> {
    /// Creates an empty hash container, allocating its descriptor and the
    /// initial bucket array.
    ///
    /// # Panics
    ///
    /// Panics if the simulated heap cannot hold the descriptor or the
    /// initial bucket array.
    #[must_use]
    pub fn new(mem: &mut MemorySystem) -> Self {
        let desc = mem
            .alloc_hot(HASH_DESCRIPTOR_BYTES)
            .expect("simulated heap exhausted allocating hash descriptor");
        mem.write(desc, HASH_DESCRIPTOR_BYTES);
        let buckets_addr = Self::alloc_buckets(INITIAL_BUCKETS, mem);
        HashDdt {
            desc,
            buckets_addr,
            n_buckets: INITIAL_BUCKETS,
            nodes: Vec::new(),
            chains: vec![Vec::new(); INITIAL_BUCKETS],
        }
    }

    /// Number of buckets currently allocated.
    #[must_use]
    pub fn buckets(&self) -> usize {
        self.n_buckets
    }

    /// Length of the longest chain (collision diagnostic).
    #[must_use]
    pub fn max_chain_len(&self) -> usize {
        self.chains.iter().map(Vec::len).max().unwrap_or(0)
    }

    fn node_bytes() -> u64 {
        R::SIZE + 3 * PTR_BYTES
    }

    fn chain_field(node: VirtAddr) -> VirtAddr {
        node.offset(R::SIZE)
    }

    fn alloc_buckets(n: usize, mem: &mut MemorySystem) -> VirtAddr {
        let addr = mem
            .alloc(n as u64 * PTR_BYTES)
            .expect("simulated heap exhausted allocating hash buckets");
        mem.write(addr, n as u64 * PTR_BYTES); // zero the slots
        addr
    }

    fn bucket_of(&self, key: u64, mem: &mut MemorySystem) -> usize {
        mem.touch_cpu(1); // hash computation
        (key % self.n_buckets as u64) as usize
    }

    fn slot_addr(&self, bucket: usize) -> VirtAddr {
        self.buckets_addr.offset(bucket as u64 * PTR_BYTES)
    }

    /// Key probe: hashes, reads the bucket slot and walks the chain
    /// charging one key read per probed node and one chain-pointer read per
    /// advance. Returns `(bucket, chain position)` of the first match.
    fn find(&self, key: u64, mem: &mut MemorySystem) -> Option<(usize, usize)> {
        mem.read(self.desc, 16); // bucket pointer + bucket count
        mem.touch_cpu(1);
        let b = (key % self.n_buckets as u64) as usize;
        mem.read(self.slot_addr(b), PTR_BYTES);
        for (pos, &(k, addr)) in self.chains[b].iter().enumerate() {
            mem.read(addr, KEY_BYTES);
            mem.touch_cpu(1);
            if k == key {
                return Some((b, pos));
            }
            mem.read(Self::chain_field(addr), PTR_BYTES);
        }
        None
    }

    fn node_addr(&self, bucket: usize, pos: usize) -> VirtAddr {
        self.chains[bucket][pos].1
    }

    fn order_index_of(&self, addr: VirtAddr) -> usize {
        self.nodes
            .iter()
            .position(|&(a, _)| a == addr)
            .expect("chain node is on the order list")
    }

    /// Doubles the bucket array and rehashes every node: one key read, one
    /// chain-pointer write and one slot write per node, plus the array
    /// allocation round trip.
    fn grow(&mut self, mem: &mut MemorySystem) {
        let new_n = self.n_buckets * 2;
        let new_addr = Self::alloc_buckets(new_n, mem);
        let mut new_chains = vec![Vec::new(); new_n];
        for &(addr, ref rec) in &self.nodes {
            let key = rec.key();
            mem.read(addr, KEY_BYTES);
            mem.touch_cpu(1);
            mem.write(Self::chain_field(addr), PTR_BYTES);
            let b = (key % new_n as u64) as usize;
            mem.write(new_addr.offset(b as u64 * PTR_BYTES), PTR_BYTES);
            new_chains[b].push((key, addr));
        }
        mem.free(self.buckets_addr).expect("bucket array is live");
        self.buckets_addr = new_addr;
        self.n_buckets = new_n;
        self.chains = new_chains;
        mem.write(self.desc, 16); // bucket pointer + bucket count
    }

    /// Unlinks `(bucket, pos)` from its chain and from the order list,
    /// frees the node and returns its record.
    fn unlink(&mut self, bucket: usize, pos: usize, mem: &mut MemorySystem) -> R {
        let (_, addr) = self.chains[bucket].remove(pos);
        // Chain unlink: rewrite the predecessor's chain pointer (or the
        // bucket slot for the chain head). The predecessor was already read
        // during the probe that located the node.
        if pos == 0 {
            mem.write(self.slot_addr(bucket), PTR_BYTES);
        } else {
            let pred = self.chains[bucket][pos - 1].1;
            mem.write(Self::chain_field(pred), PTR_BYTES);
        }
        // Order unlink: read the node's order links, rewrite both
        // neighbours (descriptor head/tail at the ends).
        mem.read(addr.offset(R::SIZE + PTR_BYTES), 2 * PTR_BYTES);
        mem.write(self.desc.offset(DESCRIPTOR_BYTES), 2 * PTR_BYTES);
        let idx = self.order_index_of(addr);
        let (_, rec) = self.nodes.remove(idx);
        mem.free(addr).expect("hash node is live");
        rec
    }
}

impl<R: Record> Ddt<R> for HashDdt<R> {
    fn kind(&self) -> DdtKind {
        DdtKind::Hash
    }

    fn insert(&mut self, rec: R, mem: &mut MemorySystem) {
        mem.read(self.desc, 16); // count + bucket count (load-factor check)
        if self.nodes.len() + 1 > self.n_buckets {
            self.grow(mem);
        }
        let key = rec.key();
        let b = self.bucket_of(key, mem);
        let addr = mem
            .alloc(Self::node_bytes())
            .expect("simulated heap exhausted allocating hash node");
        mem.write(addr, Self::node_bytes());
        // Chain append (keeps first-match order): walk to the tail.
        mem.read(self.slot_addr(b), PTR_BYTES);
        if let Some(&(_, tail)) = self.chains[b].last() {
            for &(_, node) in &self.chains[b][..self.chains[b].len() - 1] {
                mem.read(Self::chain_field(node), PTR_BYTES);
            }
            mem.write(Self::chain_field(tail), PTR_BYTES);
        } else {
            mem.write(self.slot_addr(b), PTR_BYTES);
        }
        // Order append at the tail.
        mem.read(self.desc.offset(DESCRIPTOR_BYTES + PTR_BYTES), PTR_BYTES);
        if let Some(&(prev_tail, _)) = self.nodes.last() {
            mem.write(prev_tail.offset(R::SIZE + PTR_BYTES), PTR_BYTES);
        }
        mem.write(self.desc.offset(DESCRIPTOR_BYTES), 2 * PTR_BYTES);
        mem.write(self.desc.offset(16), 8); // count
        self.chains[b].push((key, addr));
        self.nodes.push((addr, rec));
    }

    fn get(&mut self, key: u64, mem: &mut MemorySystem) -> Option<R> {
        let (b, pos) = self.find(key, mem)?;
        let addr = self.node_addr(b, pos);
        mem.read(addr, R::SIZE);
        let idx = self.order_index_of(addr);
        Some(self.nodes[idx].1.clone())
    }

    fn get_nth(&mut self, idx: usize, mem: &mut MemorySystem) -> Option<R> {
        if idx >= self.nodes.len() {
            return None;
        }
        // Walk the insertion-order thread from the head.
        mem.read(self.desc.offset(DESCRIPTOR_BYTES), PTR_BYTES);
        for i in 0..idx {
            mem.read(self.nodes[i].0.offset(R::SIZE + PTR_BYTES), PTR_BYTES);
            mem.touch_cpu(1);
        }
        mem.read(self.nodes[idx].0, R::SIZE);
        Some(self.nodes[idx].1.clone())
    }

    fn update(&mut self, key: u64, rec: R, mem: &mut MemorySystem) -> bool {
        let Some((b, pos)) = self.find(key, mem) else {
            return false;
        };
        let addr = self.node_addr(b, pos);
        mem.write(addr, R::SIZE);
        let idx = self.order_index_of(addr);
        self.nodes[idx].1 = rec;
        true
    }

    fn remove(&mut self, key: u64, mem: &mut MemorySystem) -> Option<R> {
        let (b, pos) = self.find(key, mem)?;
        mem.read(self.node_addr(b, pos), R::SIZE);
        mem.write(self.desc.offset(16), 8); // count
        Some(self.unlink(b, pos, mem))
    }

    fn remove_nth(&mut self, idx: usize, mem: &mut MemorySystem) -> Option<R> {
        if idx >= self.nodes.len() {
            return None;
        }
        // Locate positionally via the order thread, then re-probe the chain
        // to find the chain predecessor for the unlink.
        mem.read(self.desc.offset(DESCRIPTOR_BYTES), PTR_BYTES);
        for i in 0..idx {
            mem.read(self.nodes[i].0.offset(R::SIZE + PTR_BYTES), PTR_BYTES);
            mem.touch_cpu(1);
        }
        let (addr, _) = self.nodes[idx];
        mem.read(addr, R::SIZE);
        let key = self.nodes[idx].1.key();
        let b = self.bucket_of(key, mem);
        mem.read(self.slot_addr(b), PTR_BYTES);
        let pos = self.chains[b]
            .iter()
            .position(|&(_, a)| a == addr)
            .expect("order node is on its chain");
        for &(_, node) in &self.chains[b][..pos] {
            mem.read(node, KEY_BYTES);
            mem.read(Self::chain_field(node), PTR_BYTES);
            mem.touch_cpu(1);
        }
        mem.write(self.desc.offset(16), 8); // count
        Some(self.unlink(b, pos, mem))
    }

    fn scan(&mut self, mem: &mut MemorySystem, visit: &mut dyn FnMut(&R) -> bool) {
        mem.read(self.desc.offset(DESCRIPTOR_BYTES), PTR_BYTES);
        for (addr, rec) in &self.nodes {
            mem.read(*addr, R::SIZE);
            mem.read(addr.offset(R::SIZE + PTR_BYTES), PTR_BYTES);
            mem.touch_cpu(1);
            if !visit(rec) {
                return;
            }
        }
    }

    fn len(&self) -> usize {
        self.nodes.len()
    }

    fn clear(&mut self, mem: &mut MemorySystem) {
        for (addr, _) in self.nodes.drain(..) {
            mem.free(addr).expect("hash node is live");
        }
        if self.n_buckets != INITIAL_BUCKETS {
            mem.free(self.buckets_addr).expect("bucket array is live");
            self.buckets_addr = Self::alloc_buckets(INITIAL_BUCKETS, mem);
            self.n_buckets = INITIAL_BUCKETS;
        }
        self.chains = vec![Vec::new(); INITIAL_BUCKETS];
        mem.write(self.desc, HASH_DESCRIPTOR_BYTES);
    }

    fn footprint_bytes(&self) -> u64 {
        SimAllocator::gross_size(HASH_DESCRIPTOR_BYTES)
            + SimAllocator::gross_size(self.n_buckets as u64 * PTR_BYTES)
            + self.nodes.len() as u64 * SimAllocator::gross_size(Self::node_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TestRecord;
    use ddtr_mem::MemoryConfig;

    type Rec = TestRecord<32>;

    fn rec(id: u64) -> Rec {
        Rec { id, tag: id * 100 }
    }

    fn setup() -> (MemorySystem, HashDdt<Rec>) {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let table = HashDdt::new(&mut mem);
        (mem, table)
    }

    #[test]
    fn insert_get_round_trip() {
        let (mut mem, mut t) = setup();
        for i in 0..50 {
            t.insert(rec(i), &mut mem);
        }
        assert_eq!(t.len(), 50);
        assert_eq!(t.get(37, &mut mem), Some(rec(37)));
        assert_eq!(t.get(99, &mut mem), None);
    }

    #[test]
    fn positional_ops_follow_insertion_order() {
        let (mut mem, mut t) = setup();
        // Keys deliberately out of numeric order.
        for &k in &[5u64, 1, 9, 3, 7] {
            t.insert(rec(k), &mut mem);
        }
        assert_eq!(t.get_nth(0, &mut mem), Some(rec(5)));
        assert_eq!(t.get_nth(4, &mut mem), Some(rec(7)));
        assert_eq!(t.get_nth(5, &mut mem), None);
        let mut seen = Vec::new();
        t.scan(&mut mem, &mut |r| {
            seen.push(r.id);
            true
        });
        assert_eq!(seen, vec![5, 1, 9, 3, 7]);
    }

    #[test]
    fn table_grows_and_lookups_survive_rehash() {
        let (mut mem, mut t) = setup();
        assert_eq!(t.buckets(), INITIAL_BUCKETS);
        for i in 0..200 {
            t.insert(rec(i), &mut mem);
        }
        assert!(t.buckets() >= 200, "load factor kept at or below one");
        for i in 0..200 {
            assert_eq!(t.get(i, &mut mem), Some(rec(i)), "key {i} lost in rehash");
        }
    }

    #[test]
    fn remove_unlinks_chain_and_order() {
        let (mut mem, mut t) = setup();
        // Keys 0, 8, 16 all collide in an 8-bucket table.
        for &k in &[0u64, 8, 16, 1] {
            t.insert(rec(k), &mut mem);
        }
        assert_eq!(t.remove(8, &mut mem), Some(rec(8))); // middle of chain
        assert_eq!(t.get(0, &mut mem), Some(rec(0)));
        assert_eq!(t.get(16, &mut mem), Some(rec(16)));
        assert_eq!(t.get(8, &mut mem), None);
        let mut order = Vec::new();
        t.scan(&mut mem, &mut |r| {
            order.push(r.id);
            true
        });
        assert_eq!(order, vec![0, 16, 1]);
    }

    #[test]
    fn remove_nth_is_positional() {
        let (mut mem, mut t) = setup();
        for &k in &[4u64, 12, 20] {
            t.insert(rec(k), &mut mem);
        }
        assert_eq!(t.remove_nth(1, &mut mem), Some(rec(12)));
        assert_eq!(t.remove_nth(5, &mut mem), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn collisions_probe_more_than_distinct_buckets() {
        // Searching the tail of a long chain must cost more accesses than
        // a direct hit in a singleton bucket.
        let (mut mem, mut t) = setup();
        for &k in &[0u64, 8, 16, 24, 32, 3] {
            t.insert(rec(k), &mut mem);
        }
        let before = mem.stats().accesses();
        let _ = t.get(32, &mut mem); // 5th element of the 0-bucket chain
        let chain_cost = mem.stats().accesses() - before;
        let before = mem.stats().accesses();
        let _ = t.get(3, &mut mem); // singleton bucket
        let direct_cost = mem.stats().accesses() - before;
        assert!(
            chain_cost > direct_cost,
            "chain walk ({chain_cost}) must out-cost direct hit ({direct_cost})"
        );
    }

    #[test]
    fn key_search_beats_list_scan_at_scale() {
        // The whole point of the extension: at n = 256 a key lookup in the
        // hash is much cheaper than the linear probe of SLL.
        let mut mem_h = MemorySystem::new(MemoryConfig::default());
        let mut h = HashDdt::<Rec>::new(&mut mem_h);
        let mut mem_l = MemorySystem::new(MemoryConfig::default());
        let mut l = crate::LinkedDdt::<Rec>::sll(&mut mem_l);
        for i in 0..256 {
            h.insert(rec(i), &mut mem_h);
            l.insert(rec(i), &mut mem_l);
        }
        let before_h = mem_h.stats().accesses();
        let _ = h.get(255, &mut mem_h);
        let hash_cost = mem_h.stats().accesses() - before_h;
        let before_l = mem_l.stats().accesses();
        let _ = l.get(255, &mut mem_l);
        let list_cost = mem_l.stats().accesses() - before_l;
        assert!(
            hash_cost * 10 < list_cost,
            "hash probe ({hash_cost}) should be >10x cheaper than list scan ({list_cost})"
        );
    }

    #[test]
    fn clear_returns_heap_to_descriptor_and_initial_buckets() {
        let (mut mem, mut t) = setup();
        for i in 0..100 {
            t.insert(rec(i), &mut mem);
        }
        t.clear(&mut mem);
        assert_eq!(t.len(), 0);
        assert_eq!(t.buckets(), INITIAL_BUCKETS);
        let expected = SimAllocator::gross_size(HASH_DESCRIPTOR_BYTES)
            + SimAllocator::gross_size(INITIAL_BUCKETS as u64 * PTR_BYTES);
        assert_eq!(mem.alloc_stats().live_gross_bytes, expected);
        assert_eq!(t.footprint_bytes(), expected);
    }

    #[test]
    fn footprint_tracks_live_heap() {
        let (mut mem, mut t) = setup();
        for i in 0..64 {
            t.insert(rec(i), &mut mem);
            assert_eq!(t.footprint_bytes(), mem.alloc_stats().live_gross_bytes);
        }
        for i in 0..64 {
            t.remove(i, &mut mem);
            assert_eq!(t.footprint_bytes(), mem.alloc_stats().live_gross_bytes);
        }
    }

    #[test]
    fn max_chain_len_reflects_collisions() {
        let (mut mem, mut t) = setup();
        for &k in &[0u64, 8, 16] {
            t.insert(rec(k), &mut mem);
        }
        assert_eq!(t.max_chain_len(), 3);
    }
}
