//! `AR` — contiguous growable array of records.

use crate::ddt::Ddt;
use crate::kind::DdtKind;
use crate::layout::{DESCRIPTOR_BYTES, KEY_BYTES};
use crate::record::Record;
use ddtr_mem::{MemorySystem, SimAllocator, VirtAddr};

const INITIAL_CAPACITY: usize = 4;

/// The `AR` dynamic data type: all records stored contiguously in one
/// growable buffer (doubling growth, `memmove` on removal).
///
/// Characteristics the exploration measures: O(1) positional access and
/// excellent spatial locality, but linear-time removal, copy-on-grow
/// traffic, and up-to-2x slack capacity in the footprint.
///
/// # Panics
///
/// All mutating operations panic if the simulated heap is exhausted.
///
/// # Example
///
/// ```
/// use ddtr_ddt::{ArrayDdt, Ddt, Record};
/// use ddtr_mem::{MemoryConfig, MemorySystem};
///
/// # #[derive(Clone)] struct R(u64);
/// # impl Record for R { const SIZE: u64 = 16; fn key(&self) -> u64 { self.0 } }
/// let mut mem = MemorySystem::new(MemoryConfig::default());
/// let mut arr = ArrayDdt::new(&mut mem);
/// arr.insert(R(1), &mut mem);
/// arr.insert(R(2), &mut mem);
/// assert_eq!(arr.get_nth(1, &mut mem).map(|r| r.0), Some(2));
/// ```
#[derive(Debug)]
pub struct ArrayDdt<R: Record> {
    desc: VirtAddr,
    buf: VirtAddr,
    capacity: usize,
    items: Vec<R>,
}

impl<R: Record> ArrayDdt<R> {
    /// Creates an empty array container, allocating its descriptor.
    ///
    /// # Panics
    ///
    /// Panics if the simulated heap cannot hold the descriptor.
    #[must_use]
    pub fn new(mem: &mut MemorySystem) -> Self {
        let desc = mem
            .alloc_hot(DESCRIPTOR_BYTES)
            .expect("simulated heap exhausted allocating array descriptor");
        mem.write(desc, DESCRIPTOR_BYTES);
        ArrayDdt {
            desc,
            buf: VirtAddr::NULL,
            capacity: 0,
            items: Vec::new(),
        }
    }

    /// Current slack capacity (slots allocated but unused).
    #[must_use]
    pub fn slack(&self) -> usize {
        self.capacity - self.items.len()
    }

    fn slot(&self, idx: usize) -> VirtAddr {
        self.buf.offset(idx as u64 * R::SIZE)
    }

    fn grow(&mut self, mem: &mut MemorySystem) {
        let new_cap = if self.capacity == 0 {
            INITIAL_CAPACITY
        } else {
            self.capacity * 2
        };
        let new_buf = mem
            .alloc(new_cap as u64 * R::SIZE)
            .expect("simulated heap exhausted growing array buffer");
        // Copy every live record into the new buffer.
        for i in 0..self.items.len() {
            mem.read(self.slot(i), R::SIZE);
            mem.write(new_buf.offset(i as u64 * R::SIZE), R::SIZE);
        }
        if !self.buf.is_null() {
            mem.free(self.buf).expect("array buffer is live");
        }
        self.buf = new_buf;
        self.capacity = new_cap;
        // Update the descriptor's buffer pointer and capacity fields.
        mem.write(self.desc, 16);
    }

    /// Linear key probe; returns the index of the first match, charging one
    /// key read and one compare per probed slot.
    fn find(&self, key: u64, mem: &mut MemorySystem) -> Option<usize> {
        mem.read(self.desc, 16); // buffer pointer + count
        for (i, item) in self.items.iter().enumerate() {
            mem.read(self.slot(i), KEY_BYTES);
            mem.touch_cpu(1);
            if item.key() == key {
                return Some(i);
            }
        }
        None
    }

    /// Shift all records after `idx` one slot left (removal `memmove`).
    fn shift_left(&mut self, idx: usize, mem: &mut MemorySystem) {
        for j in idx + 1..self.items.len() {
            mem.read(self.slot(j), R::SIZE);
            mem.write(self.slot(j - 1), R::SIZE);
        }
    }
}

impl<R: Record> Ddt<R> for ArrayDdt<R> {
    fn kind(&self) -> DdtKind {
        DdtKind::Array
    }

    fn insert(&mut self, rec: R, mem: &mut MemorySystem) {
        mem.read(self.desc, 16); // count + capacity
        if self.items.len() == self.capacity {
            self.grow(mem);
        }
        mem.write(self.slot(self.items.len()), R::SIZE);
        mem.write(self.desc.offset(16), 8); // count
        self.items.push(rec);
    }

    fn get(&mut self, key: u64, mem: &mut MemorySystem) -> Option<R> {
        let idx = self.find(key, mem)?;
        mem.read(self.slot(idx), R::SIZE);
        Some(self.items[idx].clone())
    }

    fn get_nth(&mut self, idx: usize, mem: &mut MemorySystem) -> Option<R> {
        if idx >= self.items.len() {
            return None;
        }
        mem.read(self.desc, 16); // buffer pointer + bounds
        mem.read(self.slot(idx), R::SIZE);
        Some(self.items[idx].clone())
    }

    fn update(&mut self, key: u64, rec: R, mem: &mut MemorySystem) -> bool {
        let Some(idx) = self.find(key, mem) else {
            return false;
        };
        mem.write(self.slot(idx), R::SIZE);
        self.items[idx] = rec;
        true
    }

    fn remove(&mut self, key: u64, mem: &mut MemorySystem) -> Option<R> {
        let idx = self.find(key, mem)?;
        self.remove_nth(idx, mem)
    }

    fn remove_nth(&mut self, idx: usize, mem: &mut MemorySystem) -> Option<R> {
        if idx >= self.items.len() {
            return None;
        }
        mem.read(self.slot(idx), R::SIZE);
        self.shift_left(idx, mem);
        mem.write(self.desc.offset(16), 8); // count
        Some(self.items.remove(idx))
    }

    fn scan(&mut self, mem: &mut MemorySystem, visit: &mut dyn FnMut(&R) -> bool) {
        mem.read(self.desc, 16);
        for i in 0..self.items.len() {
            mem.read(self.slot(i), R::SIZE);
            mem.touch_cpu(1);
            if !visit(&self.items[i]) {
                return;
            }
        }
    }

    fn len(&self) -> usize {
        self.items.len()
    }

    fn clear(&mut self, mem: &mut MemorySystem) {
        if !self.buf.is_null() {
            mem.free(self.buf).expect("array buffer is live");
            self.buf = VirtAddr::NULL;
        }
        self.capacity = 0;
        self.items.clear();
        mem.write(self.desc, DESCRIPTOR_BYTES);
    }

    fn footprint_bytes(&self) -> u64 {
        let mut total = SimAllocator::gross_size(DESCRIPTOR_BYTES);
        if self.capacity > 0 {
            total += SimAllocator::gross_size(self.capacity as u64 * R::SIZE);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TestRecord;
    use ddtr_mem::MemoryConfig;

    type Rec = TestRecord<32>;

    fn rec(id: u64) -> Rec {
        Rec { id, tag: id * 100 }
    }

    fn setup() -> (MemorySystem, ArrayDdt<Rec>) {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let arr = ArrayDdt::new(&mut mem);
        (mem, arr)
    }

    #[test]
    fn insert_get_round_trip() {
        let (mut mem, mut arr) = setup();
        for i in 0..10 {
            arr.insert(rec(i), &mut mem);
        }
        assert_eq!(arr.len(), 10);
        assert_eq!(arr.get(7, &mut mem), Some(rec(7)));
        assert_eq!(arr.get(99, &mut mem), None);
    }

    #[test]
    fn get_nth_is_positional() {
        let (mut mem, mut arr) = setup();
        for i in [5u64, 3, 9] {
            arr.insert(rec(i), &mut mem);
        }
        assert_eq!(arr.get_nth(0, &mut mem), Some(rec(5)));
        assert_eq!(arr.get_nth(2, &mut mem), Some(rec(9)));
        assert_eq!(arr.get_nth(3, &mut mem), None);
    }

    #[test]
    fn get_nth_costs_constant_accesses() {
        let (mut mem, mut arr) = setup();
        for i in 0..64 {
            arr.insert(rec(i), &mut mem);
        }
        let a0 = {
            let before = mem.stats().accesses();
            arr.get_nth(0, &mut mem);
            mem.stats().accesses() - before
        };
        let a63 = {
            let before = mem.stats().accesses();
            arr.get_nth(63, &mut mem);
            mem.stats().accesses() - before
        };
        assert_eq!(a0, a63, "array positional access is O(1)");
    }

    #[test]
    fn get_probe_cost_grows_with_position() {
        let (mut mem, mut arr) = setup();
        for i in 0..64 {
            arr.insert(rec(i), &mut mem);
        }
        let cost = |key: u64, mem: &mut MemorySystem, arr: &mut ArrayDdt<Rec>| {
            let before = mem.stats().accesses();
            arr.get(key, mem);
            mem.stats().accesses() - before
        };
        let front = cost(0, &mut mem, &mut arr);
        let back = cost(63, &mut mem, &mut arr);
        assert!(back > front + 50, "linear probe: {front} vs {back}");
    }

    #[test]
    fn remove_shifts_and_preserves_order() {
        let (mut mem, mut arr) = setup();
        for i in 0..5 {
            arr.insert(rec(i), &mut mem);
        }
        assert_eq!(arr.remove(2, &mut mem), Some(rec(2)));
        assert_eq!(arr.len(), 4);
        let order: Vec<u64> = (0..4)
            .map(|i| arr.get_nth(i, &mut mem).unwrap().id)
            .collect();
        assert_eq!(order, vec![0, 1, 3, 4]);
    }

    #[test]
    fn remove_nth_out_of_bounds_is_none() {
        let (mut mem, mut arr) = setup();
        arr.insert(rec(1), &mut mem);
        assert_eq!(arr.remove_nth(5, &mut mem), None);
        assert_eq!(arr.len(), 1);
    }

    #[test]
    fn update_overwrites_first_match() {
        let (mut mem, mut arr) = setup();
        arr.insert(rec(1), &mut mem);
        arr.insert(rec(2), &mut mem);
        assert!(arr.update(2, Rec { id: 2, tag: 777 }, &mut mem));
        assert_eq!(arr.get(2, &mut mem).unwrap().tag, 777);
        assert!(!arr.update(42, rec(42), &mut mem));
    }

    #[test]
    fn growth_doubles_capacity_and_copies() {
        let (mut mem, mut arr) = setup();
        for i in 0..5 {
            arr.insert(rec(i), &mut mem);
        }
        // capacity grew 4 -> 8; all 5 records intact
        assert_eq!(arr.slack(), 3);
        for i in 0..5 {
            assert_eq!(arr.get_nth(i, &mut mem).unwrap().id, i as u64);
        }
    }

    #[test]
    fn footprint_includes_slack() {
        let (mut mem, mut arr) = setup();
        for i in 0..5 {
            arr.insert(rec(i), &mut mem);
        }
        let expected =
            SimAllocator::gross_size(DESCRIPTOR_BYTES) + SimAllocator::gross_size(8 * Rec::SIZE);
        assert_eq!(arr.footprint_bytes(), expected);
    }

    #[test]
    fn clear_releases_buffer() {
        let (mut mem, mut arr) = setup();
        for i in 0..10 {
            arr.insert(rec(i), &mut mem);
        }
        let live_before = mem.alloc_stats().live_gross_bytes;
        arr.clear(&mut mem);
        assert!(arr.is_empty());
        assert!(mem.alloc_stats().live_gross_bytes < live_before);
        // container remains usable
        arr.insert(rec(77), &mut mem);
        assert_eq!(arr.get(77, &mut mem), Some(rec(77)));
    }

    #[test]
    fn scan_visits_in_order_and_stops_early() {
        let (mut mem, mut arr) = setup();
        for i in 0..6 {
            arr.insert(rec(i), &mut mem);
        }
        let mut seen = Vec::new();
        arr.scan(&mut mem, &mut |r| {
            seen.push(r.id);
            r.id < 3
        });
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn duplicate_keys_resolve_to_first() {
        let (mut mem, mut arr) = setup();
        arr.insert(Rec { id: 5, tag: 1 }, &mut mem);
        arr.insert(Rec { id: 5, tag: 2 }, &mut mem);
        assert_eq!(arr.get(5, &mut mem).unwrap().tag, 1);
        assert_eq!(arr.remove(5, &mut mem).unwrap().tag, 1);
        assert_eq!(arr.get(5, &mut mem).unwrap().tag, 2);
    }
}
