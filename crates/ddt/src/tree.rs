//! `AVL` — height-balanced search tree with insertion-order threading
//! (extension DDT).

use crate::ddt::Ddt;
use crate::kind::DdtKind;
use crate::layout::{DESCRIPTOR_BYTES, KEY_BYTES, PTR_BYTES};
use crate::record::Record;
use ddtr_mem::{MemorySystem, SimAllocator, VirtAddr};

/// Descriptor layout: root pointer, record count, order head, order tail.
const TREE_DESCRIPTOR_BYTES: u64 = DESCRIPTOR_BYTES + PTR_BYTES;

/// Bytes of the balance/height word stored in every node.
const HEIGHT_BYTES: u64 = 8;

/// Host-side shape of one AVL node. The simulated node lives at `addr`;
/// this mirror only exists to drive the traffic model deterministically.
#[derive(Debug, Clone, Copy)]
struct AvlNode {
    key: u64,
    addr: VirtAddr,
    left: Option<usize>,
    right: Option<usize>,
    height: i32,
}

/// The `AVL` extension dynamic data type: records indexed by a
/// height-balanced binary search tree, additionally threaded on a doubly
/// linked insertion-order list so positional operations and scans observe
/// the same logical order as every other DDT.
///
/// This is not one of the paper's ten library DDTs; it belongs to the
/// *extended* candidate set ([`DdtKind::EXTENDED`]).
///
/// Characteristics the exploration measures: O(log n) key operations —
/// the cheapest key search of the whole library at large populations —
/// paid for with the largest node (four link words plus a height word) and
/// rotation write traffic on mutation.
///
/// Keys must be unique for key-based operations (the general [`Ddt`]
/// contract); if duplicates are stored, key operations act on an
/// unspecified duplicate.
///
/// # Panics
///
/// All mutating operations panic if the simulated heap is exhausted.
///
/// # Example
///
/// ```
/// use ddtr_ddt::{Ddt, TreeDdt, Record};
/// use ddtr_mem::{MemoryConfig, MemorySystem};
///
/// # #[derive(Clone)] struct R(u64);
/// # impl Record for R { const SIZE: u64 = 16; fn key(&self) -> u64 { self.0 } }
/// let mut mem = MemorySystem::new(MemoryConfig::default());
/// let mut tree = TreeDdt::new(&mut mem);
/// for k in 0..100 {
///     tree.insert(R(k), &mut mem);
/// }
/// assert_eq!(tree.get(42, &mut mem).map(|r| r.0), Some(42));
/// ```
#[derive(Debug)]
pub struct TreeDdt<R: Record> {
    desc: VirtAddr,
    root: Option<usize>,
    /// Host arena of tree nodes; freed slots are recycled.
    slab: Vec<AvlNode>,
    free_slots: Vec<usize>,
    /// Host mirror of the insertion-order thread.
    nodes: Vec<(VirtAddr, R)>,
}

impl<R: Record> TreeDdt<R> {
    /// Creates an empty tree container, allocating its descriptor.
    ///
    /// # Panics
    ///
    /// Panics if the simulated heap cannot hold the descriptor.
    #[must_use]
    pub fn new(mem: &mut MemorySystem) -> Self {
        let desc = mem
            .alloc_hot(TREE_DESCRIPTOR_BYTES)
            .expect("simulated heap exhausted allocating tree descriptor");
        mem.write(desc, TREE_DESCRIPTOR_BYTES);
        TreeDdt {
            desc,
            root: None,
            slab: Vec::new(),
            free_slots: Vec::new(),
            nodes: Vec::new(),
        }
    }

    /// Height of the tree (0 when empty) — balance diagnostic.
    #[must_use]
    pub fn height(&self) -> u32 {
        self.root.map_or(0, |r| self.slab[r].height as u32)
    }

    fn node_bytes() -> u64 {
        R::SIZE + 4 * PTR_BYTES + HEIGHT_BYTES
    }

    fn h(&self, n: Option<usize>) -> i32 {
        n.map_or(0, |i| self.slab[i].height)
    }

    fn balance(&self, i: usize) -> i32 {
        self.h(self.slab[i].left) - self.h(self.slab[i].right)
    }

    fn update_height(&mut self, i: usize, mem: &mut MemorySystem) {
        let nh = 1 + self.h(self.slab[i].left).max(self.h(self.slab[i].right));
        if nh != self.slab[i].height {
            self.slab[i].height = nh;
            mem.write(
                self.slab[i].addr.offset(R::SIZE + 4 * PTR_BYTES),
                HEIGHT_BYTES,
            );
        }
        mem.touch_cpu(1);
    }

    /// One rotation: three child-pointer rewrites plus two height updates.
    fn rotate(&mut self, i: usize, left_rotation: bool, mem: &mut MemorySystem) -> usize {
        let pivot = if left_rotation {
            self.slab[i]
                .right
                .expect("left rotation needs a right child")
        } else {
            self.slab[i]
                .left
                .expect("right rotation needs a left child")
        };
        mem.read(self.slab[pivot].addr.offset(R::SIZE), 2 * PTR_BYTES);
        if left_rotation {
            self.slab[i].right = self.slab[pivot].left;
            self.slab[pivot].left = Some(i);
        } else {
            self.slab[i].left = self.slab[pivot].right;
            self.slab[pivot].right = Some(i);
        }
        // Rewire: demoted node's child, pivot's child, parent's link (the
        // caller writes the parent link by storing the returned index).
        mem.write(self.slab[i].addr.offset(R::SIZE), 2 * PTR_BYTES);
        mem.write(self.slab[pivot].addr.offset(R::SIZE), 2 * PTR_BYTES);
        mem.touch_cpu(3);
        self.update_height(i, mem);
        self.update_height(pivot, mem);
        pivot
    }

    /// Rebalances node `i` after a mutation below it, returning the new
    /// subtree root.
    fn rebalance(&mut self, i: usize, mem: &mut MemorySystem) -> usize {
        self.update_height(i, mem);
        let bf = self.balance(i);
        mem.touch_cpu(1);
        if bf > 1 {
            let l = self.slab[i].left.expect("left-heavy implies left child");
            if self.balance(l) < 0 {
                let new_l = self.rotate(l, true, mem);
                self.slab[i].left = Some(new_l);
            }
            self.rotate(i, false, mem)
        } else if bf < -1 {
            let r = self.slab[i].right.expect("right-heavy implies right child");
            if self.balance(r) > 0 {
                let new_r = self.rotate(r, false, mem);
                self.slab[i].right = Some(new_r);
            }
            self.rotate(i, true, mem)
        } else {
            i
        }
    }

    fn alloc_slot(&mut self, node: AvlNode) -> usize {
        if let Some(slot) = self.free_slots.pop() {
            self.slab[slot] = node;
            slot
        } else {
            self.slab.push(node);
            self.slab.len() - 1
        }
    }

    /// Recursive AVL insert charging one key read, one compare and one
    /// child-pointer read per level of the descent.
    fn insert_at(
        &mut self,
        at: Option<usize>,
        key: u64,
        addr: VirtAddr,
        mem: &mut MemorySystem,
    ) -> usize {
        let Some(i) = at else {
            return self.alloc_slot(AvlNode {
                key,
                addr,
                left: None,
                right: None,
                height: 1,
            });
        };
        mem.read(self.slab[i].addr, KEY_BYTES);
        mem.touch_cpu(1);
        mem.read(self.slab[i].addr.offset(R::SIZE), PTR_BYTES);
        if key < self.slab[i].key {
            let child = self.insert_at(self.slab[i].left, key, addr, mem);
            if self.slab[i].left != Some(child) {
                self.slab[i].left = Some(child);
                mem.write(self.slab[i].addr.offset(R::SIZE), PTR_BYTES);
            }
        } else {
            let child = self.insert_at(self.slab[i].right, key, addr, mem);
            if self.slab[i].right != Some(child) {
                self.slab[i].right = Some(child);
                mem.write(self.slab[i].addr.offset(R::SIZE + PTR_BYTES), PTR_BYTES);
            }
        }
        self.rebalance(i, mem)
    }

    /// Recursive AVL delete of `key`, returning the new subtree root.
    fn remove_at(&mut self, at: Option<usize>, key: u64, mem: &mut MemorySystem) -> Option<usize> {
        let i = at?;
        mem.read(self.slab[i].addr, KEY_BYTES);
        mem.touch_cpu(1);
        if key < self.slab[i].key {
            mem.read(self.slab[i].addr.offset(R::SIZE), PTR_BYTES);
            let child = self.remove_at(self.slab[i].left, key, mem);
            if self.slab[i].left != child {
                self.slab[i].left = child;
                mem.write(self.slab[i].addr.offset(R::SIZE), PTR_BYTES);
            }
        } else if key > self.slab[i].key {
            mem.read(self.slab[i].addr.offset(R::SIZE + PTR_BYTES), PTR_BYTES);
            let child = self.remove_at(self.slab[i].right, key, mem);
            if self.slab[i].right != child {
                self.slab[i].right = child;
                mem.write(self.slab[i].addr.offset(R::SIZE + PTR_BYTES), PTR_BYTES);
            }
        } else {
            // Found the node to unlink from the tree shape.
            match (self.slab[i].left, self.slab[i].right) {
                (None, None) => {
                    self.free_slots.push(i);
                    return None;
                }
                (Some(c), None) | (None, Some(c)) => {
                    mem.read(self.slab[i].addr.offset(R::SIZE), 2 * PTR_BYTES);
                    self.free_slots.push(i);
                    return Some(c);
                }
                (Some(_), Some(r)) => {
                    // Two children: splice the in-order successor (leftmost
                    // of the right subtree) into this position.
                    let mut succ = r;
                    mem.read(self.slab[succ].addr, KEY_BYTES);
                    while let Some(l) = self.slab[succ].left {
                        mem.read(self.slab[succ].addr.offset(R::SIZE), PTR_BYTES);
                        mem.touch_cpu(1);
                        succ = l;
                        mem.read(self.slab[succ].addr, KEY_BYTES);
                    }
                    let (skey, saddr) = (self.slab[succ].key, self.slab[succ].addr);
                    let new_right = self.remove_at(self.slab[i].right, skey, mem);
                    self.slab[i].right = new_right;
                    self.slab[i].key = skey;
                    self.slab[i].addr = saddr;
                    // Splice writes: the successor's identity replaces the
                    // removed node's key/record pointer fields.
                    mem.write(self.slab[i].addr.offset(R::SIZE + PTR_BYTES), PTR_BYTES);
                }
            }
        }
        Some(self.rebalance(i, mem))
    }

    /// Tree descent charging per visited level; returns the slab index of
    /// the node holding `key`.
    fn find_tree(&self, key: u64, mem: &mut MemorySystem) -> Option<usize> {
        mem.read(self.desc, PTR_BYTES); // root pointer
        let mut cur = self.root;
        while let Some(i) = cur {
            mem.read(self.slab[i].addr, KEY_BYTES);
            mem.touch_cpu(1);
            if key == self.slab[i].key {
                return Some(i);
            }
            cur = if key < self.slab[i].key {
                mem.read(self.slab[i].addr.offset(R::SIZE), PTR_BYTES);
                self.slab[i].left
            } else {
                mem.read(self.slab[i].addr.offset(R::SIZE + PTR_BYTES), PTR_BYTES);
                self.slab[i].right
            };
        }
        None
    }

    fn order_index_of(&self, addr: VirtAddr) -> usize {
        self.nodes
            .iter()
            .position(|&(a, _)| a == addr)
            .expect("tree node is on the order list")
    }

    /// Unlinks `addr` from the order thread and frees its block.
    fn unlink_order(&mut self, addr: VirtAddr, mem: &mut MemorySystem) -> R {
        mem.read(addr.offset(R::SIZE + 2 * PTR_BYTES), 2 * PTR_BYTES);
        mem.write(self.desc.offset(DESCRIPTOR_BYTES), PTR_BYTES);
        let idx = self.order_index_of(addr);
        let (_, rec) = self.nodes.remove(idx);
        mem.free(addr).expect("tree node is live");
        rec
    }
}

impl<R: Record> Ddt<R> for TreeDdt<R> {
    fn kind(&self) -> DdtKind {
        DdtKind::Avl
    }

    fn insert(&mut self, rec: R, mem: &mut MemorySystem) {
        let key = rec.key();
        let addr = mem
            .alloc(Self::node_bytes())
            .expect("simulated heap exhausted allocating tree node");
        mem.write(addr, Self::node_bytes());
        mem.read(self.desc, PTR_BYTES); // root pointer
        let new_root = self.insert_at(self.root, key, addr, mem);
        if self.root != Some(new_root) {
            mem.write(self.desc, PTR_BYTES);
        }
        self.root = Some(new_root);
        // Order append at the tail.
        mem.read(self.desc.offset(DESCRIPTOR_BYTES), PTR_BYTES);
        if let Some(&(prev_tail, _)) = self.nodes.last() {
            mem.write(prev_tail.offset(R::SIZE + 2 * PTR_BYTES), PTR_BYTES);
        }
        mem.write(self.desc.offset(16), 8 + PTR_BYTES); // count + tail
        self.nodes.push((addr, rec));
    }

    fn get(&mut self, key: u64, mem: &mut MemorySystem) -> Option<R> {
        let i = self.find_tree(key, mem)?;
        let addr = self.slab[i].addr;
        mem.read(addr, R::SIZE);
        let idx = self.order_index_of(addr);
        Some(self.nodes[idx].1.clone())
    }

    fn get_nth(&mut self, idx: usize, mem: &mut MemorySystem) -> Option<R> {
        if idx >= self.nodes.len() {
            return None;
        }
        mem.read(self.desc.offset(DESCRIPTOR_BYTES), PTR_BYTES);
        for i in 0..idx {
            mem.read(self.nodes[i].0.offset(R::SIZE + 2 * PTR_BYTES), PTR_BYTES);
            mem.touch_cpu(1);
        }
        mem.read(self.nodes[idx].0, R::SIZE);
        Some(self.nodes[idx].1.clone())
    }

    fn update(&mut self, key: u64, rec: R, mem: &mut MemorySystem) -> bool {
        let Some(i) = self.find_tree(key, mem) else {
            return false;
        };
        let addr = self.slab[i].addr;
        mem.write(addr, R::SIZE);
        let idx = self.order_index_of(addr);
        self.nodes[idx].1 = rec;
        true
    }

    fn remove(&mut self, key: u64, mem: &mut MemorySystem) -> Option<R> {
        let i = self.find_tree(key, mem)?;
        let addr = self.slab[i].addr;
        mem.read(addr, R::SIZE);
        self.root = self.remove_at(self.root, key, mem);
        mem.write(self.desc.offset(16), 8); // count
        Some(self.unlink_order(addr, mem))
    }

    fn remove_nth(&mut self, idx: usize, mem: &mut MemorySystem) -> Option<R> {
        if idx >= self.nodes.len() {
            return None;
        }
        mem.read(self.desc.offset(DESCRIPTOR_BYTES), PTR_BYTES);
        for i in 0..idx {
            mem.read(self.nodes[i].0.offset(R::SIZE + 2 * PTR_BYTES), PTR_BYTES);
            mem.touch_cpu(1);
        }
        let (addr, _) = self.nodes[idx];
        mem.read(addr, R::SIZE);
        let key = self.nodes[idx].1.key();
        self.root = self.remove_at(self.root, key, mem);
        mem.write(self.desc.offset(16), 8); // count
        Some(self.unlink_order(addr, mem))
    }

    fn scan(&mut self, mem: &mut MemorySystem, visit: &mut dyn FnMut(&R) -> bool) {
        mem.read(self.desc.offset(DESCRIPTOR_BYTES), PTR_BYTES);
        for (addr, rec) in &self.nodes {
            mem.read(*addr, R::SIZE);
            mem.read(addr.offset(R::SIZE + 2 * PTR_BYTES), PTR_BYTES);
            mem.touch_cpu(1);
            if !visit(rec) {
                return;
            }
        }
    }

    fn len(&self) -> usize {
        self.nodes.len()
    }

    fn clear(&mut self, mem: &mut MemorySystem) {
        for (addr, _) in self.nodes.drain(..) {
            mem.free(addr).expect("tree node is live");
        }
        self.root = None;
        self.slab.clear();
        self.free_slots.clear();
        mem.write(self.desc, TREE_DESCRIPTOR_BYTES);
    }

    fn footprint_bytes(&self) -> u64 {
        SimAllocator::gross_size(TREE_DESCRIPTOR_BYTES)
            + self.nodes.len() as u64 * SimAllocator::gross_size(Self::node_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TestRecord;
    use ddtr_mem::MemoryConfig;

    type Rec = TestRecord<32>;

    fn rec(id: u64) -> Rec {
        Rec { id, tag: id * 100 }
    }

    fn setup() -> (MemorySystem, TreeDdt<Rec>) {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let tree = TreeDdt::new(&mut mem);
        (mem, tree)
    }

    #[test]
    fn insert_get_round_trip() {
        let (mut mem, mut t) = setup();
        for i in 0..100 {
            t.insert(rec(i), &mut mem);
        }
        assert_eq!(t.len(), 100);
        assert_eq!(t.get(63, &mut mem), Some(rec(63)));
        assert_eq!(t.get(1000, &mut mem), None);
    }

    #[test]
    fn tree_stays_balanced_under_sorted_inserts() {
        let (mut mem, mut t) = setup();
        for i in 0..1024 {
            t.insert(rec(i), &mut mem);
        }
        // AVL height bound: < 1.45 * log2(n + 2).
        assert!(t.height() <= 15, "height {} exceeds AVL bound", t.height());
    }

    #[test]
    fn tree_stays_balanced_under_reverse_and_interleaved_inserts() {
        let (mut mem, mut t) = setup();
        for i in (0..512).rev() {
            t.insert(rec(i * 2), &mut mem);
        }
        for i in 0..512 {
            t.insert(rec(i * 2 + 1), &mut mem);
        }
        assert_eq!(t.len(), 1024);
        assert!(t.height() <= 15, "height {} exceeds AVL bound", t.height());
    }

    #[test]
    fn positional_ops_follow_insertion_order() {
        let (mut mem, mut t) = setup();
        for &k in &[50u64, 10, 90, 30, 70] {
            t.insert(rec(k), &mut mem);
        }
        assert_eq!(t.get_nth(0, &mut mem), Some(rec(50)));
        assert_eq!(t.get_nth(4, &mut mem), Some(rec(70)));
        let mut seen = Vec::new();
        t.scan(&mut mem, &mut |r| {
            seen.push(r.id);
            true
        });
        assert_eq!(seen, vec![50, 10, 90, 30, 70]);
    }

    #[test]
    fn remove_all_in_random_order_keeps_tree_consistent() {
        let (mut mem, mut t) = setup();
        let keys: Vec<u64> = (0..64).map(|i| (i * 37) % 64).collect();
        for &k in &keys {
            t.insert(rec(k), &mut mem);
        }
        for &k in keys.iter().rev() {
            assert_eq!(t.remove(k, &mut mem), Some(rec(k)), "key {k}");
            assert_eq!(t.get(k, &mut mem), None);
        }
        assert_eq!(t.len(), 0);
        assert_eq!(t.height(), 0);
    }

    #[test]
    fn remove_node_with_two_children() {
        let (mut mem, mut t) = setup();
        for &k in &[50u64, 25, 75, 10, 30, 60, 90] {
            t.insert(rec(k), &mut mem);
        }
        assert_eq!(t.remove(50, &mut mem), Some(rec(50)));
        for &k in &[25u64, 75, 10, 30, 60, 90] {
            assert_eq!(t.get(k, &mut mem), Some(rec(k)), "survivor {k}");
        }
    }

    #[test]
    fn remove_nth_is_positional() {
        let (mut mem, mut t) = setup();
        for &k in &[5u64, 1, 9] {
            t.insert(rec(k), &mut mem);
        }
        assert_eq!(t.remove_nth(1, &mut mem), Some(rec(1)));
        assert_eq!(t.remove_nth(9, &mut mem), None);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(1, &mut mem), None);
    }

    #[test]
    fn key_search_beats_list_scan_at_scale() {
        let mut mem_t = MemorySystem::new(MemoryConfig::default());
        let mut t = TreeDdt::<Rec>::new(&mut mem_t);
        let mut mem_l = MemorySystem::new(MemoryConfig::default());
        let mut l = crate::LinkedDdt::<Rec>::sll(&mut mem_l);
        for i in 0..512 {
            t.insert(rec(i), &mut mem_t);
            l.insert(rec(i), &mut mem_l);
        }
        let before_t = mem_t.stats().accesses();
        let _ = t.get(511, &mut mem_t);
        let tree_cost = mem_t.stats().accesses() - before_t;
        let before_l = mem_l.stats().accesses();
        let _ = l.get(511, &mut mem_l);
        let list_cost = mem_l.stats().accesses() - before_l;
        assert!(
            tree_cost * 10 < list_cost,
            "tree descent ({tree_cost}) should be >10x cheaper than list scan ({list_cost})"
        );
    }

    #[test]
    fn clear_returns_heap_to_descriptor() {
        let (mut mem, mut t) = setup();
        for i in 0..50 {
            t.insert(rec(i), &mut mem);
        }
        t.clear(&mut mem);
        assert_eq!(t.len(), 0);
        let expected = SimAllocator::gross_size(TREE_DESCRIPTOR_BYTES);
        assert_eq!(mem.alloc_stats().live_gross_bytes, expected);
        assert_eq!(t.footprint_bytes(), expected);
    }

    #[test]
    fn footprint_tracks_live_heap() {
        let (mut mem, mut t) = setup();
        for i in 0..48 {
            t.insert(rec(i), &mut mem);
            assert_eq!(t.footprint_bytes(), mem.alloc_stats().live_gross_bytes);
        }
        for i in (0..48).rev() {
            t.remove(i, &mut mem);
            assert_eq!(t.footprint_bytes(), mem.alloc_stats().live_gross_bytes);
        }
    }
}
