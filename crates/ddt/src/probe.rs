//! Profiling wrapper — the "profile object" of the methodology's first step.

use crate::ddt::Ddt;
use crate::kind::DdtKind;
use crate::record::Record;
use ddtr_mem::MemorySystem;
use serde::{Deserialize, Serialize};

/// Per-operation counters collected by a [`ProfiledDdt`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCounts {
    /// `insert` calls.
    pub inserts: u64,
    /// `get` (key search) calls.
    pub gets: u64,
    /// `get_nth` (positional) calls.
    pub get_nths: u64,
    /// `update` calls.
    pub updates: u64,
    /// `remove` + `remove_nth` calls.
    pub removes: u64,
    /// `scan` calls.
    pub scans: u64,
    /// Memory accesses attributed to this container.
    pub accesses: u64,
}

impl OpCounts {
    /// Total operation count (excluding the access tally).
    #[must_use]
    pub fn total_ops(&self) -> u64 {
        self.inserts + self.gets + self.get_nths + self.updates + self.removes + self.scans
    }
}

/// Wraps any [`Ddt`] and counts its operations and memory accesses.
///
/// The paper's step 1 "attaches to each candidate DDT of the network
/// application a profile object and runs the application for some typical
/// input traces"; the access shares collected here determine which
/// containers are *dominant* and therefore worth exploring.
///
/// # Example
///
/// ```
/// use ddtr_ddt::{Ddt, DdtKind, ProfiledDdt, Record};
/// use ddtr_mem::{MemoryConfig, MemorySystem};
///
/// # #[derive(Clone)] struct R(u64);
/// # impl Record for R { const SIZE: u64 = 16; fn key(&self) -> u64 { self.0 } }
/// let mut mem = MemorySystem::new(MemoryConfig::default());
/// let inner = DdtKind::Sll.instantiate::<R>(&mut mem);
/// let mut probe = ProfiledDdt::new(inner);
/// probe.insert(R(1), &mut mem);
/// probe.get(1, &mut mem);
/// let counts = probe.counts();
/// assert_eq!(counts.inserts, 1);
/// assert_eq!(counts.gets, 1);
/// assert!(counts.accesses > 0);
/// ```
pub struct ProfiledDdt<R: Record> {
    inner: Box<dyn Ddt<R>>,
    counts: OpCounts,
}

impl<R: Record> ProfiledDdt<R> {
    /// Attaches a profile object to `inner`.
    #[must_use]
    pub fn new(inner: Box<dyn Ddt<R>>) -> Self {
        ProfiledDdt {
            inner,
            counts: OpCounts::default(),
        }
    }

    /// The counters collected so far.
    #[must_use]
    pub fn counts(&self) -> OpCounts {
        self.counts
    }

    /// Detaches the profile object, returning the wrapped container.
    #[must_use]
    pub fn into_inner(self) -> Box<dyn Ddt<R>> {
        self.inner
    }

    fn tally<T>(
        &mut self,
        mem: &mut MemorySystem,
        bump: impl FnOnce(&mut OpCounts),
        op: impl FnOnce(&mut dyn Ddt<R>, &mut MemorySystem) -> T,
    ) -> T {
        let before = mem.stats().accesses();
        let out = op(self.inner.as_mut(), mem);
        self.counts.accesses += mem.stats().accesses() - before;
        bump(&mut self.counts);
        out
    }
}

impl<R: Record> Ddt<R> for ProfiledDdt<R> {
    fn kind(&self) -> DdtKind {
        self.inner.kind()
    }

    fn insert(&mut self, rec: R, mem: &mut MemorySystem) {
        self.tally(mem, |c| c.inserts += 1, |d, m| d.insert(rec, m));
    }

    fn get(&mut self, key: u64, mem: &mut MemorySystem) -> Option<R> {
        self.tally(mem, |c| c.gets += 1, |d, m| d.get(key, m))
    }

    fn get_nth(&mut self, idx: usize, mem: &mut MemorySystem) -> Option<R> {
        self.tally(mem, |c| c.get_nths += 1, |d, m| d.get_nth(idx, m))
    }

    fn update(&mut self, key: u64, rec: R, mem: &mut MemorySystem) -> bool {
        self.tally(mem, |c| c.updates += 1, |d, m| d.update(key, rec, m))
    }

    fn remove(&mut self, key: u64, mem: &mut MemorySystem) -> Option<R> {
        self.tally(mem, |c| c.removes += 1, |d, m| d.remove(key, m))
    }

    fn remove_nth(&mut self, idx: usize, mem: &mut MemorySystem) -> Option<R> {
        self.tally(mem, |c| c.removes += 1, |d, m| d.remove_nth(idx, m))
    }

    fn scan(&mut self, mem: &mut MemorySystem, visit: &mut dyn FnMut(&R) -> bool) {
        self.tally(mem, |c| c.scans += 1, |d, m| d.scan(m, visit));
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn clear(&mut self, mem: &mut MemorySystem) {
        self.tally(mem, |_| {}, |d, m| d.clear(m));
    }

    fn footprint_bytes(&self) -> u64 {
        self.inner.footprint_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TestRecord;
    use ddtr_mem::MemoryConfig;

    type Rec = TestRecord<16>;

    #[test]
    fn counts_every_operation_category() {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut p = ProfiledDdt::new(DdtKind::Dll.instantiate::<Rec>(&mut mem));
        p.insert(Rec { id: 1, tag: 0 }, &mut mem);
        p.insert(Rec { id: 2, tag: 0 }, &mut mem);
        p.get(1, &mut mem);
        p.get_nth(0, &mut mem);
        p.update(2, Rec { id: 2, tag: 9 }, &mut mem);
        p.remove(1, &mut mem);
        p.remove_nth(0, &mut mem);
        p.scan(&mut mem, &mut |_| true);
        let c = p.counts();
        assert_eq!(c.inserts, 2);
        assert_eq!(c.gets, 1);
        assert_eq!(c.get_nths, 1);
        assert_eq!(c.updates, 1);
        assert_eq!(c.removes, 2);
        assert_eq!(c.scans, 1);
        assert_eq!(c.total_ops(), 8);
        assert!(c.accesses > 8);
    }

    #[test]
    fn accesses_attributed_only_to_wrapped_container() {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut p = ProfiledDdt::new(DdtKind::Sll.instantiate::<Rec>(&mut mem));
        let mut other = DdtKind::Sll.instantiate::<Rec>(&mut mem);
        p.insert(Rec { id: 1, tag: 0 }, &mut mem);
        let after_insert = p.counts().accesses;
        // traffic on another container must not be attributed to `p`
        other.insert(Rec { id: 5, tag: 0 }, &mut mem);
        other.get(5, &mut mem);
        assert_eq!(p.counts().accesses, after_insert);
    }

    #[test]
    fn into_inner_preserves_contents() {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut p = ProfiledDdt::new(DdtKind::Array.instantiate::<Rec>(&mut mem));
        p.insert(Rec { id: 3, tag: 4 }, &mut mem);
        let mut inner = p.into_inner();
        assert_eq!(inner.get(3, &mut mem).map(|r| r.tag), Some(4));
    }

    #[test]
    fn kind_passthrough() {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let p = ProfiledDdt::new(DdtKind::SllChunkRov.instantiate::<Rec>(&mut mem));
        assert_eq!(p.kind(), DdtKind::SllChunkRov);
    }
}
