//! The record abstraction stored by every DDT.

/// A fixed-size, keyed record storable in any [`crate::Ddt`].
///
/// `SIZE` is the *modelled* on-platform size in bytes (what the embedded
/// structure would occupy), not the host `size_of`. The key is assumed to
/// occupy the first [`crate::KEY_BYTES`] bytes of the record, which is what
/// a key-probe access reads during searches.
///
/// # Example
///
/// ```
/// use ddtr_ddt::Record;
///
/// #[derive(Clone)]
/// struct RouteEntry { dest: u64, next_hop: u32, metric: u32 }
///
/// impl Record for RouteEntry {
///     const SIZE: u64 = 40; // modelled rtentry size
///     fn key(&self) -> u64 { self.dest }
/// }
/// ```
pub trait Record: Clone {
    /// Modelled record size in bytes on the embedded platform.
    const SIZE: u64;

    /// The search key of this record (first field of the modelled layout).
    fn key(&self) -> u64;
}

/// A minimal keyed record of a configurable modelled size.
///
/// Intended for tests and micro-benchmarks; applications define their own
/// domain records.
///
/// # Example
///
/// ```
/// use ddtr_ddt::{Record, TestRecord};
///
/// let r = TestRecord::<64> { id: 3, tag: 0 };
/// assert_eq!(TestRecord::<64>::SIZE, 64);
/// assert_eq!(r.key(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TestRecord<const SIZE_BYTES: u64> {
    /// Key value.
    pub id: u64,
    /// An arbitrary payload word so tests can detect stale data.
    pub tag: u64,
}

impl<const SIZE_BYTES: u64> Record for TestRecord<SIZE_BYTES> {
    const SIZE: u64 = SIZE_BYTES;
    fn key(&self) -> u64 {
        self.id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_record_reports_size_and_key() {
        let r = TestRecord::<32> { id: 9, tag: 1 };
        assert_eq!(TestRecord::<32>::SIZE, 32);
        assert_eq!(r.key(), 9);
    }
}
