//! The common interface of all dynamic data types.

use crate::record::Record;
use crate::DdtKind;
use ddtr_mem::MemorySystem;

/// A dynamic data type: a run-time-allocated, keyed record container.
///
/// This is the instrumentation interface of the methodology: the paper
/// inserts "typical functions operating on DDTs (e.g. add a record, access
/// a record or remove a record)" into the application once, and then swaps
/// the implementation behind this interface for every exploration run.
///
/// Every method takes the [`MemorySystem`] the container lives in and
/// issues the memory traffic the modelled structure would issue. Methods
/// that search or position take `&mut self` because the roving-pointer
/// variants update their roving position on reads.
///
/// Keys are expected to be unique within a container (network records —
/// routes, sessions, rules, flows — carry unique identifiers). If duplicate
/// keys are stored anyway, non-roving implementations operate on the first
/// match in logical order, while roving implementations may operate on the
/// most recently accessed match first.
///
/// # Object safety
///
/// The trait is object-safe for a fixed record type: exploration code works
/// with `Box<dyn Ddt<R>>` values produced by [`DdtKind::instantiate`].
pub trait Ddt<R: Record> {
    /// Which of the ten implementations this is.
    fn kind(&self) -> DdtKind;

    /// Appends a record at the logical end of the container.
    fn insert(&mut self, rec: R, mem: &mut MemorySystem);

    /// Returns a copy of the first record whose key equals `key`.
    fn get(&mut self, key: u64, mem: &mut MemorySystem) -> Option<R>;

    /// Returns a copy of the record at logical position `idx`.
    fn get_nth(&mut self, idx: usize, mem: &mut MemorySystem) -> Option<R>;

    /// Overwrites the first record whose key equals `key`; returns whether
    /// a record was found.
    fn update(&mut self, key: u64, rec: R, mem: &mut MemorySystem) -> bool;

    /// Removes and returns the first record whose key equals `key`.
    fn remove(&mut self, key: u64, mem: &mut MemorySystem) -> Option<R>;

    /// Removes and returns the record at logical position `idx`.
    fn remove_nth(&mut self, idx: usize, mem: &mut MemorySystem) -> Option<R>;

    /// Visits records in logical order until the visitor returns `false`.
    ///
    /// The traversal reads every visited record in full, plus the link
    /// fields needed to reach it — exactly the traffic of an iterator over
    /// the modelled structure.
    fn scan(&mut self, mem: &mut MemorySystem, visit: &mut dyn FnMut(&R) -> bool);

    /// Number of records currently stored.
    fn len(&self) -> usize;

    /// Whether the container is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes all records and returns their heap blocks to the simulated
    /// allocator.
    fn clear(&mut self, mem: &mut MemorySystem);

    /// Current modelled heap bytes attributable to this container
    /// (descriptor, link fields, chunk headers, slack capacity and records,
    /// including allocator overhead).
    fn footprint_bytes(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TestRecord;
    use crate::DdtKind;
    use ddtr_mem::{MemoryConfig, MemorySystem};

    type Rec = TestRecord<32>;

    #[test]
    fn trait_is_object_safe_and_default_is_empty() {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let ddt: Box<dyn Ddt<Rec>> = DdtKind::Array.instantiate(&mut mem);
        assert!(ddt.is_empty());
        assert_eq!(ddt.len(), 0);
    }
}
