//! Enumeration of the ten DDT implementations.

use crate::array::ArrayDdt;
use crate::array_ptr::ArrayPtrDdt;
use crate::chunked::ChunkedDdt;
use crate::ddt::Ddt;
use crate::hash::HashDdt;
use crate::linked::LinkedDdt;
use crate::record::Record;
use crate::tree::TreeDdt;
use ddtr_mem::MemorySystem;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// The dynamic-data-type implementations of the exploration library.
///
/// The first ten variants ([`DdtKind::ALL`]) are the paper's C++ DDT
/// library; [`DdtKind::Hash`] and [`DdtKind::Avl`] are *extension*
/// candidates ([`DdtKind::EXTENDED`]) demonstrating that the methodology
/// absorbs new implementations without touching the instrumentation.
///
/// Display names follow the notation of the original DDT-library papers:
/// `AR`, `AR(P)`, `SLL`, `DLL`, `SLL(O)`, `DLL(O)`, `SLL(AR)`, `DLL(AR)`,
/// `SLL(ARO)`, `DLL(ARO)` — plus `HSH` and `AVL` for the extensions.
///
/// # Example
///
/// ```
/// use ddtr_ddt::DdtKind;
///
/// assert_eq!(DdtKind::ALL.len(), 10);
/// assert_eq!(DdtKind::SllRov.to_string(), "SLL(O)");
/// assert_eq!("DLL(AR)".parse::<DdtKind>()?, DdtKind::DllChunk);
/// # Ok::<(), ddtr_ddt::ParseDdtKindError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DdtKind {
    /// Contiguous growable array of records (`AR`).
    Array,
    /// Growable array of pointers to individually allocated records (`AR(P)`).
    ArrayPtr,
    /// Singly linked list (`SLL`).
    Sll,
    /// Doubly linked list (`DLL`).
    Dll,
    /// Singly linked list with a roving pointer (`SLL(O)`).
    SllRov,
    /// Doubly linked list with a roving pointer (`DLL(O)`).
    DllRov,
    /// Singly linked list of array chunks (`SLL(AR)`).
    SllChunk,
    /// Doubly linked list of array chunks (`DLL(AR)`).
    DllChunk,
    /// Chunked singly linked list with a roving pointer (`SLL(ARO)`).
    SllChunkRov,
    /// Chunked doubly linked list with a roving pointer (`DLL(ARO)`).
    DllChunkRov,
    /// Insertion-order-preserving chained hash table (`HSH`) — extension.
    Hash,
    /// Height-balanced search tree with order threading (`AVL`) — extension.
    Avl,
}

impl DdtKind {
    /// All ten implementations, in canonical exploration order.
    pub const ALL: [DdtKind; 10] = [
        DdtKind::Array,
        DdtKind::ArrayPtr,
        DdtKind::Sll,
        DdtKind::Dll,
        DdtKind::SllRov,
        DdtKind::DllRov,
        DdtKind::SllChunk,
        DdtKind::DllChunk,
        DdtKind::SllChunkRov,
        DdtKind::DllChunkRov,
    ];

    /// The extended candidate set: the paper's ten plus the two extension
    /// DDTs. [`DdtKind::ALL`] is a prefix of this array.
    pub const EXTENDED: [DdtKind; 12] = [
        DdtKind::Array,
        DdtKind::ArrayPtr,
        DdtKind::Sll,
        DdtKind::Dll,
        DdtKind::SllRov,
        DdtKind::DllRov,
        DdtKind::SllChunk,
        DdtKind::DllChunk,
        DdtKind::SllChunkRov,
        DdtKind::DllChunkRov,
        DdtKind::Hash,
        DdtKind::Avl,
    ];

    /// Builds a fresh, empty container of this kind for records of type
    /// `R`, allocating its descriptor in `mem`.
    ///
    /// # Panics
    ///
    /// Panics if the simulated heap cannot even hold a container descriptor.
    #[must_use]
    pub fn instantiate<R: Record + 'static>(self, mem: &mut MemorySystem) -> Box<dyn Ddt<R>> {
        match self {
            DdtKind::Array => Box::new(ArrayDdt::new(mem)),
            DdtKind::ArrayPtr => Box::new(ArrayPtrDdt::new(mem)),
            DdtKind::Sll => Box::new(LinkedDdt::new(mem, false, false)),
            DdtKind::Dll => Box::new(LinkedDdt::new(mem, true, false)),
            DdtKind::SllRov => Box::new(LinkedDdt::new(mem, false, true)),
            DdtKind::DllRov => Box::new(LinkedDdt::new(mem, true, true)),
            DdtKind::SllChunk => Box::new(ChunkedDdt::new(mem, false, false)),
            DdtKind::DllChunk => Box::new(ChunkedDdt::new(mem, true, false)),
            DdtKind::SllChunkRov => Box::new(ChunkedDdt::new(mem, false, true)),
            DdtKind::DllChunkRov => Box::new(ChunkedDdt::new(mem, true, true)),
            DdtKind::Hash => Box::new(HashDdt::new(mem)),
            DdtKind::Avl => Box::new(TreeDdt::new(mem)),
        }
    }

    /// Whether this kind is one of the two extension DDTs (not part of the
    /// paper's ten-implementation library).
    #[must_use]
    pub fn is_extension(self) -> bool {
        matches!(self, DdtKind::Hash | DdtKind::Avl)
    }

    /// Whether this implementation keeps a roving pointer.
    #[must_use]
    pub fn has_roving_pointer(self) -> bool {
        matches!(
            self,
            DdtKind::SllRov | DdtKind::DllRov | DdtKind::SllChunkRov | DdtKind::DllChunkRov
        )
    }

    /// Whether this implementation links records (vs. contiguous arrays).
    #[must_use]
    pub fn is_linked(self) -> bool {
        !matches!(self, DdtKind::Array | DdtKind::ArrayPtr)
    }

    /// Stable index of this kind inside [`DdtKind::EXTENDED`]
    /// ([`DdtKind::ALL`] is a prefix, so paper kinds keep indices `0..10`).
    #[must_use]
    pub fn index(self) -> usize {
        DdtKind::EXTENDED
            .iter()
            .position(|&k| k == self)
            .expect("EXTENDED contains every variant")
    }
}

impl fmt::Display for DdtKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DdtKind::Array => "AR",
            DdtKind::ArrayPtr => "AR(P)",
            DdtKind::Sll => "SLL",
            DdtKind::Dll => "DLL",
            DdtKind::SllRov => "SLL(O)",
            DdtKind::DllRov => "DLL(O)",
            DdtKind::SllChunk => "SLL(AR)",
            DdtKind::DllChunk => "DLL(AR)",
            DdtKind::SllChunkRov => "SLL(ARO)",
            DdtKind::DllChunkRov => "DLL(ARO)",
            DdtKind::Hash => "HSH",
            DdtKind::Avl => "AVL",
        };
        f.write_str(name)
    }
}

/// Error returned when parsing an unknown DDT name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDdtKindError {
    input: String,
}

impl fmt::Display for ParseDdtKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown DDT kind `{}`", self.input)
    }
}

impl std::error::Error for ParseDdtKindError {}

impl FromStr for DdtKind {
    type Err = ParseDdtKindError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm = s.trim().to_ascii_uppercase();
        DdtKind::EXTENDED
            .iter()
            .copied()
            .find(|k| k.to_string() == norm)
            .ok_or(ParseDdtKindError { input: s.into() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_has_ten_distinct_kinds() {
        let mut names: Vec<String> = DdtKind::ALL.iter().map(|k| k.to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn extended_has_twelve_kinds_with_all_as_prefix() {
        assert_eq!(DdtKind::EXTENDED.len(), 12);
        assert_eq!(&DdtKind::EXTENDED[..10], &DdtKind::ALL[..]);
        let mut names: Vec<String> = DdtKind::EXTENDED.iter().map(|k| k.to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn extension_flag_marks_only_the_two_new_kinds() {
        let extensions: Vec<DdtKind> = DdtKind::EXTENDED
            .into_iter()
            .filter(|k| k.is_extension())
            .collect();
        assert_eq!(extensions, vec![DdtKind::Hash, DdtKind::Avl]);
        assert!(DdtKind::ALL.iter().all(|k| !k.is_extension()));
    }

    #[test]
    fn display_parse_round_trip() {
        for k in DdtKind::EXTENDED {
            let parsed: DdtKind = k.to_string().parse().expect("round trip");
            assert_eq!(parsed, k);
        }
    }

    #[test]
    fn parse_is_case_insensitive_and_trims() {
        assert_eq!(
            " sll(aro) ".parse::<DdtKind>().unwrap(),
            DdtKind::SllChunkRov
        );
    }

    #[test]
    fn parse_rejects_unknown() {
        let err = "BTREE".parse::<DdtKind>().unwrap_err();
        assert!(err.to_string().contains("BTREE"));
    }

    #[test]
    fn classification_flags() {
        assert!(!DdtKind::Array.is_linked());
        assert!(!DdtKind::ArrayPtr.is_linked());
        assert!(DdtKind::Sll.is_linked());
        assert!(DdtKind::SllChunkRov.has_roving_pointer());
        assert!(!DdtKind::Dll.has_roving_pointer());
    }

    #[test]
    fn index_matches_extended_order() {
        for (i, k) in DdtKind::EXTENDED.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
        assert_eq!(DdtKind::Hash.index(), 10);
        assert_eq!(DdtKind::Avl.index(), 11);
    }
}
