//! Modelled on-platform layout constants shared by all DDT implementations.

/// Size of a pointer on the modelled 64-bit embedded platform.
pub const PTR_BYTES: u64 = 8;

/// Size of the key field read by a search probe.
pub const KEY_BYTES: u64 = 8;

/// Size of a container descriptor (head, tail, count — or buffer pointer,
/// capacity, count for arrays). One descriptor is allocated per container.
pub const DESCRIPTOR_BYTES: u64 = 24;

/// Records per chunk in the chunked (unrolled) list implementations.
///
/// Eight records per chunk matches the configuration used by the original
/// DDT library and is swept by the `ablation_chunk` bench.
pub const CHUNK_CAPACITY: usize = 8;

// Layout invariants the implementations rely on, checked at compile time.
const _: () = assert!(DESCRIPTOR_BYTES >= 3 * PTR_BYTES);
const _: () = assert!(CHUNK_CAPACITY >= 2);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_the_modelled_platform() {
        assert_eq!(PTR_BYTES, 8, "64-bit embedded platform");
        assert_eq!(KEY_BYTES, 8, "keys are one machine word");
    }
}
