//! Fixed-bucket log-scale latency histograms with quantile extraction.
//!
//! The bucket grid is HdrHistogram-shaped: values `0..8` land in eight
//! exact unit buckets, and every power-of-two octave above that is split
//! into eight linear sub-buckets, so the relative quantisation error is
//! bounded by 1/8 = 12.5% everywhere. Values are plain `u64`s — the ddtr
//! call sites record durations in nanoseconds via
//! [`Histogram::record_duration`]. A quantile query returns the *lower
//! bound* of the bucket holding the nearest-rank sample, which makes
//! quantiles exact whenever the recorded values sit on bucket boundaries
//! (every value below 8, every value `(8 + s) << k`) — the property the
//! unit tests pin down.
//!
//! Recording is a single relaxed `fetch_add` per bucket plus three for
//! the count/sum/max aggregates: lock-free, `Send + Sync`, and safe to
//! hammer from every worker thread of the engine's pool.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per octave (8 → ≤ 12.5% relative quantisation error).
const SUB: usize = 8;
/// Highest octave tracked distinctly; larger values saturate into the
/// last bucket. `2^40` ns is ~18 minutes — far beyond any ddtr latency.
const MAX_OCTAVE: u32 = 39;
/// Total bucket count: the exact `0..8` region plus `SUB` buckets for
/// each octave `3..=MAX_OCTAVE`.
const N_BUCKETS: usize = SUB + (MAX_OCTAVE as usize - 2) * SUB;

/// Index of the bucket covering `v`.
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros();
    if octave > MAX_OCTAVE {
        return N_BUCKETS - 1;
    }
    let sub = ((v >> (octave - 3)) & (SUB as u64 - 1)) as usize;
    SUB + (octave as usize - 3) * SUB + sub
}

/// Smallest value covered by bucket `i` — what quantile queries report.
fn bucket_lower_bound(i: usize) -> u64 {
    if i < SUB {
        i as u64
    } else {
        let rel = i - SUB;
        let octave = rel / SUB + 3;
        let sub = (rel % SUB) as u64;
        (SUB as u64 + sub) << (octave - 3)
    }
}

/// A concurrent fixed-bucket log-scale histogram (see the module docs).
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one raw value (ddtr convention: nanoseconds).
    ///
    /// A no-op while recording is disabled (see [`crate::set_enabled`]).
    /// Values above the tracked range saturate into the last bucket but
    /// still contribute their exact magnitude to `sum` and `max`.
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        if let Some(bucket) = self.buckets.get(bucket_index(v)) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration with nanosecond resolution.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values (saturating in the extreme).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded value, exact (not quantised), 0 when empty.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Nearest-rank quantile: the lower bound of the bucket holding the
    /// `⌈q·n⌉`-th smallest recorded value. `None` on an empty histogram.
    /// `q` is clamped to `[0, 1]`; `q = 0` reports the smallest bucket
    /// with any samples.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        quantile_of(&counts, q)
    }

    /// A consistent point-in-time copy for serialisation and exposition.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            count: counts.iter().sum(),
            sum: self.sum(),
            max: self.max(),
            p50: quantile_of(&counts, 0.50).unwrap_or(0),
            p90: quantile_of(&counts, 0.90).unwrap_or(0),
            p99: quantile_of(&counts, 0.99).unwrap_or(0),
            buckets: counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| BucketCount {
                    lower: bucket_lower_bound(i),
                    count: c,
                })
                .collect(),
        }
    }
}

/// Nearest-rank quantile over a dense bucket-count vector.
fn quantile_of(counts: &[u64], q: f64) -> Option<u64> {
    let n: u64 = counts.iter().sum();
    if n == 0 {
        return None;
    }
    let rank = (q.clamp(0.0, 1.0) * n as f64).ceil().max(1.0) as u64;
    let mut cumulative = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        cumulative += c;
        if cumulative >= rank {
            return Some(bucket_lower_bound(i));
        }
    }
    Some(bucket_lower_bound(N_BUCKETS - 1))
}

/// One non-empty bucket of a [`HistogramSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketCount {
    /// Smallest value the bucket covers.
    #[serde(default)]
    pub lower: u64,
    /// Samples recorded into it.
    #[serde(default)]
    pub count: u64,
}

/// A serialisable point-in-time copy of one [`Histogram`].
///
/// Travels inside [`crate::MetricsSnapshot`] (and therefore inside the
/// serve protocol's `Stats` event); `buckets` lists only non-empty
/// buckets so idle histograms cost nothing on the wire. All fields carry
/// `#[serde(default)]` so the schema can grow without breaking old
/// readers.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    #[serde(default)]
    pub count: u64,
    /// Sum of all recorded values (nanoseconds at ddtr call sites).
    #[serde(default)]
    pub sum: u64,
    /// Largest recorded value, exact.
    #[serde(default)]
    pub max: u64,
    /// Median (nearest-rank, bucket lower bound).
    #[serde(default)]
    pub p50: u64,
    /// 90th percentile.
    #[serde(default)]
    pub p90: u64,
    /// 99th percentile.
    #[serde(default)]
    pub p99: u64,
    /// The non-empty buckets, ascending by `lower`.
    #[serde(default)]
    pub buckets: Vec<BucketCount>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_grid_is_monotone_and_self_consistent() {
        // Every bucket's lower bound maps back to that bucket, and the
        // bounds strictly increase.
        let mut prev = None;
        for i in 0..N_BUCKETS {
            let lo = bucket_lower_bound(i);
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
            if let Some(p) = prev {
                assert!(lo > p, "bounds must increase at {i}");
            }
            prev = Some(lo);
        }
    }

    #[test]
    fn values_below_eight_are_exact() {
        for v in 0..8u64 {
            assert_eq!(bucket_lower_bound(bucket_index(v)), v);
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [9u64, 100, 1000, 12_345, 1_000_000, 987_654_321] {
            let lo = bucket_lower_bound(bucket_index(v));
            assert!(lo <= v);
            assert!((v - lo) as f64 / v as f64 <= 0.125, "value {v} → {lo}");
        }
    }

    #[test]
    fn exact_quantiles_on_known_inputs() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 4] {
            h.record(v);
        }
        // Nearest rank: p50 → rank 2 → value 2; p90/p99 → rank 4 → 4.
        assert_eq!(h.quantile(0.50), Some(2));
        assert_eq!(h.quantile(0.90), Some(4));
        assert_eq!(h.quantile(0.99), Some(4));
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(1.0), Some(4));
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 10);
        assert_eq!(h.max(), 4);
    }

    #[test]
    fn exact_quantiles_on_power_of_two_inputs() {
        let h = Histogram::new();
        // 10 values: 2^10 .. 2^19 — all bucket lower bounds, so every
        // quantile is exact.
        for e in 10..20u32 {
            h.record(1 << e);
        }
        assert_eq!(h.quantile(0.50), Some(1 << 14)); // rank 5
        assert_eq!(h.quantile(0.90), Some(1 << 18)); // rank 9
        assert_eq!(h.quantile(0.99), Some(1 << 19)); // rank 10
    }

    #[test]
    fn empty_histogram_reports_none_and_zeroed_snapshot() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        let snap = h.snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.p50, 0);
        assert_eq!(snap.p99, 0);
        assert!(snap.buckets.is_empty());
    }

    #[test]
    fn huge_values_saturate_into_the_last_bucket() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(1 << 50);
        assert_eq!(h.count(), 2);
        // Both land in the final bucket; the quantile reports its lower
        // bound while `max` keeps the exact magnitude.
        let last = bucket_lower_bound(N_BUCKETS - 1);
        assert_eq!(h.quantile(0.5), Some(last));
        assert_eq!(h.quantile(0.99), Some(last));
        assert_eq!(h.max(), u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.buckets.len(), 1);
        assert_eq!(
            snap.buckets.first(),
            Some(&BucketCount {
                lower: last,
                count: 2
            })
        );
    }

    #[test]
    fn snapshot_lists_only_non_empty_buckets_in_order() {
        let h = Histogram::new();
        for v in [5u64, 5, 300, 1 << 30] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 4);
        assert_eq!(snap.buckets.len(), 3);
        let lowers: Vec<u64> = snap.buckets.iter().map(|b| b.lower).collect();
        assert!(lowers.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(lowers.first(), Some(&5));
    }

    #[test]
    fn duration_recording_uses_nanoseconds() {
        let h = Histogram::new();
        h.record_duration(std::time::Duration::from_micros(1));
        assert_eq!(h.max(), 1_000);
    }
}
