//! `ddtr_obs` — process-wide observability for the ddtr workspace.
//!
//! The exploration loop's cost profile (trace generation vs. simulation
//! vs. Pareto/GA selection vs. service overhead) was invisible until this
//! crate: the only instrumentation was the wall-clock [`BenchReport`]
//! in `ddtr_engine::timing`, and the serve tier reported nothing but
//! cache totals. `ddtr_obs` is the measurement layer every later perf PR
//! is judged against. It provides:
//!
//! * a process-wide [`Registry`] of atomic [`Counter`]s, [`Gauge`]s and
//!   fixed-bucket log-scale latency [`Histogram`]s with p50/p90/p99
//!   extraction — all `Send + Sync`, all lock-free on the record path;
//! * lightweight [`Span`]s (`Span::enter(name)` RAII) recording into a
//!   bounded ring buffer, exportable as Chrome trace-event JSON for
//!   `chrome://tracing` / [Perfetto](https://ui.perfetto.dev) via
//!   `ddtr … --trace-json <file>`;
//! * a serialisable [`MetricsSnapshot`] (carried by the serve protocol's
//!   `Stats` event) and a Prometheus-style text exposition
//!   ([`render_prometheus`]) served on the `Metrics` request.
//!
//! # The contract: observation never steers results
//!
//! Nothing in this crate may sit on a result-determinism path. Counters,
//! gauges, histograms and spans are write-only from the exploration
//! code's point of view: no ddtr crate reads a metric back to make a
//! decision. The workspace's headline guarantee — byte-identical Pareto
//! fronts at any `--jobs N`, instrumentation on or off — is regression
//! -tested in `crates/core/tests/determinism.rs`. `ddtr-lint` covers this
//! crate with the `no-panic-boundary`, `lock-across-io` and `det-iter`
//! rules: recording a metric must never panic a server, stall a peer or
//! introduce hash-order iteration.
//!
//! # Disabling
//!
//! All record paths are gated on [`enabled`]: set the environment
//! variable `DDTR_OBS=off` (or `0`/`false`) before the first metric is
//! touched, or call [`set_enabled`]`(false)` at runtime, and every
//! counter increment, histogram record and span becomes a no-op. The CI
//! overhead guard (`obs_overhead` in `ddtr_bench`) holds the instrumented
//! quick exploration within 5% of a disabled run.
//!
//! # Example
//!
//! ```
//! use ddtr_obs::{counter, histogram, Span};
//! use std::time::Duration;
//!
//! let _span = Span::enter("example.work");
//! counter("example.iterations").inc();
//! histogram("example.latency").record_duration(Duration::from_micros(250));
//! let snap = ddtr_obs::snapshot();
//! assert!(snap.counters["example.iterations"] >= 1);
//! ```
//!
//! [`BenchReport`]: https://docs.rs/ddtr_engine
//! [`render_prometheus`]: crate::render_prometheus

pub mod hist;
pub mod metrics;
pub mod span;

pub use hist::{BucketCount, Histogram, HistogramSnapshot};
pub use metrics::{
    counter, gauge, histogram, render_prometheus, snapshot, Counter, Gauge, MetricsSnapshot,
    Registry,
};
pub use span::{chrome_trace_json, trace_dropped, trace_len, write_chrome_trace, Span};

use std::sync::atomic::{AtomicU8, Ordering};

/// [`enabled`] tri-state: not yet resolved from the environment.
const STATE_UNSET: u8 = 0;
/// [`enabled`] tri-state: recording on.
const STATE_ON: u8 = 1;
/// [`enabled`] tri-state: recording off.
const STATE_OFF: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNSET);

/// Whether metric and span recording is currently on.
///
/// The first call resolves the `DDTR_OBS` environment variable (`off`,
/// `0` or `false` disable recording); afterwards the answer is a single
/// relaxed atomic load. [`set_enabled`] overrides the environment.
#[must_use]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => {
            let off = std::env::var("DDTR_OBS")
                .map(|v| matches!(v.as_str(), "0" | "off" | "false"))
                .unwrap_or(false);
            STATE.store(if off { STATE_OFF } else { STATE_ON }, Ordering::Relaxed);
            !off
        }
    }
}

/// Turns all metric and span recording on or off at runtime.
///
/// Reads ([`Counter::get`], [`snapshot`], the trace export) keep working
/// either way — only the record paths become no-ops. Used by the
/// `obs_overhead` CI guard to compare instrumented and bare runs inside
/// one process.
pub fn set_enabled(on: bool) {
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}
