//! The process-wide metrics registry: counters, gauges, histograms,
//! snapshots and the Prometheus-style text exposition.
//!
//! Handles are `Arc`s handed out by name from a global [`Registry`]; the
//! registry lock is only taken on lookup and snapshot, never on the
//! record path (recording is a relaxed atomic op on the handle). Names
//! are dot-separated (`engine.cache.hit`, `serve.request.latency`) — the
//! catalog lives in `docs/OBSERVABILITY.md`. Snapshots use `BTreeMap`s
//! so every serialisation and exposition is deterministically ordered.

use crate::hist::{Histogram, HistogramSnapshot};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    #[must_use]
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds one (no-op while recording is disabled).
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (no-op while recording is disabled).
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (e.g. requests currently in flight).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Creates a gauge at zero.
    #[must_use]
    pub fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    /// Adds one (no-op while recording is disabled).
    pub fn inc(&self) {
        if crate::enabled() {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Subtracts one (no-op while recording is disabled).
    pub fn dec(&self) {
        if crate::enabled() {
            self.0.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Sets an absolute value (no-op while recording is disabled).
    pub fn set(&self, v: i64) {
        if crate::enabled() {
            self.0.store(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The named-instrument registry. One global instance serves the whole
/// process ([`Registry::global`]); separate instances exist only in
/// tests.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// Creates an empty registry (tests; production uses [`global`]).
    ///
    /// [`global`]: Registry::global
    #[must_use]
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-wide registry every ddtr crate records into.
    #[must_use]
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// The counter named `name`, created on first use.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// The gauge named `name`, created on first use.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// The histogram named `name`, created on first use.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self
            .histograms
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// A point-in-time copy of every registered instrument.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// The counter named `name` in the global registry.
#[must_use]
pub fn counter(name: &str) -> Arc<Counter> {
    Registry::global().counter(name)
}

/// The gauge named `name` in the global registry.
#[must_use]
pub fn gauge(name: &str) -> Arc<Gauge> {
    Registry::global().gauge(name)
}

/// The histogram named `name` in the global registry.
#[must_use]
pub fn histogram(name: &str) -> Arc<Histogram> {
    Registry::global().histogram(name)
}

/// A point-in-time copy of the global registry.
#[must_use]
pub fn snapshot() -> MetricsSnapshot {
    Registry::global().snapshot()
}

/// Everything the process has measured, in deterministic order.
///
/// Rides inside the serve protocol's `Stats` event and is the input to
/// [`render_prometheus`]. All fields default so old readers and writers
/// stay wire-compatible as the catalog grows.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    #[serde(default)]
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    #[serde(default)]
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    #[serde(default)]
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Maps a dotted metric name to a Prometheus-legal one: `engine.cache.hit`
/// → `ddtr_engine_cache_hit`.
fn prom_name(name: &str) -> String {
    let mut out = String::from("ddtr_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders a snapshot in the Prometheus text exposition format.
///
/// Counters become `<name>_total`, gauges keep their name, histograms
/// (recorded in nanoseconds) become `<name>_seconds` summaries with
/// `quantile="0.5" / "0.9" / "0.99"` sample lines plus `_sum`/`_count`.
/// The serve tier returns this string on the `Metrics` request, and
/// `ddtr query <endpoint> metrics` prints it.
#[must_use]
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let p = prom_name(name);
        out.push_str(&format!("# TYPE {p}_total counter\n{p}_total {value}\n"));
    }
    for (name, value) in &snap.gauges {
        let p = prom_name(name);
        out.push_str(&format!("# TYPE {p} gauge\n{p} {value}\n"));
    }
    for (name, h) in &snap.histograms {
        let p = prom_name(name);
        let secs = |ns: u64| ns as f64 / 1e9;
        out.push_str(&format!("# TYPE {p}_seconds summary\n"));
        for (q, v) in [(0.5, h.p50), (0.9, h.p90), (0.99, h.p99)] {
            out.push_str(&format!("{p}_seconds{{quantile=\"{q}\"}} {}\n", secs(v)));
        }
        out.push_str(&format!("{p}_seconds_sum {}\n", secs(h.sum)));
        out.push_str(&format!("{p}_seconds_count {}\n", h.count));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_by_name() {
        let reg = Registry::new();
        reg.counter("t.hits").add(2);
        reg.counter("t.hits").inc();
        assert_eq!(reg.counter("t.hits").get(), 3);
        assert_eq!(reg.counter("t.other").get(), 0);
    }

    #[test]
    fn gauges_go_up_and_down() {
        let reg = Registry::new();
        let g = reg.gauge("t.inflight");
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(42);
        assert_eq!(reg.gauge("t.inflight").get(), 42);
    }

    #[test]
    fn snapshot_is_deterministically_ordered() {
        let reg = Registry::new();
        reg.counter("b").inc();
        reg.counter("a").inc();
        reg.histogram("z").record(5);
        let snap = reg.snapshot();
        let names: Vec<&String> = snap.counters.keys().collect();
        assert_eq!(names, ["a", "b"]);
        assert_eq!(snap.histograms["z"].count, 1);
    }

    #[test]
    fn prometheus_rendering_contains_quantiles_and_counts() {
        let reg = Registry::new();
        reg.counter("engine.cache.hit").add(7);
        reg.gauge("serve.inflight").set(2);
        let h = reg.histogram("serve.request.latency");
        for v in [1_000_000u64, 2_000_000, 4_000_000] {
            h.record(v);
        }
        let text = render_prometheus(&reg.snapshot());
        assert!(text.contains("ddtr_engine_cache_hit_total 7"));
        assert!(text.contains("ddtr_serve_inflight 2"));
        assert!(text.contains("ddtr_serve_request_latency_seconds{quantile=\"0.5\"}"));
        assert!(text.contains("ddtr_serve_request_latency_seconds{quantile=\"0.99\"}"));
        assert!(text.contains("ddtr_serve_request_latency_seconds_count 3"));
        // Histograms are recorded in ns, exposed in seconds.
        assert!(text.contains("ddtr_serve_request_latency_seconds_sum 0.007"));
    }

    #[test]
    fn snapshot_round_trips_through_serde() {
        let reg = Registry::new();
        reg.counter("c.one").add(11);
        reg.gauge("g.one").set(-3);
        let h = reg.histogram("h.one");
        for v in [1u64, 2, 3, 4, 1 << 30] {
            h.record(v);
        }
        let snap = reg.snapshot();
        let json = serde_json::to_string(&snap).expect("serialise");
        let back: MetricsSnapshot = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(back, snap);
        // And an empty object deserialises thanks to the defaults.
        let empty: MetricsSnapshot = serde_json::from_str("{}").expect("empty");
        assert_eq!(empty, MetricsSnapshot::default());
    }
}
