//! Lightweight spans and the Chrome trace-event export.
//!
//! [`Span::enter("engine.batch")`](Span::enter) returns an RAII guard;
//! when it drops, one complete-event record (name, start, duration,
//! thread) lands in a bounded process-wide ring buffer. The ring holds
//! the most recent [`TRACE_CAPACITY`] spans — old entries are overwritten
//! and counted in [`trace_dropped`], so tracing can stay on forever
//! without growing memory.
//!
//! [`chrome_trace_json`] renders the buffer in the Chrome trace-event
//! format (a `{"traceEvents": [...]}` object of `ph: "X"` complete
//! events, timestamps in microseconds), which loads directly in
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev). The CLI
//! exposes it as `ddtr … --trace-json <file>`.
//!
//! Span names are `&'static str` by design: recording costs one `Instant`
//! read at enter and one ring slot at drop, with no allocation.

use serde::Serialize;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// Most recent spans kept for export (~40 bytes each).
pub const TRACE_CAPACITY: usize = 16_384;

/// One completed span in the ring.
#[derive(Debug, Clone, Copy)]
struct SpanEvent {
    name: &'static str,
    ts_ns: u64,
    dur_ns: u64,
    tid: u64,
}

/// The bounded span ring: a vector that grows to [`TRACE_CAPACITY`] and
/// then wraps, `next` marking the oldest (overwrite) position.
#[derive(Debug, Default)]
struct Ring {
    events: Vec<SpanEvent>,
    next: usize,
    dropped: u64,
}

fn ring() -> &'static Mutex<Ring> {
    static RING: OnceLock<Mutex<Ring>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(Ring::default()))
}

/// The process epoch all span timestamps are relative to, pinned on the
/// first [`Span::enter`].
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Small dense per-thread ids for the trace's `tid` field.
fn thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// An RAII span: created by [`Span::enter`], recorded on drop.
///
/// While recording is disabled (see [`crate::set_enabled`]) the guard is
/// inert — no clock read, no ring write.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

impl Span {
    /// Opens a span; the returned guard records it when dropped.
    #[must_use]
    pub fn enter(name: &'static str) -> Span {
        if !crate::enabled() {
            return Span { name, start: None };
        }
        let _ = epoch(); // pin the trace epoch no later than the first span
        Span {
            name,
            start: Some(Instant::now()),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let dur_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        // `duration_since` saturates to zero for an earlier instant.
        let ts_ns = u64::try_from(start.duration_since(epoch()).as_nanos()).unwrap_or(u64::MAX);
        let event = SpanEvent {
            name: self.name,
            ts_ns,
            dur_ns,
            tid: thread_id(),
        };
        let mut r = ring().lock().unwrap_or_else(PoisonError::into_inner);
        if r.events.len() < TRACE_CAPACITY {
            r.events.push(event);
        } else {
            let slot = r.next;
            if let Some(s) = r.events.get_mut(slot) {
                *s = event;
            }
            r.dropped += 1;
        }
        r.next = (r.next + 1) % TRACE_CAPACITY;
    }
}

/// Number of spans currently held in the ring.
#[must_use]
pub fn trace_len() -> usize {
    ring()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .events
        .len()
}

/// Number of spans overwritten because the ring was full.
#[must_use]
pub fn trace_dropped() -> u64 {
    ring()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .dropped
}

/// One Chrome trace-event complete event (`ph: "X"`).
#[derive(Serialize)]
struct TraceEvent {
    name: String,
    cat: String,
    ph: String,
    ts: f64,
    dur: f64,
    pid: u64,
    tid: u64,
}

/// The trace-event document: Chrome's "JSON object format".
#[derive(Serialize)]
#[allow(non_snake_case)]
struct TraceDoc {
    traceEvents: Vec<TraceEvent>,
    displayTimeUnit: String,
}

/// Renders the recorded spans as Chrome trace-event JSON.
///
/// The result loads in `chrome://tracing` and Perfetto: an object with a
/// `traceEvents` array of complete events, timestamps and durations in
/// microseconds relative to the process's first span.
#[must_use]
pub fn chrome_trace_json() -> String {
    let mut ordered = {
        let r = ring().lock().unwrap_or_else(PoisonError::into_inner);
        r.events.clone()
    };
    // The ring holds spans in completion order; viewers want start order.
    ordered.sort_by_key(|e| e.ts_ns);
    let doc = TraceDoc {
        traceEvents: ordered
            .iter()
            .map(|e| TraceEvent {
                name: e.name.to_string(),
                cat: String::from("ddtr"),
                ph: String::from("X"),
                ts: e.ts_ns as f64 / 1000.0,
                dur: e.dur_ns as f64 / 1000.0,
                pid: 1,
                tid: e.tid,
            })
            .collect(),
        displayTimeUnit: String::from("ms"),
    };
    serde_json::to_string(&doc).unwrap_or_else(|_| String::from("{\"traceEvents\":[]}"))
}

/// Writes [`chrome_trace_json`] to `path` (the `--trace-json` backend).
///
/// # Errors
///
/// Propagates the filesystem error if the file cannot be written.
pub fn write_chrome_trace(path: &Path) -> std::io::Result<()> {
    let json = chrome_trace_json();
    std::fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_and_export_structurally_valid_trace_json() {
        {
            let _outer = Span::enter("test.outer");
            let _inner = Span::enter("test.inner");
        }
        std::thread::spawn(|| {
            let _s = Span::enter("test.worker");
        })
        .join()
        .expect("worker");
        assert!(trace_len() >= 3);

        let json = chrome_trace_json();
        let doc = serde_json::parse(&json).expect("valid JSON");
        let map = doc.as_map().expect("top-level object");
        let events = map
            .get("traceEvents")
            .and_then(|v| v.as_seq())
            .expect("traceEvents array");
        assert!(events.len() >= 3);
        let mut tids = std::collections::BTreeSet::new();
        for ev in events {
            let m = ev.as_map().expect("event object");
            assert_eq!(
                m.get("ph").and_then(|v| v.as_str()),
                Some("X"),
                "complete events only"
            );
            assert!(m.get("name").and_then(|v| v.as_str()).is_some());
            assert!(m.get("ts").and_then(|v| v.as_f64()).is_some());
            assert!(m.get("dur").and_then(|v| v.as_f64()).is_some());
            assert!(m.get("pid").and_then(|v| v.as_u64()).is_some());
            tids.insert(m.get("tid").and_then(|v| v.as_u64()));
        }
        // The spawned thread got its own tid lane.
        assert!(tids.len() >= 2);
        // Timestamps are chronological.
        let ts: Vec<f64> = events
            .iter()
            .filter_map(|e| e.as_map()?.get("ts")?.as_f64())
            .collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn write_chrome_trace_creates_a_loadable_file() {
        let _s = Span::enter("test.file");
        drop(_s);
        let dir = std::env::temp_dir().join(format!("ddtr-obs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("trace.json");
        write_chrome_trace(&path).expect("write");
        let body = std::fs::read_to_string(&path).expect("read back");
        let doc = serde_json::parse(&body).expect("valid JSON");
        assert!(doc.as_map().and_then(|m| m.get("traceEvents")).is_some());
        std::fs::remove_dir_all(&dir).ok();
    }
}
