//! Behaviour with recording disabled — isolated in its own test binary
//! (and therefore its own process) because [`ddtr_obs::set_enabled`]
//! flips process-global state that would race the other tests.

use ddtr_obs::{counter, gauge, histogram, set_enabled, snapshot, Span};

#[test]
fn disabled_recording_is_a_complete_no_op() {
    set_enabled(false);
    counter("off.counter").add(5);
    gauge("off.gauge").inc();
    histogram("off.hist").record(123);
    {
        let _s = Span::enter("off.span");
    }
    let snap = snapshot();
    assert_eq!(snap.counters.get("off.counter"), Some(&0));
    assert_eq!(snap.gauges.get("off.gauge"), Some(&0));
    assert_eq!(snap.histograms["off.hist"].count, 0);
    assert_eq!(ddtr_obs::trace_len(), 0);

    // Re-enabling restores recording on the same handles.
    set_enabled(true);
    counter("off.counter").add(2);
    histogram("off.hist").record(7);
    {
        let _s = Span::enter("on.span");
    }
    let snap = snapshot();
    assert_eq!(snap.counters.get("off.counter"), Some(&2));
    assert_eq!(snap.histograms["off.hist"].count, 1);
    assert_eq!(ddtr_obs::trace_len(), 1);
    assert!(ddtr_obs::chrome_trace_json().contains("on.span"));
}
