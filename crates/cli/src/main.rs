//! `ddtr` — the automated exploration tool of the methodology.
//!
//! Subcommands mirror the paper's tool flow (Figure 2):
//!
//! ```text
//! ddtr profile  <app>                 # step 1a: dominant-DDT profiling
//! ddtr explore  <app> [--quick]       # steps 1-3: the full pipeline
//! ddtr pareto   <app> [--quick]       # step 3 charts for every config
//! ddtr report   <app> [--quick]       # table 1 / table 2 rows + headline
//! ddtr trace    <preset> <packets>    # emit a synthetic trace (text)
//! ddtr params   <preset> <packets>    # extract network parameters
//! ddtr replay   <logs.jsonl>          # step 3 from persisted step-2 logs
//! ddtr ga       <app> [--extended]    # heuristic (NSGA-II) exploration
//! ddtr scenarios [<app>]              # app x scenario Pareto matrix
//! ddtr sweep    [<app>] [--mem p,…]   # scenarios x platforms sweep
//! ddtr cache    stats|verify|compact|… # manage the persistent result store
//! ddtr serve    [--listen EP] [--workers N] # resident exploration fleet
//! ddtr query    <EP> <mode> [app]     # ask a running service
//! ddtr loadtest <EP> [--clients N]    # drive a service with concurrent load
//! ```
//!
//! Every simulating subcommand (`explore`, `pareto`, `report`, `ga`,
//! `scenarios`, `sweep`) runs on the [`ddtr_engine`] execution engine and
//! accepts:
//!
//! * `--jobs N` — worker threads (default: one per core),
//! * `--cache-dir <dir>` — persistent result cache (default
//!   `.ddtr-cache`),
//! * `--no-cache` — disable the persistent cache for this run,
//! * `--trace-json <file>` — write the run's recorded spans as Chrome
//!   trace-event JSON (loads in Perfetto / `chrome://tracing`).
//!
//! `explore`, `pareto`, `report` and `ga` additionally take `--stream`:
//! packets are then generated into each simulation on the fly (constant
//! memory regardless of trace length, byte-identical results) instead of
//! materializing traces up front. `scenarios` and `sweep` always stream.
//!
//! Every simulating subcommand also takes `--mem <preset>` to pick the
//! platform from the memory-hierarchy catalog (`embedded`, `l2`,
//! `l2-small`, `deep`, `spm`); `ddtr sweep` takes a comma-separated list
//! and explores the whole scenarios × platforms matrix.
//!
//! A second `explore` over an unchanged configuration answers from the
//! cache and is near-instant.
//!
//! `explore --logs <path>` persists the step-2 simulation logs as JSON
//! lines, which `replay` turns back into Pareto sets without
//! re-simulating — the decoupling of the original tool flow.
//!
//! `serve` keeps a fleet of worker engine sessions resident and answers
//! exploration requests over a newline-delimited JSON protocol (stdio by
//! default, `--listen tcp:<addr>` / `--listen unix:<path>` for sockets),
//! with `--workers N` parallel sessions, optional `--auth-token`,
//! per-connection `--rate-limit` / `--max-inflight` budgets, a
//! `--max-request-bytes` line ceiling, a `--max-conns` connection gate
//! and `--daemon`/`--pid-file` for background operation; `query` is the
//! matching client and `loadtest` drives a running service with
//! concurrent clients, reporting p50/p99 latencies. See
//! `docs/PROTOCOL.md` for the wire format.

use ddtr_apps::AppKind;
use ddtr_core::{
    explore_heuristic_with, explore_pareto_level, explore_scenarios_with, explore_sweep_observed,
    headline_comparison, profile_application, read_logs, render_pareto_chart, step2_from_logs,
    table1_markdown, table2_markdown, write_logs, EngineConfig, ExploreEngine, ExploreResult,
    GaConfig, MemoryPreset, Methodology, MethodologyConfig, ParetoChartPlane, ScenarioConfig,
    SweepConfig,
};
use ddtr_ddt::DdtKind;
use ddtr_engine::SimCache;
use ddtr_serve::loadtest::LoadtestConfig;
use ddtr_serve::{Client, Endpoint, Event, JobSpec, Request, RequestBody, Server, ServerConfig};
use ddtr_trace::{NetworkParams, NetworkPreset, Scenario, TraceWriter};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("ddtr: {msg}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  ddtr profile <route|url|ipchains|drr|nat> [--quick]
  ddtr explore <route|url|ipchains|drr|nat> [--quick] [--extended] [--stream] [--json]
               [--mem <preset>] [engine flags]
  ddtr pareto  <route|url|ipchains|drr|nat> [--quick] [--extended] [--stream]
               [--mem <preset>] [engine flags]
  ddtr report  <route|url|ipchains|drr|nat> [--quick] [--extended] [--stream]
               [--mem <preset>] [engine flags]
  ddtr trace   <preset> <packets>
  ddtr params  <preset> <packets>
  ddtr replay  <logs.jsonl>
  ddtr ga      <route|url|ipchains|drr|nat> [--quick] [--extended] [--stream] [--seed N]
               [--stall N] [--mem <preset>] [engine flags]
  ddtr scenarios [<route|url|ipchains|drr|nat>] [--quick] [--extended] [--base <preset>]
               [--packets N] [--mem <preset>] [engine flags]
  ddtr sweep   [<route|url|ipchains|drr|nat>] [--quick] [--extended] [--base <preset>]
               [--packets N] [--mem <preset>,...] [--scenario <name>]... [engine flags]
  ddtr cache   stats|clear|verify|compact [--cache-dir <dir>]
  ddtr cache   import|export <file.jsonl> [--cache-dir <dir>]
  ddtr serve   [--listen stdio|tcp:<addr>|unix:<path>] [--workers N]
               [--auth-token T] [--max-conns N] [--max-inflight N]
               [--rate-limit N] [--max-request-bytes N]
               [--daemon] [--pid-file <path>] [engine flags]
  ddtr query   <tcp:<addr>|unix:<path>> <explore|ga|scenarios|sweep|headline|metrics> [app]
               [--quick] [--extended] [--stream] [--base <preset>] [--packets N]
               [--seed N] [--scenario <name>]... [--mem <preset>[,...]]
               [--id ID] [--json] [--quiet]
  ddtr loadtest <tcp:<addr>|unix:<path>> [--clients N] [--pings N] [--explores N]
               [--apps a,b,...] [--full] [--auth-token T] [--connect-retries N]
               [--p99-ms N] [--json]
  ddtr presets
  ddtr mem-presets

engine flags (simulating subcommands):
  --jobs N           worker threads per batch (default: one per core)
  --cache-dir <dir>  persistent result cache (default: .ddtr-cache)
  --no-cache         do not read or write the persistent cache
  --trace-json <f>   write the run's spans as Chrome trace-event JSON
                     (loads in Perfetto / chrome://tracing)

--stream generates packets into each simulation on the fly: constant
memory at any trace length, byte-identical results. `ddtr scenarios`
runs the app x scenario matrix (baseline, bursty, flash-crowd, ddos-syn,
phase-shift) over the base network and always streams.

--mem picks the platform from the memory-hierarchy catalog (`ddtr
mem-presets` lists it). `ddtr sweep` takes a comma-separated list and
runs the scenarios x platforms matrix, reporting which DDT combinations
stay Pareto-optimal across the platform family.

`ddtr serve` answers exploration requests over newline-delimited JSON
(docs/PROTOCOL.md) from a resident fleet of worker engine sessions;
`ddtr query` is the matching client and `ddtr loadtest` drives a
running service with concurrent clients, reporting p50/p99 latencies
and exiting non-zero on dropped connections, protocol errors or a
broken --p99-ms bound.";

/// Default location of the persistent result cache.
const DEFAULT_CACHE_DIR: &str = ".ddtr-cache";

/// The `--jobs` engine flag (worker threads per batch).
const FLAG_JOBS: &str = "--jobs";

/// The `--cache-dir` engine flag (persistent result cache location).
const FLAG_CACHE_DIR: &str = "--cache-dir";

/// The `--mem` platform flag (memory-hierarchy preset; comma-separated
/// list on `ddtr sweep`).
const FLAG_MEM: &str = "--mem";

/// The `--trace-json` observability flag (write the recorded spans as
/// Chrome trace-event JSON after the run).
const FLAG_TRACE_JSON: &str = "--trace-json";

/// Engine flags that consume a value. `engine_from`/`cache_dir_of` parse
/// exactly these constants and the `scenarios` positional scanner skips
/// them, so adding a value-taking engine flag cannot desynchronise the
/// two.
const ENGINE_VALUE_FLAGS: [&str; 3] = [FLAG_JOBS, FLAG_CACHE_DIR, FLAG_TRACE_JSON];

fn run(args: &[String]) -> Result<(), String> {
    let mut it = args.iter();
    let cmd = it.next().ok_or("missing subcommand")?;
    let rest: Vec<&String> = it.collect();
    match cmd.as_str() {
        "profile" => profile(&rest),
        "explore" => explore(&rest),
        "pareto" => pareto(&rest),
        "report" => report(&rest),
        "trace" => trace(&rest),
        "params" => params(&rest),
        "replay" => replay(&rest),
        "ga" => ga(&rest),
        "scenarios" => scenarios(&rest),
        "sweep" => sweep(&rest),
        "cache" => cache(&rest),
        "serve" => serve(&rest),
        "query" => query(&rest),
        "loadtest" => loadtest(&rest),
        "mem-presets" => {
            for p in MemoryPreset::ALL {
                println!("{:10} {}", p.to_string(), p.describe());
            }
            Ok(())
        }
        "presets" => {
            for p in NetworkPreset::ALL {
                let s = p.spec();
                println!(
                    "{p:10} nodes={:4} rate={:6.0}pps flows={:3} mtu={}",
                    s.nodes, s.mean_rate_pps, s.flows, s.sizes.mtu
                );
            }
            Ok(())
        }
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

/// Parses the value following a `--flag`, if the flag is present. A
/// following token that is itself a flag does not count as a value, so a
/// forgotten argument errors instead of silently consuming the next flag.
fn flag_value<'a>(rest: &[&'a String], flag: &str) -> Result<Option<&'a String>, String> {
    match rest.iter().position(|a| a.as_str() == flag) {
        Some(pos) => match rest.get(pos + 1) {
            Some(v) if !v.starts_with("--") => Ok(Some(*v)),
            _ => Err(format!("{flag} needs a value")),
        },
        None => Ok(None),
    }
}

/// The values of a repeatable `--flag`, one per occurrence (empty when
/// the flag is absent).
fn repeated_flag_values<'a>(rest: &[&'a String], flag: &str) -> Result<Vec<&'a String>, String> {
    rest.iter()
        .enumerate()
        .filter(|(_, a)| a.as_str() == flag)
        .map(|(i, _)| match rest.get(i + 1) {
            Some(v) if !v.starts_with("--") => Ok(*v),
            _ => Err(format!("{flag} needs a value")),
        })
        .collect()
}

/// Strict argument scan for the matrix subcommands (`scenarios`,
/// `sweep`): every flag must be a known value flag (`extra_value_flags`
/// plus the engine flags) or a known boolean flag, and at most one bare
/// positional — the optional application restricting the matrix to one
/// row — is allowed. Unknown flags and stray positionals are errors, not
/// silently ignored full-matrix runs.
fn scan_app_positional<'a>(
    rest: &[&'a String],
    cmd: &str,
    extra_value_flags: &[&str],
) -> Result<Option<&'a String>, String> {
    let mut value_flags = extra_value_flags.to_vec();
    value_flags.extend(ENGINE_VALUE_FLAGS);
    // `--stream` is accepted as a no-op: these subcommands always
    // stream, and scripts uniformly appending it to simulating
    // subcommands should not break here.
    let bool_flags = ["--quick", "--extended", "--no-cache", "--stream"];
    let mut positionals = Vec::new();
    let mut i = 0;
    while i < rest.len() {
        let arg = rest[i].as_str();
        if value_flags.contains(&arg) {
            i += 2;
        } else if bool_flags.contains(&arg) {
            i += 1;
        } else if arg.starts_with("--") {
            return Err(format!("unknown {cmd} flag `{arg}`"));
        } else {
            positionals.push(rest[i]);
            i += 1;
        }
    }
    match positionals.as_slice() {
        [] => Ok(None),
        [app] => Ok(Some(*app)),
        more => Err(format!(
            "{cmd} takes at most one application, got {}",
            more.len()
        )),
    }
}

/// The cache directory a command addresses: `--cache-dir` or the default.
fn cache_dir_of(rest: &[&String]) -> Result<PathBuf, String> {
    Ok(flag_value(rest, FLAG_CACHE_DIR)?
        .map_or_else(|| PathBuf::from(DEFAULT_CACHE_DIR), PathBuf::from))
}

/// Parses the shared engine flags into an [`EngineConfig`].
fn engine_config_from(rest: &[&String]) -> Result<EngineConfig, String> {
    let jobs: usize = match flag_value(rest, FLAG_JOBS)? {
        Some(v) => v.parse().map_err(|e| format!("bad --jobs value: {e}"))?,
        None => 0,
    };
    let no_cache = rest.iter().any(|a| a.as_str() == "--no-cache");
    let cache_dir = if no_cache {
        None
    } else {
        Some(cache_dir_of(rest)?)
    };
    Ok(EngineConfig {
        jobs,
        cache_dir,
        no_cache,
    })
}

/// Builds the execution engine from the shared engine flags.
fn engine_from(rest: &[&String]) -> Result<ExploreEngine, String> {
    ExploreEngine::new(engine_config_from(rest)?).map_err(|e| e.to_string())
}

/// Writes the spans recorded during the run as Chrome trace-event JSON
/// when `--trace-json <file>` was given. The file loads directly in
/// Perfetto or `chrome://tracing`.
fn write_trace_if_requested(rest: &[&String]) -> Result<(), String> {
    if let Some(path) = flag_value(rest, FLAG_TRACE_JSON)? {
        ddtr_obs::write_chrome_trace(Path::new(path.as_str()))
            .map_err(|e| format!("cannot write trace to {path}: {e}"))?;
        eprintln!("wrote {} spans to {path}", ddtr_obs::trace_len());
    }
    Ok(())
}

/// The one-line engine summary printed after a simulating run.
fn engine_summary(report: &ddtr_core::EngineReport) -> String {
    format!(
        "engine: jobs={} cache_hits={} executed={}",
        report.jobs, report.cache_hits, report.executed
    )
}

/// [`engine_summary`] over an engine's lifetime counters (for subcommands
/// without a pipeline [`ddtr_core::EngineReport`]).
fn engine_stats_line(engine: &ExploreEngine) -> String {
    let stats = engine.stats();
    engine_summary(&ddtr_core::EngineReport {
        jobs: engine.jobs(),
        cache_hits: stats.hits,
        executed: stats.misses,
    })
}

fn parse_app(rest: &[&String]) -> Result<(AppKind, MethodologyConfig), String> {
    let app: AppKind = rest
        .first()
        .ok_or("missing application name")?
        .parse()
        .map_err(|e| format!("{e}"))?;
    let quick = rest.iter().any(|a| a.as_str() == "--quick");
    let mut cfg = if quick {
        MethodologyConfig::quick(app)
    } else {
        MethodologyConfig::paper(app)
    };
    if rest.iter().any(|a| a.as_str() == "--extended") {
        cfg.candidates = DdtKind::EXTENDED.to_vec();
    }
    if rest.iter().any(|a| a.as_str() == "--stream") {
        cfg.streaming = true;
    }
    if let Some(name) = flag_value(rest, FLAG_MEM)? {
        cfg.mem = name.parse::<MemoryPreset>()?.config();
    }
    Ok((app, cfg))
}

fn profile(rest: &[&String]) -> Result<(), String> {
    let (app, cfg) = parse_app(rest)?;
    let report = profile_application(&cfg).map_err(|e| e.to_string())?;
    println!("# dominant-DDT profile of {app}");
    for slot in &report.slots {
        let marker = if report.dominant.contains(&slot.name) {
            "DOMINANT"
        } else {
            "minor"
        };
        println!(
            "{:16} {:>12} accesses  {:>8} ops  [{marker}]",
            slot.name,
            slot.counts.accesses,
            slot.counts.total_ops()
        );
    }
    println!(
        "dominant set covers {:.1}% of container accesses",
        report.dominant_share * 100.0
    );
    Ok(())
}

fn explore(rest: &[&String]) -> Result<(), String> {
    let (app, cfg) = parse_app(rest)?;
    let mut engine = engine_from(rest)?;
    let outcome = Methodology::new(cfg)
        .run_with(&mut engine)
        .map_err(|e| e.to_string())?;
    write_trace_if_requested(rest)?;
    if let Some(path) = flag_value(rest, "--logs")? {
        let file = std::fs::File::create(path.as_str()).map_err(|e| e.to_string())?;
        write_logs(&outcome.step2.logs, std::io::BufWriter::new(file))
            .map_err(|e| e.to_string())?;
        eprintln!("wrote {} step-2 logs to {path}", outcome.step2.logs.len());
    }
    if rest.iter().any(|a| a.as_str() == "--json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&outcome).map_err(|e| e.to_string())?
        );
        return Ok(());
    }
    println!("# exploration of {app}");
    println!(
        "step 1: {} simulations, {} survivors ({:.0}% pruned)",
        outcome.step1.measurements.len(),
        outcome.step1.survivors.len(),
        outcome.step1.pruned_fraction() * 100.0
    );
    println!(
        "step 2: {} simulations over {} configurations",
        outcome.step2.simulations(),
        outcome.config.configurations()
    );
    println!(
        "step 3: {} Pareto-optimal combinations:",
        outcome.pareto.global_front.len()
    );
    for p in &outcome.pareto.global_front {
        println!("  {:20} {}", p.combo, p.report);
    }
    println!(
        "total: {} of {} exhaustive simulations ({:.0}% reduction)",
        outcome.counts.reduced,
        outcome.counts.exhaustive,
        outcome.counts.reduction() * 100.0
    );
    println!("{}", engine_summary(&outcome.engine));
    Ok(())
}

fn pareto(rest: &[&String]) -> Result<(), String> {
    let (app, cfg) = parse_app(rest)?;
    let mut engine = engine_from(rest)?;
    let outcome = Methodology::new(cfg)
        .run_with(&mut engine)
        .map_err(|e| e.to_string())?;
    write_trace_if_requested(rest)?;
    println!("# Pareto exploration spaces of {app}");
    for front in &outcome.pareto.per_config {
        let logs = outcome.step2.logs_for(&front.config_key);
        println!("\n== {} ==", front.config_key);
        println!(
            "{}",
            render_pareto_chart(&logs, ParetoChartPlane::TimeEnergy)
        );
        println!("Pareto-optimal: {}", front.front.len());
        for p in &front.front {
            println!("  {:20} {}", p.combo, p.report);
        }
    }
    Ok(())
}

fn report(rest: &[&String]) -> Result<(), String> {
    let (app, cfg) = parse_app(rest)?;
    let mut engine = engine_from(rest)?;
    let outcome = Methodology::new(cfg.clone())
        .run_with(&mut engine)
        .map_err(|e| e.to_string())?;
    write_trace_if_requested(rest)?;
    println!("{}", table1_markdown(&[&outcome]));
    println!("{}", table2_markdown(&[&outcome]));
    let headline = headline_comparison(&cfg, &outcome).map_err(|e| e.to_string())?;
    println!("# headline vs original ({app}, both dominant DDTs = SLL)");
    println!(
        "energy saving (best-energy point {}): {:.0}%",
        headline.best_energy_combo,
        headline.energy_saving() * 100.0
    );
    println!(
        "time improvement (best-time point {}): {:.0}%",
        headline.best_time_combo,
        headline.time_improvement() * 100.0
    );
    Ok(())
}

fn trace(rest: &[&String]) -> Result<(), String> {
    let preset: NetworkPreset = rest.first().ok_or("missing preset")?.parse()?;
    let packets: usize = rest
        .get(1)
        .ok_or("missing packet count")?
        .parse()
        .map_err(|e| format!("bad packet count: {e}"))?;
    print!("{}", TraceWriter::to_string(&preset.generate(packets)));
    Ok(())
}

fn params(rest: &[&String]) -> Result<(), String> {
    let preset: NetworkPreset = rest.first().ok_or("missing preset")?.parse()?;
    let packets: usize = rest
        .get(1)
        .ok_or("missing packet count")?
        .parse()
        .map_err(|e| format!("bad packet count: {e}"))?;
    let p = NetworkParams::extract(&preset.generate(packets));
    println!("network        : {}", p.network);
    println!("nodes observed : {}", p.nodes_observed);
    println!("duration       : {:.3} s", p.duration_s);
    println!(
        "throughput     : {:.0} pps / {:.0} bps",
        p.throughput_pps, p.throughput_bps
    );
    println!(
        "mean pkt size  : {:.1} B (MTU {})",
        p.mean_packet_bytes, p.mtu_bytes
    );
    let [s, m, l] = p.sizes.shares();
    println!(
        "size mix       : {:.0}% small / {:.0}% medium / {:.0}% large",
        s * 100.0,
        m * 100.0,
        l * 100.0
    );
    println!("flows observed : {}", p.flows_observed);
    println!("url share      : {:.1}%", p.url_share * 100.0);
    println!("mean train len : {:.2} pkts", p.mean_train_len);
    println!("gap p99/median : {:.1}x", p.gap_p99_over_median);
    Ok(())
}

fn replay(rest: &[&String]) -> Result<(), String> {
    let path = rest.first().ok_or("missing log file")?;
    let file = std::fs::File::open(path.as_str()).map_err(|e| e.to_string())?;
    let logs = read_logs(std::io::BufReader::new(file)).map_err(|e| e.to_string())?;
    let n = logs.len();
    let pareto = explore_pareto_level(&step2_from_logs(logs)).map_err(|e| e.to_string())?;
    println!("# step 3 replayed from {n} persisted logs");
    println!("{} Pareto-optimal combinations:", pareto.global_front.len());
    for p in &pareto.global_front {
        println!("  {:20} {}", p.combo, p.report);
    }
    Ok(())
}

fn ga(rest: &[&String]) -> Result<(), String> {
    let app: AppKind = rest
        .first()
        .ok_or("missing application name")?
        .parse()
        .map_err(|e| format!("{e}"))?;
    let mut cfg = if rest.iter().any(|a| a.as_str() == "--quick") {
        GaConfig::quick(app)
    } else {
        GaConfig::paper(app)
    };
    if rest.iter().any(|a| a.as_str() == "--extended") {
        cfg.candidates = DdtKind::EXTENDED.to_vec();
    }
    if rest.iter().any(|a| a.as_str() == "--stream") {
        cfg.streaming = true;
    }
    if let Some(seed) = flag_value(rest, "--seed")? {
        cfg.seed = seed.parse().map_err(|e| format!("bad seed: {e}"))?;
    }
    if let Some(stall) = flag_value(rest, "--stall")? {
        cfg.stall_generations = Some(
            stall
                .parse()
                .map_err(|e| format!("bad stall window: {e}"))?,
        );
    }
    if let Some(name) = flag_value(rest, FLAG_MEM)? {
        cfg.mem = name.parse::<MemoryPreset>()?.config();
    }
    let space = cfg.candidates.len().pow(2);
    let mut engine = engine_from(rest)?;
    let outcome = explore_heuristic_with(&mut engine, &cfg).map_err(|e| e.to_string())?;
    write_trace_if_requested(rest)?;
    println!("# heuristic (NSGA-II) exploration of {app}");
    println!(
        "candidates: {} kinds ({} combinations), seed {}",
        cfg.candidates.len(),
        space,
        cfg.seed
    );
    for h in &outcome.history {
        println!(
            "generation {:2}: {:3} simulations, archive front {:2}",
            h.generation, h.evaluations, h.front_size
        );
    }
    println!(
        "\n{} simulations of {} exhaustive ({:.0}% saved); front:",
        outcome.evaluations,
        space,
        100.0 * (1.0 - outcome.evaluations as f64 / space as f64)
    );
    for log in &outcome.front {
        println!("  {:20} {}", log.combo, log.report);
    }
    println!("{}", engine_stats_line(&engine));
    Ok(())
}

fn scenarios(rest: &[&String]) -> Result<(), String> {
    let base: NetworkPreset = match flag_value(rest, "--base")? {
        Some(v) => v.parse()?,
        None => NetworkPreset::DartmouthBerry,
    };
    let mut cfg = if rest.iter().any(|a| a.as_str() == "--quick") {
        ScenarioConfig::quick(base)
    } else {
        ScenarioConfig::paper(base)
    };
    if rest.iter().any(|a| a.as_str() == "--extended") {
        cfg.candidates = DdtKind::EXTENDED.to_vec();
    }
    if let Some(app) = scan_app_positional(rest, "scenarios", &["--base", "--packets", FLAG_MEM])? {
        cfg.apps = vec![app.parse().map_err(|e| format!("{e}"))?];
    }
    if let Some(packets) = flag_value(rest, "--packets")? {
        cfg.packets_per_sim = packets
            .parse()
            .map_err(|e| format!("bad packet count: {e}"))?;
    }
    if let Some(name) = flag_value(rest, FLAG_MEM)? {
        cfg.mem = name.parse::<MemoryPreset>()?.config();
    }
    let mut engine = engine_from(rest)?;
    let matrix = explore_scenarios_with(&mut engine, &cfg).map_err(|e| e.to_string())?;
    write_trace_if_requested(rest)?;
    println!(
        "# scenario matrix over {base}: {} apps x {} scenarios, {} packets/sim (streamed)",
        cfg.apps.len(),
        cfg.scenarios.len(),
        cfg.packets_per_sim
    );
    for cell in &matrix.cells {
        println!(
            "\n== {} under {} ({}) ==",
            cell.app, cell.scenario, cell.network
        );
        println!(
            "{} combinations evaluated, {} Pareto-optimal:",
            cell.evaluations,
            cell.front.len()
        );
        for log in &cell.front {
            println!("  {:20} {}", log.combo, log.report);
        }
    }
    // Scenario columns often shift the front — summarise the shift per app.
    for &app in &cfg.apps {
        let mut fronts: Vec<(Scenario, Vec<String>)> = Vec::new();
        for &scenario in &cfg.scenarios {
            if let Some(cell) = matrix.cell(app, scenario) {
                fronts.push((scenario, cell.front_labels()));
            }
        }
        if let Some((_, baseline)) = fronts.first() {
            let shifted = fronts[1..]
                .iter()
                .filter(|(_, labels)| labels != baseline)
                .count();
            println!(
                "\n{app}: {shifted} of {} scenarios shift the Pareto front vs {}",
                fronts.len().saturating_sub(1),
                fronts[0].0
            );
        }
    }
    println!("\n{}", engine_stats_line(&engine));
    Ok(())
}

fn sweep(rest: &[&String]) -> Result<(), String> {
    let base: NetworkPreset = match flag_value(rest, "--base")? {
        Some(v) => v.parse()?,
        None => NetworkPreset::DartmouthBerry,
    };
    let mut cfg = if rest.iter().any(|a| a.as_str() == "--quick") {
        SweepConfig::quick(base)
    } else {
        SweepConfig::paper(base)
    };
    if rest.iter().any(|a| a.as_str() == "--extended") {
        cfg.candidates = DdtKind::EXTENDED.to_vec();
    }
    if let Some(app) = scan_app_positional(
        rest,
        "sweep",
        &["--base", "--packets", FLAG_MEM, "--scenario"],
    )? {
        cfg.apps = vec![app.parse().map_err(|e| format!("{e}"))?];
    }
    let scenario_names = repeated_flag_values(rest, "--scenario")?;
    if !scenario_names.is_empty() {
        cfg.scenarios = scenario_names
            .iter()
            .map(|n| n.parse::<Scenario>())
            .collect::<Result<_, _>>()?;
    }
    if let Some(packets) = flag_value(rest, "--packets")? {
        cfg.packets_per_sim = packets
            .parse()
            .map_err(|e| format!("bad packet count: {e}"))?;
    }
    if let Some(list) = flag_value(rest, FLAG_MEM)? {
        cfg.mem_presets = list
            .split(',')
            .map(|n| n.parse::<MemoryPreset>())
            .collect::<Result<_, _>>()?;
    }
    let mut engine = engine_from(rest)?;
    println!(
        "# platform sweep over {base}: {} apps x {} scenarios x {} platforms, {} packets/sim (streamed)",
        cfg.apps.len(),
        cfg.scenarios.len(),
        cfg.mem_presets.len(),
        cfg.packets_per_sim
    );
    // Cells print as they complete — the sweep streams on the CLI too.
    let matrix = explore_sweep_observed(&mut engine, &cfg, |cell, done, total| {
        println!(
            "\n== [{done}/{total}] {} under {} on {} ({}) ==",
            cell.app, cell.scenario, cell.mem, cell.network
        );
        println!(
            "{} combinations evaluated, {} Pareto-optimal:",
            cell.evaluations,
            cell.front.len()
        );
        for log in &cell.front {
            println!("  {:20} {}", log.combo, log.report);
        }
    })
    .map_err(|e| e.to_string())?;
    write_trace_if_requested(rest)?;
    // The cross-platform answer: who survives on how many cells?
    let cells = matrix.cells.len();
    println!("\n# cross-platform survivors ({cells} cells)");
    for s in &matrix.survivors {
        let marker = if s.cells_on_front == cells {
            "  [every cell]"
        } else {
            ""
        };
        println!(
            "  {:20} on {:3} of {cells} fronts{marker}",
            s.combo, s.cells_on_front
        );
    }
    let robust = matrix.robust_combos(cells);
    println!(
        "{} of {} front combinations survive the whole platform family",
        robust.len(),
        matrix.survivors.len()
    );
    println!("\n{}", engine_stats_line(&engine));
    Ok(())
}

/// Marker variable distinguishing the daemonized `ddtr serve` child from
/// the foreground parent that spawned it.
const ENV_SERVE_DAEMONIZED: &str = "DDTR_SERVE_DAEMONIZED";

/// Parses the hardened-edge flags of `ddtr serve` into a
/// [`ServerConfig`] on top of the shared engine flags.
fn server_config_from(rest: &[&String]) -> Result<ServerConfig, String> {
    let mut cfg = ServerConfig::new(engine_config_from(rest)?);
    if let Some(v) = flag_value(rest, "--workers")? {
        cfg.workers = v.parse().map_err(|e| format!("bad --workers value: {e}"))?;
    }
    if let Some(v) = flag_value(rest, "--auth-token")? {
        cfg.auth_token = Some(v.clone());
    }
    if let Some(v) = flag_value(rest, "--max-conns")? {
        cfg.max_connections = v
            .parse()
            .map_err(|e| format!("bad --max-conns value: {e}"))?;
    }
    if let Some(v) = flag_value(rest, "--max-inflight")? {
        cfg.max_inflight = v
            .parse()
            .map_err(|e| format!("bad --max-inflight value: {e}"))?;
    }
    if let Some(v) = flag_value(rest, "--rate-limit")? {
        cfg.rate_limit = Some(
            v.parse()
                .map_err(|e| format!("bad --rate-limit value: {e}"))?,
        );
    }
    if let Some(v) = flag_value(rest, "--max-request-bytes")? {
        cfg.max_request_bytes = v
            .parse()
            .map_err(|e| format!("bad --max-request-bytes value: {e}"))?;
    }
    Ok(cfg)
}

/// Re-executes `ddtr serve` detached from the terminal (null stdio, the
/// marker env var set), records the child pid, and returns in the
/// parent. The child is killed again if the pidfile cannot be written —
/// a daemon nobody can find is worse than no daemon.
fn daemonize_serve(pid_file: Option<&Path>) -> Result<(), String> {
    let exe = std::env::current_exe().map_err(|e| format!("cannot find own executable: {e}"))?;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut child = std::process::Command::new(exe)
        .args(&args)
        .env(ENV_SERVE_DAEMONIZED, "1")
        .stdin(std::process::Stdio::null())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .map_err(|e| format!("cannot daemonize: {e}"))?;
    let pid = child.id();
    if let Some(path) = pid_file {
        if let Err(e) = ddtr_serve::write_pidfile(path, pid) {
            let _ = child.kill();
            return Err(e.to_string());
        }
    }
    println!("ddtr serve: daemonized as pid {pid}");
    Ok(())
}

fn serve(rest: &[&String]) -> Result<(), String> {
    let endpoint: Endpoint = match flag_value(rest, "--listen")? {
        Some(raw) => raw.parse()?,
        None => Endpoint::Stdio,
    };
    let pid_file = flag_value(rest, "--pid-file")?.map(PathBuf::from);
    let daemon_requested = rest.iter().any(|a| a.as_str() == "--daemon");
    let is_daemon_child = std::env::var_os(ENV_SERVE_DAEMONIZED).is_some();
    if daemon_requested && !is_daemon_child {
        if endpoint == Endpoint::Stdio {
            return Err(
                "--daemon needs a socket endpoint (--listen tcp:<addr> or unix:<path>)".to_string(),
            );
        }
        return daemonize_serve(pid_file.as_deref());
    }
    if let Some(path) = &pid_file {
        // The daemon parent already recorded the child's pid; everyone
        // else (foreground or daemon child without a parent-written
        // file) records their own.
        if !is_daemon_child {
            ddtr_serve::write_pidfile(path, std::process::id()).map_err(|e| e.to_string())?;
        }
    }
    let server = Server::with_config(server_config_from(rest)?).map_err(|e| e.to_string())?;
    server.listen(&endpoint).map_err(|e| e.to_string())
}

/// Drives a running service with concurrent scripted clients and prints
/// the latency/cleanliness report (`ddtr loadtest`). Exits non-zero when
/// the run was not clean or broke the `--p99-ms` bound, so CI can gate
/// on the bare exit code.
fn loadtest(rest: &[&String]) -> Result<(), String> {
    let endpoint: Endpoint = rest
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("loadtest needs an endpoint (tcp:<addr> or unix:<path>)")?
        .parse()?;
    if endpoint == Endpoint::Stdio {
        return Err("loadtest needs a socket endpoint (stdio serves exactly one client)".into());
    }
    let mut cfg = LoadtestConfig::new(endpoint);
    if let Some(v) = flag_value(rest, "--clients")? {
        cfg.clients = v.parse().map_err(|e| format!("bad --clients value: {e}"))?;
    }
    if let Some(v) = flag_value(rest, "--pings")? {
        cfg.pings = v.parse().map_err(|e| format!("bad --pings value: {e}"))?;
    }
    if let Some(v) = flag_value(rest, "--explores")? {
        cfg.explores = v
            .parse()
            .map_err(|e| format!("bad --explores value: {e}"))?;
    }
    if rest.iter().any(|a| a.as_str() == "--full") {
        cfg.quick = false;
    }
    if let Some(list) = flag_value(rest, "--apps")? {
        cfg.apps = list.split(',').map(str::to_string).collect();
    }
    if let Some(v) = flag_value(rest, "--auth-token")? {
        cfg.auth = Some(v.clone());
    }
    if let Some(v) = flag_value(rest, "--connect-retries")? {
        cfg.connect_retries = v
            .parse()
            .map_err(|e| format!("bad --connect-retries value: {e}"))?;
    }
    let p99_bound_ms: Option<u64> = match flag_value(rest, "--p99-ms")? {
        Some(v) => Some(v.parse().map_err(|e| format!("bad --p99-ms value: {e}"))?),
        None => None,
    };
    let report = ddtr_serve::loadtest::run(&cfg);
    if rest.iter().any(|a| a.as_str() == "--json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
        );
    } else {
        println!("# loadtest against {}", cfg.endpoint);
        println!(
            "clients : {} configured, {} completed, {} dropped",
            report.clients, report.completed_clients, report.dropped_connections
        );
        println!("errors  : {} protocol error(s)", report.protocol_errors);
        println!(
            "engine  : executed={} cache_hits={}",
            report.executed, report.cache_hits
        );
        for (name, lat) in [("ping", &report.ping), ("explore", &report.explore)] {
            println!(
                "{name:8}: n={} p50={}us p99={}us max={}us",
                lat.count, lat.p50_us, lat.p99_us, lat.max_us
            );
        }
        println!("wall    : {}ms", report.wall_ms);
    }
    if !report.clean() {
        return Err(format!(
            "loadtest was not clean: {} dropped connection(s), {} protocol error(s)",
            report.dropped_connections, report.protocol_errors
        ));
    }
    if let Some(bound_ms) = p99_bound_ms {
        let worst_us = report.ping.p99_us.max(report.explore.p99_us);
        if worst_us > bound_ms.saturating_mul(1000) {
            return Err(format!(
                "p99 latency {worst_us}us exceeds the --p99-ms bound of {bound_ms}ms"
            ));
        }
    }
    Ok(())
}

/// Builds the `Run` job spec of a `ddtr query` invocation from its
/// CLI-style arguments (everything after the endpoint).
/// Query flags that consume a value. The positional scanner in
/// [`query_spec`] skips exactly these constants, and the extraction below
/// it reads the same names through [`flag_value`], so adding a
/// value-taking query flag cannot desynchronise the two.
const QUERY_VALUE_FLAGS: [&str; 6] = [
    "--base",
    "--packets",
    "--seed",
    "--scenario",
    "--id",
    FLAG_MEM,
];

fn query_spec(rest: &[&String]) -> Result<JobSpec, String> {
    let mut spec = JobSpec::default();
    let mut positionals: Vec<&String> = Vec::new();
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--quick" => spec.quick = true,
            "--extended" => spec.extended = true,
            "--stream" => spec.stream = true,
            "--json" | "--quiet" => {} // handled by `query` itself
            flag if QUERY_VALUE_FLAGS.contains(&flag) => i += 1,
            flag if flag.starts_with("--") => return Err(format!("unknown query flag `{flag}`")),
            _ => positionals.push(rest[i]),
        }
        i += 1;
    }
    match positionals.as_slice() {
        [] => return Err("query needs a mode (explore, ga, scenarios, sweep or headline)".into()),
        [mode] => spec.mode = Some((*mode).clone()),
        [mode, app] => {
            spec.mode = Some((*mode).clone());
            spec.app = Some((*app).clone());
        }
        more => {
            return Err(format!(
                "query takes mode [app], got {} positionals",
                more.len()
            ))
        }
    }
    spec.base = flag_value(rest, "--base")?.cloned();
    if let Some(packets) = flag_value(rest, "--packets")? {
        spec.packets = Some(
            packets
                .parse()
                .map_err(|e| format!("bad packet count: {e}"))?,
        );
    }
    if let Some(seed) = flag_value(rest, "--seed")? {
        spec.seed = Some(seed.parse().map_err(|e| format!("bad seed: {e}"))?);
    }
    // `--scenario` may repeat; collect every occurrence.
    let scenarios = repeated_flag_values(rest, "--scenario")?;
    if !scenarios.is_empty() {
        spec.scenarios = Some(scenarios.into_iter().cloned().collect());
    }
    // `--mem` takes one preset (single-platform modes) or a
    // comma-separated platform axis (sweep); the spec carries the list
    // and the server enforces arity per mode.
    if let Some(list) = flag_value(rest, FLAG_MEM)? {
        spec.mem = Some(list.split(',').map(str::to_string).collect());
    }
    Ok(spec)
}

/// Fetches the server's metrics exposition (Prometheus-style text) and
/// prints it verbatim. `metrics` is not an exploration mode, so it skips
/// [`query_spec`] entirely.
fn query_metrics(endpoint: &Endpoint, rest: &[&String]) -> Result<(), String> {
    let id = flag_value(rest, "--id")?
        .cloned()
        .unwrap_or_else(|| "m1".to_string());
    let mut client = Client::connect(endpoint).map_err(|e| e.to_string())?;
    let reply = client
        .call(&Request::new(id, RequestBody::Metrics), |_| {})
        .map_err(|e| e.to_string())?;
    match reply {
        Event::Metrics { text, .. } => {
            print!("{text}");
            Ok(())
        }
        Event::Error { error, .. } => Err(error),
        other => Err(format!("unexpected terminal event {other:?}")),
    }
}

fn query(rest: &[&String]) -> Result<(), String> {
    let endpoint: Endpoint = rest
        .first()
        .ok_or("query needs an endpoint (tcp:<addr> or unix:<path>)")?
        .parse()?;
    if rest.get(1).is_some_and(|m| m.as_str() == "metrics") {
        return query_metrics(&endpoint, &rest[2..]);
    }
    let spec = query_spec(&rest[1..])?;
    // Validate locally first for a fast, offline error message.
    spec.resolve().map_err(|e| e.to_string())?;
    let id = flag_value(rest, "--id")?
        .cloned()
        .unwrap_or_else(|| "q1".to_string());
    let json = rest.iter().any(|a| a.as_str() == "--json");
    let quiet = rest.iter().any(|a| a.as_str() == "--quiet");
    let mut client = Client::connect(&endpoint).map_err(|e| e.to_string())?;
    let mut progressed = false;
    let reply = client
        .call(&Request::run(id.clone(), spec), |event| {
            if quiet {
                return;
            }
            match event {
                Event::Hello { server, jobs, .. } => {
                    eprintln!("connected: {server} (jobs={jobs})");
                }
                Event::Queued { id } => eprintln!("{id}: queued"),
                Event::Running { id, done, total } => {
                    eprint!("\r{id}: running {done}/{total}");
                    progressed = true;
                }
                Event::Cell {
                    id,
                    done,
                    total,
                    app,
                    scenario,
                    mem,
                    front,
                } => {
                    if progressed {
                        eprintln!();
                        progressed = false;
                    }
                    eprintln!(
                        "{id}: cell {done}/{total} {app}/{scenario} on {mem}: {}",
                        front.join(" ")
                    );
                }
                _ => {}
            }
        })
        .map_err(|e| e.to_string())?;
    if progressed && !quiet {
        eprintln!();
    }
    match reply {
        Event::Result {
            executed,
            cache_hits,
            result,
            ..
        } => {
            if json {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&result).map_err(|e| e.to_string())?
                );
            } else {
                println!("# {} answered by {endpoint}", result.mode());
                println!("engine: cache_hits={cache_hits} executed={executed}");
                if let ExploreResult::Sweep(matrix) = result.as_ref() {
                    // The aggregated cross-platform answer (the per-cell
                    // fronts already streamed as Cell events).
                    let cells = matrix.cells.len();
                    println!("cross-platform survivors ({cells} cells):");
                    for s in &matrix.survivors {
                        println!(
                            "  {:20} on {:3} of {cells} fronts",
                            s.combo, s.cells_on_front
                        );
                    }
                } else {
                    println!("Pareto-optimal combinations:");
                    for label in result.front_labels() {
                        println!("  {label}");
                    }
                }
            }
            Ok(())
        }
        Event::Cancelled { id } => Err(format!("request `{id}` was cancelled")),
        Event::Error { error, .. } => Err(error),
        other => Err(format!("unexpected terminal event {other:?}")),
    }
}

fn cache(rest: &[&String]) -> Result<(), String> {
    let action = rest
        .first()
        .ok_or("cache needs `stats`, `clear`, `verify`, `compact`, `import` or `export`")?;
    let dir = cache_dir_of(rest)?;
    match action.as_str() {
        "stats" => {
            let (entries, bytes) = SimCache::inspect(&dir).map_err(|e| e.to_string())?;
            println!("cache dir : {}", dir.display());
            println!("entries   : {entries}");
            println!("size      : {bytes} bytes");
            if dir.exists() {
                let stats = SimCache::store_stats(&dir).map_err(|e| e.to_string())?;
                println!("segments  : {}", stats.segments);
                println!("records   : {}", stats.records);
                println!("generation: {}", stats.generation);
            }
            Ok(())
        }
        "clear" => {
            let existed = SimCache::clear(&dir).map_err(|e| e.to_string())?;
            if existed {
                println!("cleared result cache under {}", dir.display());
            } else {
                println!("no result cache under {}", dir.display());
            }
            Ok(())
        }
        "verify" => {
            let report = SimCache::verify_store(&dir).map_err(|e| e.to_string())?;
            for seg in &report.segments {
                println!(
                    "segment {} : gen={} committed={} ok={} bytes={}",
                    seg.name, seg.generation, seg.committed_records, seg.records_ok, seg.data_bytes
                );
                for issue in &seg.issues {
                    println!("  corrupt: {issue}");
                }
            }
            println!(
                "verified  : {} records ok, {} issue(s)",
                report.records_ok(),
                report.issue_count()
            );
            if report.is_clean() {
                Ok(())
            } else {
                Err(format!(
                    "store under {} has {} corruption issue(s) — see above; \
                     `ddtr cache compact` rewrites the store keeping only verified records",
                    dir.display(),
                    report.issue_count()
                ))
            }
        }
        "compact" => {
            let report = SimCache::compact_store(&dir).map_err(|e| e.to_string())?;
            println!(
                "compacted : {} records in -> {} out, {} segment(s) removed, generation {}",
                report.records_in, report.records_out, report.segments_removed, report.generation
            );
            Ok(())
        }
        "import" => {
            let file = rest
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .ok_or("cache import needs a JSONL file path")?;
            let count = SimCache::import_store(&dir, Path::new(file.as_str()))
                .map_err(|e| e.to_string())?;
            println!("imported  : {count} entries from {file}");
            Ok(())
        }
        "export" => {
            let file = rest
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .ok_or("cache export needs an output file path")?;
            let count = SimCache::export_store(&dir, Path::new(file.as_str()))
                .map_err(|e| e.to_string())?;
            println!("exported  : {count} entries to {file}");
            Ok(())
        }
        other => Err(format!("unknown cache action `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn missing_subcommand_is_an_error() {
        assert!(run(&[]).is_err());
    }

    #[test]
    fn unknown_subcommand_is_reported() {
        let err = run(&args(&["frobnicate"])).unwrap_err();
        assert!(err.contains("frobnicate"));
    }

    #[test]
    fn unknown_application_is_reported() {
        let err = run(&args(&["profile", "nfs"])).unwrap_err();
        assert!(err.contains("nfs"));
    }

    #[test]
    fn parse_app_selects_quick_config() {
        let binding = args(&["drr", "--quick"]);
        let rest: Vec<&String> = binding.iter().collect();
        let (app, cfg) = parse_app(&rest).expect("parses");
        assert_eq!(app, AppKind::Drr);
        assert_eq!(cfg.networks.len(), 2, "quick config uses two networks");
        let binding = args(&["drr"]);
        let rest: Vec<&String> = binding.iter().collect();
        let (_, cfg) = parse_app(&rest).expect("parses");
        assert_eq!(cfg.networks.len(), 5, "paper config uses the full sweep");
    }

    #[test]
    fn trace_requires_packet_count() {
        let err = run(&args(&["trace", "BWY-I"])).unwrap_err();
        assert!(err.contains("packet count"));
        let err = run(&args(&["trace", "BWY-I", "many"])).unwrap_err();
        assert!(err.contains("bad packet count"));
    }

    #[test]
    fn replay_rejects_missing_file() {
        assert!(run(&args(&["replay", "/nonexistent/logs.jsonl"])).is_err());
    }

    #[test]
    fn presets_subcommand_succeeds() {
        run(&args(&["presets"])).expect("lists presets");
    }

    #[test]
    fn profile_quick_runs_end_to_end() {
        run(&args(&["profile", "drr", "--quick"])).expect("profiles");
    }

    #[test]
    fn parse_app_honours_extended_flag() {
        let binding = args(&["drr", "--quick", "--extended"]);
        let rest: Vec<&String> = binding.iter().collect();
        let (_, cfg) = parse_app(&rest).expect("parses");
        assert_eq!(cfg.candidates.len(), 12);
    }

    #[test]
    fn ga_quick_runs_end_to_end() {
        run(&args(&[
            "ga",
            "drr",
            "--quick",
            "--seed",
            "7",
            "--no-cache",
        ]))
        .expect("heuristic runs");
    }

    #[test]
    fn ga_rejects_bad_seed() {
        let err = run(&args(&["ga", "drr", "--quick", "--seed", "banana"])).unwrap_err();
        assert!(err.contains("bad seed"));
    }

    #[test]
    fn ga_accepts_stall_window() {
        run(&args(&[
            "ga",
            "drr",
            "--quick",
            "--stall",
            "2",
            "--no-cache",
        ]))
        .expect("runs with early stop");
        let err = run(&args(&["ga", "drr", "--quick", "--stall", "zero"])).unwrap_err();
        assert!(err.contains("bad stall window"));
    }

    #[test]
    fn explore_writes_logs_and_replay_reads_them() {
        let path = std::env::temp_dir().join("ddtr_cli_test_logs.jsonl");
        let path_str = path.to_string_lossy().into_owned();
        run(&args(&[
            "explore",
            "drr",
            "--quick",
            "--no-cache",
            "--logs",
            &path_str,
        ]))
        .expect("explores");
        run(&args(&["replay", &path_str])).expect("replays");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn parse_app_honours_stream_flag() {
        let binding = args(&["drr", "--quick", "--stream"]);
        let rest: Vec<&String> = binding.iter().collect();
        let (_, cfg) = parse_app(&rest).expect("parses");
        assert!(cfg.streaming);
        let binding = args(&["drr", "--quick"]);
        let rest: Vec<&String> = binding.iter().collect();
        let (_, cfg) = parse_app(&rest).expect("parses");
        assert!(!cfg.streaming);
    }

    #[test]
    fn streamed_explore_runs_end_to_end() {
        run(&args(&[
            "explore",
            "drr",
            "--quick",
            "--stream",
            "--no-cache",
        ]))
        .expect("streamed explore");
    }

    #[test]
    fn scenarios_single_app_runs_end_to_end() {
        run(&args(&[
            "scenarios",
            "drr",
            "--quick",
            "--packets",
            "40",
            "--no-cache",
        ]))
        .expect("scenario matrix");
    }

    #[test]
    fn scenarios_rejects_bad_inputs() {
        let err = run(&args(&["scenarios", "nfs", "--quick"])).unwrap_err();
        assert!(err.contains("nfs"));
        let err = run(&args(&["scenarios", "drr", "--base", "NOPE"])).unwrap_err();
        assert!(err.contains("NOPE"));
        let err = run(&args(&["scenarios", "drr", "--packets", "many"])).unwrap_err();
        assert!(err.contains("bad packet count"));
        // The application may follow flags — it must not be silently
        // ignored (which would run the full matrix instead of one row).
        let err = run(&args(&["scenarios", "--quick", "nfs"])).unwrap_err();
        assert!(err.contains("nfs"), "{err}");
        let err = run(&args(&["scenarios", "drr", "url", "--quick"])).unwrap_err();
        assert!(err.contains("at most one application"), "{err}");
        // Unknown flags (and typos of value flags) are rejected, not
        // silently swallowed.
        let err = run(&args(&["scenarios", "drr", "--frobnicate"])).unwrap_err();
        assert!(err.contains("--frobnicate"), "{err}");
        let err = run(&args(&["scenarios", "drr", "--packet", "40"])).unwrap_err();
        assert!(err.contains("--packet"), "{err}");
    }

    #[test]
    fn scenarios_honours_extended_candidates() {
        // --extended must enlarge the per-cell space (12^2 = 144), like
        // every other simulating subcommand.
        run(&args(&[
            "scenarios",
            "drr",
            "--quick",
            "--extended",
            "--packets",
            "20",
            "--no-cache",
        ]))
        .expect("extended scenario matrix runs");
    }

    #[test]
    fn scenarios_accepts_app_after_flags() {
        run(&args(&[
            "scenarios",
            "--quick",
            "--packets",
            "30",
            "--no-cache",
            "url",
        ]))
        .expect("app after flags restricts the matrix to one row");
    }

    #[test]
    fn sweep_quick_runs_end_to_end() {
        run(&args(&[
            "sweep",
            "drr",
            "--quick",
            "--packets",
            "40",
            "--mem",
            "embedded,l2-small",
            "--scenario",
            "baseline",
            "--scenario",
            "ddos-syn",
            "--no-cache",
        ]))
        .expect("platform sweep");
    }

    #[test]
    fn sweep_rejects_bad_inputs() {
        // Unknown memory presets are rejected with the catalog listed —
        // the same structured error the serve layer returns.
        let err = run(&args(&[
            "sweep",
            "drr",
            "--quick",
            "--mem",
            "quantum",
            "--no-cache",
        ]))
        .unwrap_err();
        assert!(err.contains("quantum"), "{err}");
        assert!(err.contains("embedded"), "error lists the catalog: {err}");
        assert!(err.contains("l2-small"), "error lists the catalog: {err}");
        let err = run(&args(&["sweep", "nfs", "--quick"])).unwrap_err();
        assert!(err.contains("nfs"), "{err}");
        let err = run(&args(&["sweep", "drr", "--frobnicate"])).unwrap_err();
        assert!(err.contains("--frobnicate"), "{err}");
        let err = run(&args(&["sweep", "drr", "url", "--quick"])).unwrap_err();
        assert!(err.contains("at most one application"), "{err}");
        // Duplicate platform columns are a config error, not a silent
        // double evaluation.
        let err = run(&args(&[
            "sweep",
            "drr",
            "--quick",
            "--mem",
            "l2,l2",
            "--no-cache",
        ]))
        .unwrap_err();
        assert!(err.contains("distinct"), "{err}");
    }

    #[test]
    fn mem_flag_selects_the_platform_on_simulating_subcommands() {
        let binding = args(&["drr", "--quick", "--mem", "deep"]);
        let rest: Vec<&String> = binding.iter().collect();
        let (_, cfg) = parse_app(&rest).expect("parses");
        assert!(cfg.mem.l2.is_some(), "deep preset carries an L2");
        assert_eq!(cfg.mem.l1.capacity_bytes, 16 * 1024);
        // Unknown names are rejected with the catalog.
        let err = run(&args(&["explore", "drr", "--quick", "--mem", "nope"])).unwrap_err();
        assert!(err.contains("nope") && err.contains("spm"), "{err}");
        let err = run(&args(&["ga", "drr", "--quick", "--mem", "nope"])).unwrap_err();
        assert!(err.contains("nope"), "{err}");
        let err = run(&args(&["scenarios", "drr", "--quick", "--mem", "nope"])).unwrap_err();
        assert!(err.contains("nope"), "{err}");
    }

    #[test]
    fn mem_presets_subcommand_lists_the_catalog() {
        run(&args(&["mem-presets"])).expect("lists memory presets");
    }

    #[test]
    fn bad_jobs_value_is_reported() {
        let err = run(&args(&["explore", "drr", "--quick", "--jobs", "banana"])).unwrap_err();
        assert!(err.contains("bad --jobs"), "{err}");
        let err = run(&args(&["explore", "drr", "--quick", "--jobs"])).unwrap_err();
        assert!(err.contains("--jobs needs a value"), "{err}");
    }

    #[test]
    fn flag_followed_by_another_flag_is_a_missing_value() {
        let err = run(&args(&[
            "explore",
            "drr",
            "--quick",
            "--cache-dir",
            "--jobs",
            "4",
        ]))
        .unwrap_err();
        assert!(err.contains("--cache-dir needs a value"), "{err}");
    }

    #[test]
    fn explicit_jobs_run_end_to_end() {
        run(&args(&[
            "explore",
            "drr",
            "--quick",
            "--jobs",
            "2",
            "--no-cache",
        ]))
        .expect("explores on two workers");
    }

    #[test]
    fn query_requires_endpoint_and_mode() {
        let err = run(&args(&["query"])).unwrap_err();
        assert!(err.contains("endpoint"), "{err}");
        let err = run(&args(&["query", "tcp:127.0.0.1:1"])).unwrap_err();
        assert!(err.contains("mode"), "{err}");
        let err = run(&args(&["query", "smoke-signals:hill"])).unwrap_err();
        assert!(err.contains("smoke-signals"), "{err}");
        // Bad specs are rejected locally, before connecting anywhere.
        let err = run(&args(&["query", "tcp:127.0.0.1:1", "frobnicate"])).unwrap_err();
        assert!(err.contains("frobnicate"), "{err}");
        let err = run(&args(&["query", "tcp:127.0.0.1:1", "explore"])).unwrap_err();
        assert!(err.contains("requires `app`"), "{err}");
        let err = run(&args(&[
            "query",
            "tcp:127.0.0.1:1",
            "explore",
            "drr",
            "--frobnicate",
        ]))
        .unwrap_err();
        assert!(err.contains("--frobnicate"), "{err}");
    }

    #[test]
    fn serve_rejects_bad_listen_endpoints() {
        let err = run(&args(&["serve", "--listen", "carrier-pigeon:coop"])).unwrap_err();
        assert!(err.contains("carrier-pigeon"), "{err}");
    }

    #[test]
    fn serve_validates_the_hardened_edge_flags() {
        let err = run(&args(&["serve", "--workers", "many"])).unwrap_err();
        assert!(err.contains("bad --workers"), "{err}");
        let err = run(&args(&["serve", "--rate-limit", "fast"])).unwrap_err();
        assert!(err.contains("bad --rate-limit"), "{err}");
        let err = run(&args(&["serve", "--max-request-bytes", "big"])).unwrap_err();
        assert!(err.contains("bad --max-request-bytes"), "{err}");
        // Daemonizing a stdio server is a contradiction, not a spawn.
        let err = run(&args(&["serve", "--daemon"])).unwrap_err();
        assert!(err.contains("--daemon needs a socket endpoint"), "{err}");
    }

    #[test]
    fn loadtest_validates_its_arguments() {
        let err = run(&args(&["loadtest"])).unwrap_err();
        assert!(err.contains("endpoint"), "{err}");
        let err = run(&args(&["loadtest", "stdio"])).unwrap_err();
        assert!(err.contains("socket endpoint"), "{err}");
        let err = run(&args(&["loadtest", "tcp:127.0.0.1:1", "--clients", "many"])).unwrap_err();
        assert!(err.contains("bad --clients"), "{err}");
        let err = run(&args(&["loadtest", "tcp:127.0.0.1:1", "--p99-ms", "slow"])).unwrap_err();
        assert!(err.contains("bad --p99-ms"), "{err}");
    }

    #[test]
    fn loadtest_drives_a_live_fleet_and_gates_on_cleanliness() {
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let endpoint = format!("tcp:{}", listener.local_addr().expect("addr"));
        let cfg = ServerConfig {
            workers: 2,
            ..ServerConfig::new(ddtr_core::EngineConfig::with_jobs(2))
        };
        let server = Server::with_config(cfg).expect("server");
        std::thread::scope(|scope| {
            let server = &server;
            scope.spawn(move || server.serve_tcp(&listener).expect("serve"));
            run(&args(&[
                "loadtest",
                &endpoint,
                "--clients",
                "4",
                "--pings",
                "3",
                "--explores",
                "1",
            ]))
            .expect("clean loadtest run");
            // A vanishingly small p99 bound must fail the run.
            let err = run(&args(&[
                "loadtest",
                &endpoint,
                "--clients",
                "2",
                "--pings",
                "1",
                "--explores",
                "0",
                "--p99-ms",
                "0",
            ]))
            .unwrap_err();
            assert!(err.contains("--p99-ms bound"), "{err}");
            let mut client =
                Client::connect(&endpoint.parse().expect("endpoint")).expect("connect");
            client
                .send(&Request::new("bye", ddtr_serve::RequestBody::Shutdown))
                .expect("shutdown");
        });
    }

    #[test]
    fn serve_and_query_round_trip_over_tcp() {
        use std::net::TcpListener;
        // Bind first so the query below cannot race the server's setup.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let endpoint = format!("tcp:{}", listener.local_addr().expect("addr"));
        let server = Server::new(ddtr_core::EngineConfig::with_jobs(1)).expect("server");
        std::thread::scope(|scope| {
            let server = &server;
            scope.spawn(move || server.serve_tcp(&listener).expect("serve"));
            run(&args(&[
                "query", &endpoint, "explore", "drr", "--quick", "--quiet",
            ]))
            .expect("query answers");
            // `metrics` is a first-class query mode, not an explore spec.
            run(&args(&["query", &endpoint, "metrics"])).expect("metrics answers");
            // Shut the server down so the scope can join.
            let mut client =
                Client::connect(&endpoint.parse().expect("endpoint")).expect("connect");
            client
                .send(&Request::new("bye", ddtr_serve::RequestBody::Shutdown))
                .expect("shutdown");
        });
    }

    #[test]
    fn trace_json_flag_writes_a_chrome_trace() {
        let path = std::env::temp_dir().join(format!("ddtr-cli-trace-{}.json", std::process::id()));
        let path_str = path.to_string_lossy().into_owned();
        run(&args(&[
            "explore",
            "drr",
            "--quick",
            "--no-cache",
            "--trace-json",
            &path_str,
        ]))
        .expect("explore with tracing");
        let raw = std::fs::read_to_string(&path).expect("trace file exists");
        let doc = serde_json::parse(&raw).expect("trace file is valid JSON");
        let events = doc
            .as_map()
            .and_then(|m| m.get("traceEvents"))
            .and_then(|v| v.as_seq())
            .expect("traceEvents array");
        assert!(!events.is_empty(), "the run records spans");
        // A forgotten value errors rather than consuming the next flag.
        let err = run(&args(&["explore", "drr", "--quick", "--trace-json"])).unwrap_err();
        assert!(err.contains("--trace-json needs a value"), "{err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn cache_dir_persists_across_runs_and_cache_subcommand_manages_it() {
        use ddtr_engine::testing::TempCacheDir;
        use ddtr_engine::SimCache;
        let tmp = TempCacheDir::new("cli-cache");
        let dir = tmp.path().to_path_buf();
        let dir_str = dir.to_string_lossy().into_owned();
        run(&args(&[
            "explore",
            "drr",
            "--quick",
            "--cache-dir",
            &dir_str,
        ]))
        .expect("cold run");
        let (entries, bytes) = SimCache::inspect(&dir).expect("inspect");
        assert!(entries > 0, "cold run must persist results");
        // A warm run answers from the cache: nothing executes, so nothing
        // is appended to the store.
        run(&args(&[
            "explore",
            "drr",
            "--quick",
            "--cache-dir",
            &dir_str,
        ]))
        .expect("warm run");
        let (entries_after, bytes_after) = SimCache::inspect(&dir).expect("inspect");
        assert_eq!(entries, entries_after);
        assert_eq!(bytes, bytes_after, "warm run must not re-execute");
        run(&args(&["cache", "stats", "--cache-dir", &dir_str])).expect("stats");
        run(&args(&["cache", "verify", "--cache-dir", &dir_str])).expect("verify clean");
        // Export -> import into a fresh directory preserves every entry.
        let dump = tmp.join("dump.jsonl");
        let dump_str = dump.to_string_lossy().into_owned();
        run(&args(&[
            "cache",
            "export",
            &dump_str,
            "--cache-dir",
            &dir_str,
        ]))
        .expect("export");
        let fresh = TempCacheDir::new("cli-cache-import");
        let fresh_str = fresh.path().to_string_lossy().into_owned();
        run(&args(&[
            "cache",
            "import",
            &dump_str,
            "--cache-dir",
            &fresh_str,
        ]))
        .expect("import");
        let (imported, _) = SimCache::inspect(fresh.path()).expect("inspect import");
        assert_eq!(imported, entries, "export/import preserves entries");
        // Compaction keeps the distinct entries.
        run(&args(&["cache", "compact", "--cache-dir", &dir_str])).expect("compact");
        let (compacted, _) = SimCache::inspect(&dir).expect("inspect compacted");
        assert_eq!(compacted, entries);
        run(&args(&["cache", "clear", "--cache-dir", &dir_str])).expect("clear");
        assert_eq!(SimCache::inspect(&dir).expect("inspect"), (0, 0));
        let err = run(&args(&["cache", "frobnicate"])).unwrap_err();
        assert!(err.contains("frobnicate"));
        let err = run(&args(&["cache", "import", "--cache-dir", &dir_str])).unwrap_err();
        assert!(err.contains("JSONL"), "{err}");
    }
}
