//! Property-based tests of the Pareto machinery.

use ddtr_pareto::{
    curve_2d, dominates, hypervolume, hypervolume_2d, pareto_front_indices, pareto_ranks,
    tradeoff_ranges,
};
use proptest::prelude::*;

fn arb_points(dims: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0.0f64..100.0, dims..=dims), 1..40)
}

proptest! {
    /// Minimality: no front member dominates another front member.
    #[test]
    fn front_members_are_mutually_nondominated(pts in arb_points(4)) {
        let front = pareto_front_indices(&pts);
        for &i in &front {
            for &j in &front {
                prop_assert!(i == j || !dominates(&pts[i], &pts[j]));
            }
        }
    }

    /// Completeness: every non-front point is dominated by some front point.
    #[test]
    fn every_dropped_point_is_dominated(pts in arb_points(3)) {
        let front = pareto_front_indices(&pts);
        let on_front = |i: usize| front.contains(&i);
        for i in 0..pts.len() {
            if !on_front(i) {
                let covered = front.iter().any(|&f| dominates(&pts[f], &pts[i]));
                prop_assert!(covered, "dropped point {i} not dominated by the front");
            }
        }
    }

    /// The front is never empty for non-empty input.
    #[test]
    fn front_is_nonempty(pts in arb_points(2)) {
        prop_assert!(!pareto_front_indices(&pts).is_empty());
    }

    /// Rank 0 of non-dominated sorting equals the Pareto front.
    #[test]
    fn rank_zero_equals_front(pts in arb_points(3)) {
        let front = pareto_front_indices(&pts);
        let ranks = pareto_ranks(&pts);
        let rank0: Vec<usize> = (0..pts.len()).filter(|&i| ranks[i] == 0).collect();
        prop_assert_eq!(front, rank0);
    }

    /// Ranks are dense: every rank below the maximum is inhabited.
    #[test]
    fn ranks_are_dense(pts in arb_points(2)) {
        let ranks = pareto_ranks(&pts);
        let max = ranks.iter().copied().max().expect("non-empty");
        for r in 0..=max {
            prop_assert!(ranks.contains(&r), "rank {r} uninhabited");
        }
    }

    /// Dominance is irreflexive and antisymmetric.
    #[test]
    fn dominance_is_a_strict_partial_order(
        a in prop::collection::vec(0.0f64..10.0, 4),
        b in prop::collection::vec(0.0f64..10.0, 4),
    ) {
        prop_assert!(!dominates(&a, &a));
        prop_assert!(!(dominates(&a, &b) && dominates(&b, &a)));
    }

    /// Adding a point never shrinks the hypervolume.
    #[test]
    fn hypervolume_is_monotone(
        pts in arb_points(2),
        extra in prop::collection::vec(0.0f64..100.0, 2),
    ) {
        let reference = [200.0, 200.0];
        let base = hypervolume_2d(&pts, reference);
        let mut more = pts.clone();
        more.push(extra);
        let bigger = hypervolume_2d(&more, reference);
        prop_assert!(bigger + 1e-9 >= base, "hv shrank: {base} -> {bigger}");
    }

    /// Trade-off ranges bound every front point in every dimension.
    #[test]
    fn tradeoff_ranges_bound_front(pts in arb_points(4)) {
        let front = pareto_front_indices(&pts);
        let ranges = tradeoff_ranges(&pts, &front);
        for &i in &front {
            for (d, r) in ranges.iter().enumerate() {
                prop_assert!(pts[i][d] >= r.min - 1e-12);
                prop_assert!(pts[i][d] <= r.max + 1e-12);
                prop_assert!(r.spread_ratio() >= 0.0 && r.spread_ratio() <= 1.0);
            }
        }
    }

    /// Idempotence: the front of the front is the whole front.
    #[test]
    fn front_is_idempotent(pts in arb_points(3)) {
        let front = pareto_front_indices(&pts);
        let front_points: Vec<Vec<f64>> = front.iter().map(|&i| pts[i].clone()).collect();
        let again = pareto_front_indices(&front_points);
        prop_assert_eq!(again.len(), front_points.len());
    }

    /// Order invariance: permuting the input permutes (not changes) the
    /// selected front points.
    #[test]
    fn front_is_order_invariant(pts in arb_points(3), seed in 0u64..1000) {
        use std::collections::BTreeSet;
        let front_a: BTreeSet<Vec<u64>> = pareto_front_indices(&pts)
            .into_iter()
            .map(|i| pts[i].iter().map(|v| v.to_bits()).collect())
            .collect();
        // Deterministic shuffle.
        let mut shuffled = pts.clone();
        let mut state = seed.wrapping_mul(0x9E37_79B9).wrapping_add(1);
        for i in (1..shuffled.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            shuffled.swap(i, (state % (i as u64 + 1)) as usize);
        }
        let front_b: BTreeSet<Vec<u64>> = pareto_front_indices(&shuffled)
            .into_iter()
            .map(|i| shuffled[i].iter().map(|v| v.to_bits()).collect())
            .collect();
        prop_assert_eq!(front_a, front_b);
    }

    /// Rank counts partition the input: every point has exactly one rank.
    #[test]
    fn ranks_partition_points(pts in arb_points(3)) {
        let ranks = pareto_ranks(&pts);
        prop_assert_eq!(ranks.len(), pts.len());
        prop_assert!(ranks.iter().all(|&r| r != usize::MAX));
    }

    /// A rank-r point is always dominated by some rank-(r-1) point.
    #[test]
    fn each_rank_is_dominated_by_the_previous(pts in arb_points(2)) {
        let ranks = pareto_ranks(&pts);
        for (i, &r) in ranks.iter().enumerate() {
            if r == 0 { continue; }
            let covered = (0..pts.len()).any(|j| {
                ranks[j] == r - 1 && dominates(&pts[j], &pts[i])
            });
            prop_assert!(covered, "rank-{r} point {i} not dominated by rank {}", r - 1);
        }
    }

    /// 2-D curves are sorted by x and mutually non-dominated in-plane.
    #[test]
    fn curve_2d_is_sorted_and_nondominated(pts in arb_points(4)) {
        let curve = curve_2d(&pts, 1, 2);
        for w in curve.windows(2) {
            prop_assert!(pts[w[0]][1] <= pts[w[1]][1], "curve not x-sorted");
        }
        for &i in &curve {
            for &j in &curve {
                let a = [pts[i][1], pts[i][2]];
                let b = [pts[j][1], pts[j][2]];
                prop_assert!(i == j || !dominates(&a, &b));
            }
        }
    }

    /// The curve in any plane contains the projection of at least one
    /// full-dimensional front point.
    #[test]
    fn curve_intersects_full_front(pts in arb_points(3)) {
        let curve = curve_2d(&pts, 0, 1);
        prop_assert!(!curve.is_empty());
        // The in-plane minimum of objective 0 is on the curve, and that
        // point is non-dominated in the plane by construction.
        let min0 = (0..pts.len())
            .min_by(|&a, &b| pts[a][0].total_cmp(&pts[b][0]))
            .expect("non-empty");
        let covered = curve.iter().any(|&i| pts[i][0] <= pts[min0][0] + 1e-12);
        prop_assert!(covered);
    }

    /// Hypervolume never exceeds the reference box area.
    #[test]
    fn hypervolume_is_bounded_by_the_reference_box(pts in arb_points(2)) {
        let reference = [150.0, 150.0];
        let hv = hypervolume_2d(&pts, reference);
        prop_assert!(hv >= 0.0);
        prop_assert!(hv <= 150.0 * 150.0 + 1e-9);
    }

    /// Scaling all points towards the origin never shrinks hypervolume.
    #[test]
    fn hypervolume_improves_when_points_improve(pts in arb_points(2)) {
        let reference = [200.0, 200.0];
        let base = hypervolume_2d(&pts, reference);
        let better: Vec<Vec<f64>> = pts
            .iter()
            .map(|p| p.iter().map(|v| v * 0.5).collect())
            .collect();
        let improved = hypervolume_2d(&better, reference);
        prop_assert!(improved + 1e-9 >= base, "hv shrank: {base} -> {improved}");
    }

    /// The exact n-dimensional hypervolume agrees with the 2-D staircase
    /// implementation on arbitrary planar sets.
    #[test]
    fn hypervolume_nd_matches_2d(pts in arb_points(2)) {
        let reference = [150.0, 150.0];
        let a = hypervolume_2d(&pts, reference);
        let b = hypervolume(&pts, &reference);
        prop_assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    /// Adding a point never shrinks the 4-D hypervolume, and the volume
    /// stays within the reference box.
    #[test]
    fn hypervolume_nd_is_monotone_and_bounded(
        pts in arb_points(4),
        extra in prop::collection::vec(0.0f64..100.0, 4),
    ) {
        let reference = [120.0f64; 4];
        let base = hypervolume(&pts, &reference);
        let mut more = pts.clone();
        more.push(extra);
        let bigger = hypervolume(&more, &reference);
        prop_assert!(bigger + 1e-6 >= base, "hv shrank: {base} -> {bigger}");
        prop_assert!(bigger <= 120.0f64.powi(4) + 1e-6);
    }

    /// Dominated points contribute nothing: pruning to the front first
    /// leaves the hypervolume unchanged.
    #[test]
    fn hypervolume_nd_depends_only_on_the_front(pts in arb_points(3)) {
        let reference = [150.0f64; 3];
        let all = hypervolume(&pts, &reference);
        let front = pareto_front_indices(&pts);
        let front_points: Vec<Vec<f64>> = front.iter().map(|&i| pts[i].clone()).collect();
        let pruned = hypervolume(&front_points, &reference);
        prop_assert!((all - pruned).abs() < 1e-6, "{all} vs {pruned}");
    }
}
