//! Multi-objective (Pareto) analysis for the DDT exploration methodology.
//!
//! Step 3 of the DATE 2006 methodology turns gigabytes of simulation logs
//! into Pareto-optimal sets: "a point is said to be Pareto-optimal, if it
//! is no longer possible to improve upon one cost factor without worsening
//! any other". This crate implements the machinery:
//!
//! * dominance tests and front/rank extraction over arbitrary-dimension
//!   minimisation objectives ([`dominates`], [`pareto_front_indices`],
//!   [`pareto_ranks`]),
//! * two-dimensional curve extraction for the paper's time–energy and
//!   accesses–footprint charts ([`curve_2d`]),
//! * the trade-off ranges reported in the paper's Table 2
//!   ([`tradeoff_ranges`], [`TradeoffRange`]),
//! * a 2-D hypervolume indicator for the ablation studies
//!   ([`hypervolume_2d`]),
//! * ASCII scatter charts and CSV emission for the figures
//!   ([`ScatterChart`]).
//!
//! All objectives are *minimised*; callers negate any maximisation metric.
//!
//! # Example
//!
//! ```
//! use ddtr_pareto::{pareto_front_indices, tradeoff_ranges};
//!
//! let points = vec![
//!     vec![1.0, 9.0], // fast but hungry
//!     vec![9.0, 1.0], // slow but frugal
//!     vec![5.0, 5.0], // balanced
//!     vec![9.0, 9.0], // dominated
//! ];
//! let front = pareto_front_indices(&points);
//! assert_eq!(front, vec![0, 1, 2]);
//! let spread = tradeoff_ranges(&points, &front);
//! assert!((spread[0].spread_ratio() - (9.0 - 1.0) / 9.0).abs() < 1e-12);
//! ```

mod chart;
mod front;
mod tradeoff;

pub use chart::ScatterChart;
pub use front::{
    curve_2d, dominates, hypervolume, hypervolume_2d, pareto_front_indices, pareto_ranks,
};
pub use tradeoff::{tradeoff_ranges, TradeoffRange};
