//! ASCII scatter charts and CSV emission for the paper's figures.

use crate::front::pareto_front_indices;
use std::fmt::Write as _;

/// Renders 2-D exploration spaces the way the paper's post-processing tool
/// does: every simulated DDT combination as a point, the Pareto-optimal
/// ones highlighted, plus a CSV emitter for external plotting.
///
/// # Example
///
/// ```
/// use ddtr_pareto::ScatterChart;
///
/// let chart = ScatterChart::new("time [cycles]", "energy [nJ]")
///     .with_size(40, 12);
/// let points = vec![[1.0, 8.0], [4.0, 4.0], [8.0, 1.0], [8.0, 8.0]];
/// let text = chart.render(&points);
/// assert!(text.contains('o'));      // Pareto point marker
/// assert!(text.contains("energy")); // axis label
/// ```
#[derive(Debug, Clone)]
pub struct ScatterChart {
    x_label: String,
    y_label: String,
    width: usize,
    height: usize,
}

impl ScatterChart {
    /// Creates a chart with the given axis labels and a default 60x20 grid.
    #[must_use]
    pub fn new(x_label: impl Into<String>, y_label: impl Into<String>) -> Self {
        ScatterChart {
            x_label: x_label.into(),
            y_label: y_label.into(),
            width: 60,
            height: 20,
        }
    }

    /// Overrides the grid size.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is smaller than 2.
    #[must_use]
    pub fn with_size(mut self, width: usize, height: usize) -> Self {
        assert!(width >= 2 && height >= 2, "chart grid too small");
        self.width = width;
        self.height = height;
        self
    }

    /// Renders the points: `.` for dominated combinations, `o` for
    /// Pareto-optimal ones (in the 2-D plane shown). Returns a printable
    /// multi-line string; empty input yields a note instead of a chart.
    #[must_use]
    pub fn render(&self, points: &[[f64; 2]]) -> String {
        if points.is_empty() {
            return format!("(no points: {} vs {})\n", self.y_label, self.x_label);
        }
        let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
        for p in points {
            min_x = min_x.min(p[0]);
            max_x = max_x.max(p[0]);
            min_y = min_y.min(p[1]);
            max_y = max_y.max(p[1]);
        }
        let span_x = (max_x - min_x).max(f64::MIN_POSITIVE);
        let span_y = (max_y - min_y).max(f64::MIN_POSITIVE);
        let mut grid = vec![vec![' '; self.width]; self.height];
        let front: std::collections::BTreeSet<usize> =
            pareto_front_indices(points).into_iter().collect();
        // Plot dominated points first so front markers overwrite them.
        for pass in 0..2 {
            for (i, p) in points.iter().enumerate() {
                let is_front = front.contains(&i);
                if (pass == 0) == is_front {
                    continue;
                }
                let cx = (((p[0] - min_x) / span_x) * (self.width - 1) as f64).round() as usize;
                let cy = (((p[1] - min_y) / span_y) * (self.height - 1) as f64).round() as usize;
                // y axis grows upward
                grid[self.height - 1 - cy][cx] = if is_front { 'o' } else { '.' };
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "{} (min {:.3}, max {:.3})", self.y_label, min_y, max_y);
        for row in &grid {
            let _ = writeln!(out, "|{}", row.iter().collect::<String>());
        }
        let _ = writeln!(out, "+{}", "-".repeat(self.width));
        let _ = writeln!(
            out,
            " {} (min {:.3}, max {:.3})   [o = Pareto-optimal, . = dominated]",
            self.x_label, min_x, max_x
        );
        out
    }

    /// Emits `label,x,y,pareto` CSV rows for external plotting, one per
    /// point, labels supplied by the caller.
    ///
    /// # Panics
    ///
    /// Panics if `labels` and `points` have different lengths.
    #[must_use]
    pub fn to_csv(&self, labels: &[String], points: &[[f64; 2]]) -> String {
        assert_eq!(labels.len(), points.len(), "one label per point");
        let front: std::collections::BTreeSet<usize> =
            pareto_front_indices(points).into_iter().collect();
        let mut out = format!("label,{},{},pareto\n", self.x_label, self.y_label);
        for (i, (label, p)) in labels.iter().zip(points.iter()).enumerate() {
            let _ = writeln!(
                out,
                "{label},{},{},{}",
                p[0],
                p[1],
                u8::from(front.contains(&i))
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> ScatterChart {
        ScatterChart::new("x", "y").with_size(20, 10)
    }

    #[test]
    fn empty_input_renders_note() {
        let s = chart().render(&[]);
        assert!(s.contains("no points"));
    }

    #[test]
    fn front_points_marked_o() {
        let s = chart().render(&[[0.0, 0.0], [1.0, 1.0]]);
        assert!(s.contains('o'));
        assert!(s.contains('.'));
    }

    #[test]
    fn single_point_renders() {
        let s = chart().render(&[[5.0, 5.0]]);
        let markers: usize = s
            .lines()
            .filter(|l| l.starts_with('|'))
            .map(|l| l.matches('o').count())
            .sum();
        assert_eq!(markers, 1);
    }

    #[test]
    fn axis_labels_present() {
        let s = ScatterChart::new("cycles", "nanojoules").render(&[[1.0, 2.0]]);
        assert!(s.contains("cycles"));
        assert!(s.contains("nanojoules"));
    }

    #[test]
    fn csv_flags_pareto_membership() {
        let labels = vec!["a".to_string(), "b".to_string()];
        let csv = chart().to_csv(&labels, &[[0.0, 0.0], [1.0, 1.0]]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].ends_with(",1"));
        assert!(lines[2].ends_with(",0"));
    }

    #[test]
    #[should_panic(expected = "one label per point")]
    fn csv_checks_label_count() {
        let _ = chart().to_csv(&[], &[[0.0, 0.0]]);
    }

    #[test]
    #[should_panic(expected = "grid too small")]
    fn tiny_grid_rejected() {
        let _ = ScatterChart::new("x", "y").with_size(1, 5);
    }

    #[test]
    fn identical_points_do_not_divide_by_zero() {
        let s = chart().render(&[[3.0, 3.0], [3.0, 3.0]]);
        assert!(s.contains('o'));
    }
}
