//! Trade-off ranges among Pareto-optimal points (the paper's Table 2).

use serde::{Deserialize, Serialize};

/// The spread of one objective across a Pareto-optimal set.
///
/// The paper reports, per metric, how much a designer can trade away by
/// moving along the Pareto curve — e.g. "trade-offs can be achieved up to
/// 90 % for the dissipated energy" means the most frugal Pareto point uses
/// 90 % less energy than the most energy-hungry one.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TradeoffRange {
    /// Smallest value of the objective on the front.
    pub min: f64,
    /// Largest value of the objective on the front.
    pub max: f64,
}

impl TradeoffRange {
    /// `(max - min) / max`: the fraction of the worst front value that can
    /// be traded away, in `[0, 1]`. Zero when the front is degenerate.
    #[must_use]
    pub fn spread_ratio(&self) -> f64 {
        if self.max <= 0.0 {
            0.0
        } else {
            (self.max - self.min) / self.max
        }
    }

    /// The spread as a percentage, rounded to the nearest integer — the
    /// format of the paper's Table 2.
    #[must_use]
    pub fn spread_percent(&self) -> u32 {
        (self.spread_ratio() * 100.0).round() as u32
    }
}

/// Computes the per-objective [`TradeoffRange`] over the points selected by
/// `front` (indices into `points`, typically from
/// [`crate::pareto_front_indices`]).
///
/// Returns one range per objective dimension; an empty front yields an
/// empty vector.
///
/// # Panics
///
/// Panics if `front` contains an out-of-range index or points have
/// inconsistent dimensionality.
#[must_use]
pub fn tradeoff_ranges<P: AsRef<[f64]>>(points: &[P], front: &[usize]) -> Vec<TradeoffRange> {
    let Some(&first) = front.first() else {
        return Vec::new();
    };
    let dims = points[first].as_ref().len();
    let mut ranges = vec![
        TradeoffRange {
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        };
        dims
    ];
    for &i in front {
        let p = points[i].as_ref();
        assert_eq!(p.len(), dims, "dimension mismatch");
        for (d, &v) in p.iter().enumerate() {
            ranges[d].min = ranges[d].min.min(v);
            ranges[d].max = ranges[d].max.max(v);
        }
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::front::pareto_front_indices;

    #[test]
    fn empty_front_gives_no_ranges() {
        let pts: Vec<Vec<f64>> = vec![vec![1.0, 2.0]];
        assert!(tradeoff_ranges(&pts, &[]).is_empty());
    }

    #[test]
    fn single_point_front_has_zero_spread() {
        let pts = vec![vec![4.0, 5.0]];
        let r = tradeoff_ranges(&pts, &[0]);
        assert_eq!(r[0].spread_percent(), 0);
        assert_eq!(r[1].spread_percent(), 0);
    }

    #[test]
    fn spread_matches_paper_table_format() {
        // Energy spans 1..10 on the front: 90% trade-off, like Route in
        // Table 2.
        let pts = vec![vec![1.0, 10.0], vec![10.0, 1.0]];
        let front = pareto_front_indices(&pts);
        let r = tradeoff_ranges(&pts, &front);
        assert_eq!(r[0].spread_percent(), 90);
        assert_eq!(r[1].spread_percent(), 90);
    }

    #[test]
    fn only_front_points_counted() {
        let pts = vec![
            vec![1.0, 10.0],
            vec![10.0, 1.0],
            vec![100.0, 100.0], // dominated — must not widen the range
        ];
        let front = pareto_front_indices(&pts);
        let r = tradeoff_ranges(&pts, &front);
        assert_eq!(r[0].max, 10.0);
        assert_eq!(r[1].max, 10.0);
    }

    #[test]
    fn zero_max_yields_zero_spread() {
        let r = TradeoffRange { min: 0.0, max: 0.0 };
        assert_eq!(r.spread_ratio(), 0.0);
    }

    #[test]
    fn ranges_cover_every_dimension() {
        let pts = vec![vec![1.0, 2.0, 3.0, 4.0], vec![4.0, 3.0, 2.0, 1.0]];
        let r = tradeoff_ranges(&pts, &[0, 1]);
        assert_eq!(r.len(), 4);
        assert_eq!(r[3].min, 1.0);
        assert_eq!(r[3].max, 4.0);
    }
}
