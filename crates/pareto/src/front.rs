//! Dominance, fronts, ranks, curves and hypervolume.

/// Returns `true` when `a` Pareto-dominates `b` under minimisation: `a` is
/// no worse in every objective and strictly better in at least one.
///
/// # Panics
///
/// Panics if the points have different dimensionality.
///
/// # Example
///
/// ```
/// use ddtr_pareto::dominates;
///
/// assert!(dominates(&[1.0, 2.0], &[2.0, 2.0]));
/// assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0])); // incomparable
/// assert!(!dominates(&[1.0, 2.0], &[1.0, 2.0])); // equal
/// ```
#[must_use]
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut strict = false;
    for (&x, &y) in a.iter().zip(b.iter()) {
        if x > y {
            return false;
        }
        if x < y {
            strict = true;
        }
    }
    strict
}

/// Indices of the Pareto-optimal points of `points` (minimisation), in
/// input order.
///
/// Duplicated points are all kept: a point equal to another is not
/// dominated by it.
///
/// # Panics
///
/// Panics if points have inconsistent dimensionality.
#[must_use]
pub fn pareto_front_indices<P: AsRef<[f64]>>(points: &[P]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            !points
                .iter()
                .enumerate()
                .any(|(j, q)| j != i && dominates(q.as_ref(), points[i].as_ref()))
        })
        .collect()
}

/// Non-dominated sorting: assigns every point its front rank (0 = the
/// Pareto front, 1 = the front after removing rank 0, …).
///
/// # Panics
///
/// Panics if points have inconsistent dimensionality.
#[must_use]
pub fn pareto_ranks<P: AsRef<[f64]>>(points: &[P]) -> Vec<usize> {
    let n = points.len();
    let mut rank = vec![usize::MAX; n];
    let mut assigned = 0;
    let mut current = 0;
    while assigned < n {
        let mut this_front = Vec::new();
        for i in 0..n {
            if rank[i] != usize::MAX {
                continue;
            }
            let dominated = (0..n).any(|j| {
                j != i && rank[j] == usize::MAX && dominates(points[j].as_ref(), points[i].as_ref())
            });
            if !dominated {
                this_front.push(i);
            }
        }
        debug_assert!(!this_front.is_empty(), "peeling must make progress");
        for &i in &this_front {
            rank[i] = current;
        }
        assigned += this_front.len();
        current += 1;
    }
    rank
}

/// Extracts the 2-D Pareto curve of `points` restricted to objectives
/// `(x_dim, y_dim)`: the indices of the non-dominated points in that plane,
/// sorted by ascending x. This is how the paper draws each chart
/// (time–energy, accesses–footprint) from 4-metric logs.
///
/// # Panics
///
/// Panics if a dimension index is out of range for any point.
#[must_use]
pub fn curve_2d<P: AsRef<[f64]>>(points: &[P], x_dim: usize, y_dim: usize) -> Vec<usize> {
    let projected: Vec<[f64; 2]> = points
        .iter()
        .map(|p| {
            let p = p.as_ref();
            [p[x_dim], p[y_dim]]
        })
        .collect();
    let mut front = pareto_front_indices(&projected);
    // total_cmp: a NaN coordinate gets a deterministic position (IEEE
    // total order: positive NaN after +inf, negative NaN before -inf)
    // instead of panicking or corrupting the order.
    front.sort_by(|&a, &b| projected[a][0].total_cmp(&projected[b][0]));
    front
}

/// 2-D hypervolume (area dominated by the front, bounded by `reference`),
/// a scalar quality indicator used by the ablation benches. Points worse
/// than the reference in either objective contribute nothing; a NaN
/// coordinate fails the reference-box comparison, so NaN points are
/// silently excluded rather than panicking (the n-dimensional
/// [`hypervolume`] instead rejects NaN input with an assertion).
#[must_use]
pub fn hypervolume_2d<P: AsRef<[f64]>>(points: &[P], reference: [f64; 2]) -> f64 {
    let mut front: Vec<[f64; 2]> = {
        let idx = pareto_front_indices(
            &points
                .iter()
                .map(|p| {
                    let p = p.as_ref();
                    [p[0], p[1]]
                })
                .collect::<Vec<_>>(),
        );
        idx.iter()
            .map(|&i| {
                let p = points[i].as_ref();
                [p[0], p[1]]
            })
            .filter(|p| p[0] < reference[0] && p[1] < reference[1])
            .collect()
    };
    front.sort_by(|a, b| a[0].total_cmp(&b[0]));
    let mut volume = 0.0;
    let mut prev_y = reference[1];
    for p in front {
        volume += (reference[0] - p[0]) * (prev_y - p[1]);
        prev_y = p[1];
    }
    volume
}

/// Exact hypervolume in any dimensionality (minimisation, bounded by
/// `reference`), by the classic recursive slicing scheme: sort by the last
/// objective and sum per-slab `(d-1)`-dimensional volumes. Exponential in
/// the number of objectives in the worst case, but exact — intended for
/// the 4-objective fronts of this methodology (tens of points), where it
/// is instant.
///
/// Points not strictly better than the reference in every objective
/// contribute nothing. Returns 0 for an empty set.
///
/// # Panics
///
/// Panics if points have inconsistent dimensionality, the reference
/// dimensionality differs, or any coordinate is NaN.
///
/// # Example
///
/// ```
/// use ddtr_pareto::hypervolume;
///
/// // One point dominating a unit corner of the 4-D reference box.
/// let hv = hypervolume(&[[1.0, 1.0, 1.0, 1.0]], &[2.0, 2.0, 2.0, 2.0]);
/// assert!((hv - 1.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn hypervolume<P: AsRef<[f64]>>(points: &[P], reference: &[f64]) -> f64 {
    let dims = reference.len();
    assert!(dims >= 1, "reference must have at least one objective");
    let mut front: Vec<Vec<f64>> = points
        .iter()
        .map(|p| {
            let p = p.as_ref();
            assert_eq!(p.len(), dims, "dimension mismatch with reference");
            assert!(p.iter().all(|v| !v.is_nan()), "NaN objective");
            p.to_vec()
        })
        .filter(|p| p.iter().zip(reference).all(|(v, r)| v < r))
        .collect();
    // Only the non-dominated subset contributes volume.
    let keep = pareto_front_indices(&front);
    front = keep.into_iter().map(|i| front[i].clone()).collect();
    hv_recursive(&mut front, reference)
}

/// Recursive slicing: integrate over the last objective.
fn hv_recursive(front: &mut [Vec<f64>], reference: &[f64]) -> f64 {
    let dims = reference.len();
    if front.is_empty() {
        return 0.0;
    }
    if dims == 1 {
        let best = front.iter().map(|p| p[0]).fold(f64::INFINITY, f64::min);
        return (reference[0] - best).max(0.0);
    }
    // Sort descending by the last objective: slabs sweep from the
    // reference towards the best point, accumulating the points whose last
    // coordinate is below the slab.
    front.sort_by(|a, b| b[dims - 1].total_cmp(&a[dims - 1]));
    let mut volume = 0.0;
    let mut upper = reference[dims - 1];
    for i in 0..front.len() {
        let z = front[i][dims - 1];
        if z < upper {
            // All points from index i on reach into this slab.
            let mut projected: Vec<Vec<f64>> =
                front[i..].iter().map(|p| p[..dims - 1].to_vec()).collect();
            let keep = pareto_front_indices(&projected);
            projected = keep.into_iter().map(|j| projected[j].clone()).collect();
            volume += (upper - z) * hv_recursive(&mut projected, &reference[..dims - 1]);
            upper = z;
        }
    }
    volume
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn front_of_empty_is_empty() {
        let empty: Vec<Vec<f64>> = Vec::new();
        assert!(pareto_front_indices(&empty).is_empty());
    }

    #[test]
    fn single_point_is_optimal() {
        assert_eq!(pareto_front_indices(&[vec![3.0, 4.0]]), vec![0]);
    }

    #[test]
    fn dominated_points_are_dropped() {
        let pts = vec![
            vec![1.0, 2.0],
            vec![2.0, 1.0],
            vec![2.0, 2.0], // dominated by neither? (1,2) vs (2,2): dominates
            vec![3.0, 3.0],
        ];
        assert_eq!(pareto_front_indices(&pts), vec![0, 1]);
    }

    #[test]
    fn duplicates_all_survive() {
        let pts = vec![vec![1.0, 1.0], vec![1.0, 1.0], vec![2.0, 2.0]];
        assert_eq!(pareto_front_indices(&pts), vec![0, 1]);
    }

    #[test]
    fn four_dimensional_front() {
        let pts = vec![
            vec![1.0, 9.0, 9.0, 9.0],
            vec![9.0, 1.0, 9.0, 9.0],
            vec![9.0, 9.0, 1.0, 9.0],
            vec![9.0, 9.0, 9.0, 1.0],
            vec![9.0, 9.0, 9.0, 9.0],
        ];
        assert_eq!(pareto_front_indices(&pts), vec![0, 1, 2, 3]);
    }

    #[test]
    fn ranks_peel_layers() {
        let pts = vec![
            vec![1.0, 1.0], // rank 0
            vec![2.0, 2.0], // rank 1
            vec![3.0, 3.0], // rank 2
            vec![1.5, 0.5], // rank 0
        ];
        assert_eq!(pareto_ranks(&pts), vec![0, 1, 2, 0]);
    }

    #[test]
    fn curve_2d_projects_and_sorts() {
        // 4-D points; in the (0, 1) plane only three are non-dominated.
        let pts = vec![
            vec![3.0, 1.0, 0.0, 0.0],
            vec![1.0, 3.0, 9.0, 9.0],
            vec![2.0, 2.0, 5.0, 5.0],
            vec![3.0, 3.0, 0.0, 0.0],
        ];
        assert_eq!(curve_2d(&pts, 0, 1), vec![1, 2, 0]);
    }

    #[test]
    fn curve_respects_chosen_dims() {
        let pts = vec![vec![1.0, 9.0, 5.0], vec![9.0, 1.0, 4.0]];
        // In the (2, 2) degenerate plane the smaller third coord wins.
        assert_eq!(curve_2d(&pts, 2, 2), vec![1]);
    }

    #[test]
    fn curve_2d_with_nan_point_does_not_panic() {
        // A single NaN objective used to panic the sort's
        // `partial_cmp(..).expect(..)`; with total_cmp the NaN point sorts
        // last and the finite curve stays intact and ordered.
        let pts = vec![
            vec![3.0, 1.0],
            vec![f64::NAN, 2.0],
            vec![1.0, 3.0],
            vec![2.0, 2.0],
        ];
        let curve = curve_2d(&pts, 0, 1);
        let xs: Vec<f64> = curve
            .iter()
            .filter(|&&i| pts[i][0].is_finite())
            .map(|&i| pts[i][0])
            .collect();
        assert!(!xs.is_empty());
        assert!(
            xs.windows(2).all(|w| w[0] <= w[1]),
            "finite points stay x-sorted: {xs:?}"
        );
    }

    #[test]
    fn hypervolume_of_single_point() {
        let hv = hypervolume_2d(&[vec![1.0, 1.0]], [3.0, 3.0]);
        assert!((hv - 4.0).abs() < 1e-12);
    }

    #[test]
    fn hypervolume_adds_staircase_area() {
        let hv = hypervolume_2d(&[vec![1.0, 2.0], vec![2.0, 1.0]], [3.0, 3.0]);
        // (3-1)*(3-2) + (3-2)*(2-1) = 2 + 1 = 3
        assert!((hv - 3.0).abs() < 1e-12);
    }

    #[test]
    fn hypervolume_ignores_points_beyond_reference() {
        let hv = hypervolume_2d(&[vec![5.0, 5.0]], [3.0, 3.0]);
        assert_eq!(hv, 0.0);
    }

    #[test]
    fn bigger_front_has_bigger_hypervolume() {
        let small = hypervolume_2d(&[vec![2.0, 2.0]], [4.0, 4.0]);
        let big = hypervolume_2d(
            &[vec![2.0, 2.0], vec![1.0, 3.0], vec![3.0, 1.0]],
            [4.0, 4.0],
        );
        assert!(big > small);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_dims_panic() {
        let _ = dominates(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn hypervolume_nd_matches_2d_on_planar_fronts() {
        let pts = vec![
            vec![1.0, 2.0],
            vec![2.0, 1.0],
            vec![0.5, 3.5],
            vec![3.0, 3.0], // dominated
        ];
        let reference = [4.0, 4.0];
        let a = hypervolume_2d(&pts, reference);
        let b = hypervolume(&pts, &reference);
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
    }

    #[test]
    fn hypervolume_nd_single_point_is_the_box_volume() {
        let hv = hypervolume(&[[1.0, 2.0, 3.0]], &[5.0, 5.0, 5.0]);
        assert!((hv - 4.0 * 3.0 * 2.0).abs() < 1e-12);
    }

    #[test]
    fn hypervolume_nd_union_subtracts_overlap() {
        // Two overlapping boxes in 3-D: |A| + |B| - |A ∩ B|.
        let a = [1.0, 1.0, 3.0]; // box 3 x 3 x 1 = 9
        let b = [3.0, 3.0, 1.0]; // box 1 x 1 x 3 = 3
                                 // intersection: max coords (3,3,3) -> 1 x 1 x 1 = 1
        let hv = hypervolume(&[a, b], &[4.0, 4.0, 4.0]);
        assert!((hv - (9.0 + 3.0 - 1.0)).abs() < 1e-12, "got {hv}");
    }

    #[test]
    fn hypervolume_nd_ignores_points_at_or_beyond_reference() {
        let hv = hypervolume(&[[4.0, 1.0, 1.0], [5.0, 0.0, 0.0]], &[4.0, 4.0, 4.0]);
        assert_eq!(hv, 0.0);
    }

    #[test]
    fn hypervolume_nd_of_empty_set_is_zero() {
        let empty: Vec<Vec<f64>> = Vec::new();
        assert_eq!(hypervolume(&empty, &[1.0, 1.0, 1.0, 1.0]), 0.0);
    }

    #[test]
    fn hypervolume_nd_handles_duplicate_coordinates() {
        // Two points sharing the last coordinate: the slab logic must not
        // double-count them.
        let hv = hypervolume(&[[1.0, 2.0, 2.0], [2.0, 1.0, 2.0]], &[3.0, 3.0, 3.0]);
        // Area in the first two dims: (3-1)(3-2) + (3-2)(2-1) = 3; depth 1.
        assert!((hv - 3.0).abs() < 1e-12, "got {hv}");
    }

    #[test]
    fn hypervolume_nd_four_dimensional_corner() {
        let hv = hypervolume(&[[0.0, 0.0, 0.0, 0.0]], &[1.0, 2.0, 3.0, 4.0]);
        assert!((hv - 24.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one objective")]
    fn hypervolume_nd_rejects_empty_reference() {
        let _ = hypervolume(&[[0.0; 0]], &[]);
    }
}
