//! `ddtr` — Dynamic Data Type Refinement for network applications.
//!
//! Facade crate re-exporting the whole workspace. See the individual crates
//! for details:
//!
//! * [`mem`] — simulated embedded memory subsystem (allocator, cache, DRAM,
//!   CACTI-like energy model),
//! * [`ddt`] — the ten-implementation dynamic-data-type library,
//! * [`trace`] — synthetic network traces and parameter extraction,
//! * [`apps`] — the four NetBench-style applications (Route, URL, IPchains,
//!   DRR),
//! * [`pareto`] — multi-objective pruning and charting,
//! * [`engine`] — parallel, cached, resumable simulation execution,
//! * [`core`] — the three-step refinement methodology itself,
//! * [`serve`] — the long-running exploration service (`ddtr serve`).
//!
//! # Quickstart
//!
//! ```
//! use ddtr::core::{Methodology, MethodologyConfig};
//! use ddtr::apps::AppKind;
//!
//! let cfg = MethodologyConfig::quick(AppKind::Drr);
//! let outcome = Methodology::new(cfg).run()?;
//! assert!(!outcome.pareto.global_front.is_empty());
//! # Ok::<(), ddtr::core::ExploreError>(())
//! ```

pub use ddtr_apps as apps;
pub use ddtr_core as core;
pub use ddtr_ddt as ddt;
pub use ddtr_engine as engine;
pub use ddtr_mem as mem;
pub use ddtr_pareto as pareto;
pub use ddtr_serve as serve;
pub use ddtr_trace as trace;
